//! Partitioned monitoring of a multi-resident home (Section VI).
//!
//! Whole-home DICE sees every combination of simultaneous activities as a
//! distinct context; room-partitioned DICE runs one instance per room, so a
//! couple cooking while someone watches TV looks exactly like a single
//! person in each room. This example trains both on the two-resident
//! testbed and races them on the same fault.
//!
//! ```sh
//! cargo run --release --example partitioned_home
//! ```

use dice_core::{DiceEngine, Partition, PartitionedEngine, PartitionedModel};
use dice_eval::{train_scenario, RunnerConfig};
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_sim::testbed;
use dice_types::{EventLog, TimeDelta};

fn main() {
    let cfg = RunnerConfig {
        trials: 0,
        ..RunnerConfig::default()
    };
    let spec = testbed::dice_testbed("partitioned-demo", 42, TimeDelta::from_hours(400), 16, 2);
    println!("training whole-home DICE on a two-resident testbed (300 h)...");
    let td = train_scenario(spec, &cfg);
    println!("  whole-home model: {} groups", td.model.groups().len());

    // Train per-room models on the same period.
    let mut training = EventLog::new();
    let mut start = td.plan.training().start;
    while start < td.plan.training().end {
        let end = (start + TimeDelta::from_hours(6)).min(td.plan.training().end);
        training.merge(td.sim.log_between(start, end));
        start = end;
    }
    let partitions = Partition::by_room(td.sim.registry());
    println!(
        "  partitions: {}",
        partitions
            .iter()
            .map(Partition::name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let partitioned = PartitionedModel::train(td.model.config(), partitions, &mut training)
        .expect("partitioned training");
    for (partition, model) in partitioned.parts() {
        println!("    {}: {} groups", partition.name(), model.groups().len());
    }
    println!(
        "  per-room total: {} groups (vs {} whole-home)",
        partitioned.total_groups(),
        td.model.groups().len()
    );

    // Inject a bedroom fault and race both detectors.
    let segment = td.plan.segments()[3];
    let bed_weight = td
        .sim
        .registry()
        .sensors()
        .find(|s| s.name() == "bed weight")
        .unwrap()
        .id();
    let fault = SensorFault {
        sensor: bed_weight,
        fault: FaultType::Noise,
        onset: segment.start + TimeDelta::from_mins(30),
    };
    println!(
        "\ninjecting {} on {} at {}",
        fault.fault,
        td.sim.registry().sensor(fault.sensor).name(),
        fault.onset
    );
    let clean = td.sim.log_between(segment.start, segment.end);
    let faulty = FaultInjector::new(5).inject_sensor(clean, td.sim.registry(), &fault);

    let mut whole = DiceEngine::new(&td.model);
    let mut reports = whole.process_range(&mut faulty.clone(), segment.start, segment.end);
    reports.extend(whole.flush());
    match reports.first() {
        Some(r) => println!("whole-home: {r}"),
        None => println!("whole-home: no detection"),
    }

    let mut per_room = PartitionedEngine::new(&partitioned);
    let mut reports = per_room.process_range(&mut faulty.clone(), segment.start, segment.end);
    reports.extend(per_room.flush());
    match reports.first() {
        Some(r) => println!("per-room:   {r}"),
        None => println!("per-room:   no detection"),
    }
}
