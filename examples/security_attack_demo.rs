//! Security demo (Section VI): DICE as a sensor-spoofing detector.
//!
//! Replays the paper's two attacks against the testbed: raising the
//! living-room temperature so the fan runs (wasted energy), and raising the
//! bedroom light at night so the blind opens while the resident sleeps
//! (privacy exposure).
//!
//! ```sh
//! cargo run --release --example security_attack_demo
//! ```

use dice_eval::experiments::run_attacks;

fn main() {
    println!("DICE as an attack detector: spoofed sensor values violate the learned context.\n");
    for outcome in run_attacks(42) {
        println!("attack: {}", outcome.name);
        println!(
            "  detected:           {}",
            if outcome.detected { "yes" } else { "NO" }
        );
        println!(
            "  attacked sensor identified: {}",
            if outcome.identified { "yes" } else { "NO" }
        );
        if let Some(mins) = outcome.latency_mins {
            println!("  latency:            {mins:.0} min after attack onset");
        }
        println!();
    }
    println!("(the paper reports both attack cases successfully detected)");
}
