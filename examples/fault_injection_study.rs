//! Fault-injection study: how each fault class manifests and how fast DICE
//! reacts, per fault type, on the testbed dataset.
//!
//! ```sh
//! cargo run --release --example fault_injection_study
//! ```

use dice_datasets::DatasetId;
use dice_eval::{run_faulty_segment, train_dataset, RunnerConfig};
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_types::TimeDelta;

fn main() {
    let cfg = RunnerConfig {
        trials: 0,
        ..RunnerConfig::default()
    };
    println!("training on {}...", DatasetId::DHouseA.name());
    let td = train_dataset(DatasetId::DHouseA, &cfg);
    let injector = FaultInjector::new(99);

    println!(
        "{:<10} {:>9} {:>12} {:>12}  identified devices",
        "fault", "detected", "detect(min)", "ident(min)"
    );
    for &fault_type in FaultType::all() {
        let mut detected = 0;
        let mut detect_mins = Vec::new();
        let mut identify_mins = Vec::new();
        let mut devices_summary = String::new();
        const TRIALS: u64 = 20;
        for trial in 0..TRIALS {
            let segment = td.plan.segment_for_trial(trial);
            // Rotate target sensors deterministically across trials.
            let sensor = dice_types::SensorId::new(
                (trial as u32 * 7) % td.sim.registry().num_sensors() as u32,
            );
            let fault = SensorFault {
                sensor,
                fault: fault_type,
                onset: segment.start + TimeDelta::from_mins(60),
            };
            let clean = td.sim.log_between(segment.start, segment.end);
            let faulty = injector.inject_sensor(clean, td.sim.registry(), &fault);
            let outcome = run_faulty_segment(&td, faulty, segment, fault.onset);
            if let Some(report) = outcome.report {
                detected += 1;
                detect_mins.push((report.detected_at - fault.onset).as_mins_f64());
                identify_mins.push((report.identified_at - fault.onset).as_mins_f64());
                if devices_summary.is_empty() {
                    devices_summary = report
                        .devices
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                }
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:<10} {:>6}/{} {:>12.1} {:>12.1}  e.g. {}",
            fault_type.to_string(),
            detected,
            TRIALS,
            mean(&detect_mins),
            mean(&identify_mins),
            devices_summary
        );
    }
}
