//! Quickstart: train DICE on a tiny smart home and catch a fail-stop fault.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dice_core::{ContextExtractor, DiceConfig, DiceEngine};
use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment: two correlated kitchen sensors and one
    //    bedroom sensor.
    let mut registry = DeviceRegistry::new();
    let kitchen_motion = registry.add_sensor(SensorKind::Motion, "kitchen motion", Room::Kitchen);
    let kitchen_door = registry.add_sensor(SensorKind::Contact, "fridge door", Room::Kitchen);
    let bedroom_motion = registry.add_sensor(SensorKind::Motion, "bedroom motion", Room::Bedroom);

    // 2. Precompute context from fault-free history: the kitchen pair always
    //    fires together (cooking), the bedroom sensor alone (sleeping).
    let mut training = EventLog::new();
    for minute in 0..600 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(10);
        if minute % 3 == 0 {
            training.push_sensor(SensorReading::new(kitchen_motion, at, true.into()));
            training.push_sensor(SensorReading::new(kitchen_door, at, true.into()));
        } else if minute % 3 == 1 {
            training.push_sensor(SensorReading::new(bedroom_motion, at, true.into()));
        } // every third minute the home is quiet
    }
    let model = ContextExtractor::new(DiceConfig::default()).extract(&registry, &mut training)?;
    println!(
        "trained: {} groups from {} windows, correlation degree {:.1}",
        model.groups().len(),
        model.training_windows(),
        model.correlation_degree()
    );

    // 3. Real-time phase: replay live data in which the fridge-door sensor
    //    has fail-stopped — the kitchen motion now fires alone, an unseen
    //    sensor state set.
    let mut live = EventLog::new();
    for minute in 0..30 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(10);
        if minute % 3 == 0 {
            live.push_sensor(SensorReading::new(kitchen_motion, at, true.into()));
            // kitchen_door is silent: fail-stop
        } else if minute % 3 == 1 {
            live.push_sensor(SensorReading::new(bedroom_motion, at, true.into()));
        }
    }
    let mut engine = DiceEngine::new(&model);
    let mut reports = engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(30));
    reports.extend(engine.flush());

    match reports.first() {
        Some(report) => {
            println!("{report}");
            println!(
                "detection latency: {} min, identification latency: {} min",
                report.detected_at.as_mins(),
                report.identified_at.as_mins()
            );
        }
        None => println!("no fault detected (unexpected!)"),
    }
    Ok(())
}
