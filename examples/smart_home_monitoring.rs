//! End-to-end monitoring: the paper's deployment shape, live.
//!
//! Trains DICE on the POSTECH-style testbed (37 sensors, 8 actuators),
//! then streams a fault-injected day through aggregator threads into the
//! home gateway and prints the alarms as they arrive.
//!
//! ```sh
//! cargo run --release --example smart_home_monitoring
//! ```

use dice_datasets::DatasetId;
use dice_eval::{train_dataset, RunnerConfig};
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_gateway::{partition_by_device, spawn_aggregator, HomeGateway};
use dice_types::{Event, TimeDelta};

fn main() {
    let cfg = RunnerConfig {
        trials: 0,
        ..RunnerConfig::default()
    };
    println!(
        "training DICE on {} (300 h precomputation)...",
        DatasetId::DHouseA.name()
    );
    let td = train_dataset(DatasetId::DHouseA, &cfg);
    println!(
        "model ready: {} groups, correlation degree {:.1}",
        td.model.groups().len(),
        td.model.correlation_degree()
    );

    // Take one six-hour segment of live data and degrade the living-room
    // temperature sensor with heavy noise one hour in.
    let segment = td.plan.segments()[4];
    let fault = SensorFault {
        sensor: td
            .sim
            .registry()
            .sensors()
            .find(|s| s.name() == "living-room temp")
            .expect("testbed has a living-room temperature sensor")
            .id(),
        fault: FaultType::Noise,
        onset: segment.start + TimeDelta::from_mins(60),
    };
    println!(
        "injecting {} on {} at {} (one hour into the segment)",
        fault.fault,
        td.sim.registry().sensor(fault.sensor).name(),
        fault.onset
    );
    let live = td.sim.log_between(segment.start, segment.end);
    let faulty = FaultInjector::new(7).inject_sensor(live, td.sim.registry(), &fault);
    let events: Vec<Event> = faulty.into_events().collect();

    // Stream through four aggregators into the gateway.
    let parts = partition_by_device(&events, 4);
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        let (tx, rx) = crossbeam::channel::bounded(256);
        println!("aggregator-{i}: {} events", part.len());
        handles.push(spawn_aggregator(format!("{i}"), part, tx));
        receivers.push(rx);
    }

    let (alarm_tx, alarm_rx) = crossbeam::channel::unbounded::<dice_gateway::Alarm>();
    let gateway = HomeGateway::new(&td.model);

    // Print alarms from a consumer thread while the gateway runs.
    let printer = std::thread::spawn(move || {
        for alarm in alarm_rx.iter() {
            println!("ALARM: {}", alarm.report);
        }
    });

    let stats = gateway.run(receivers, &alarm_tx, segment.start, segment.end);
    drop(alarm_tx);
    for handle in handles {
        handle.join().expect("aggregator thread");
    }
    printer.join().expect("alarm printer thread");

    println!(
        "gateway processed {} windows / {} events, raised {} alarm(s), {} decode errors",
        stats.windows, stats.events, stats.alarms, stats.decode_errors
    );
}
