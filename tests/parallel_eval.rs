//! Serial vs parallel experiment-runner equivalence.
//!
//! The parallel evaluators derive every trial's randomness from the master
//! seed and the trial index and fold per-trial results in trial order, so
//! their output must be bit-identical to the serial reference
//! implementations — for every metric except wall-clock cost nanoseconds,
//! which are inherently nondeterministic (the deterministic window *count*
//! inside the cost profile must still match).

use dice_core::DiceConfig;
use dice_eval::{
    evaluate_actuator_faults, evaluate_actuator_faults_serial, evaluate_multi_faults,
    evaluate_multi_faults_serial, evaluate_sensor_faults, evaluate_sensor_faults_serial,
    train_scenario, RunnerConfig, TrainedDataset,
};
use dice_sim::testbed;
use dice_types::TimeDelta;

fn quick_cfg() -> RunnerConfig {
    RunnerConfig {
        seed: 7,
        trials: 5,
        precompute: TimeDelta::from_hours(48),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

fn quick_testbed(cfg: &RunnerConfig) -> TrainedDataset {
    let spec = testbed::dice_testbed("quick", 7, TimeDelta::from_hours(80), 12, 1);
    train_scenario(spec, cfg)
}

#[test]
fn sensor_evaluation_is_identical_serial_and_parallel() {
    let cfg = quick_cfg();
    let td = quick_testbed(&cfg);
    let parallel = evaluate_sensor_faults(&td, &cfg);
    let serial = evaluate_sensor_faults_serial(&td, &cfg);

    assert_eq!(parallel.name, serial.name);
    assert_eq!(parallel.detection, serial.detection);
    assert_eq!(parallel.identification, serial.identification);
    assert_eq!(parallel.detect_latency, serial.detect_latency);
    assert_eq!(parallel.identify_latency, serial.identify_latency);
    assert_eq!(
        parallel.detect_latency_by_check,
        serial.detect_latency_by_check
    );
    assert_eq!(parallel.by_fault_type, serial.by_fault_type);
    assert_eq!(parallel.cost.windows, serial.cost.windows);
    assert_eq!(parallel.correlation_degree, serial.correlation_degree);
    assert_eq!(parallel.num_groups, serial.num_groups);
    assert_eq!(parallel.num_sensors, serial.num_sensors);
}

#[test]
fn multi_fault_evaluation_is_identical_serial_and_parallel() {
    let mut cfg = quick_cfg();
    cfg.dice = DiceConfig::builder().max_faults(3).num_thre(3).build();
    let td = quick_testbed(&cfg);
    let parallel = evaluate_multi_faults(&td, &cfg);
    let serial = evaluate_multi_faults_serial(&td, &cfg);

    assert_eq!(parallel.detection, serial.detection);
    assert_eq!(parallel.identification, serial.identification);
}

#[test]
fn actuator_evaluation_is_identical_serial_and_parallel() {
    let cfg = quick_cfg();
    let td = quick_testbed(&cfg);
    let parallel = evaluate_actuator_faults(&td, &cfg);
    let serial = evaluate_actuator_faults_serial(&td, &cfg);

    assert_eq!(parallel.detection, serial.detection);
    assert_eq!(parallel.identification, serial.identification);
}

#[test]
fn parallel_evaluation_is_reproducible_across_runs() {
    let cfg = quick_cfg();
    let td = quick_testbed(&cfg);
    let first = evaluate_sensor_faults(&td, &cfg);
    let second = evaluate_sensor_faults(&td, &cfg);
    assert_eq!(first.detection, second.detection);
    assert_eq!(first.identification, second.identification);
    assert_eq!(first.detect_latency, second.detect_latency);
    assert_eq!(first.by_fault_type, second.by_fault_type);
}
