//! End-to-end integration: dataset synthesis -> training -> fault injection
//! -> detection -> identification, across every crate boundary.

use dice_core::{DiceConfig, DiceEngine};
use dice_eval::{evaluate_sensor_faults, run_faulty_segment, train_scenario, RunnerConfig};
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_sim::testbed;
use dice_types::{DeviceId, TimeDelta};

fn quick_cfg() -> RunnerConfig {
    RunnerConfig {
        seed: 11,
        trials: 6,
        precompute: TimeDelta::from_hours(96),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

fn quick_testbed() -> dice_eval::TrainedDataset {
    let spec = testbed::dice_testbed("e2e", 11, TimeDelta::from_hours(168), 14, 1);
    train_scenario(spec, &quick_cfg())
}

#[test]
fn faultless_replay_is_mostly_quiet() {
    // 96 hours of training is far below the paper's 300; a small number of
    // unseen-context blips is expected, but most segments must stay quiet.
    let td = quick_testbed();
    let mut noisy_segments = 0;
    for trial in 0..4 {
        let segment = td.plan.segment_for_trial(trial);
        let mut log = td.sim.log_between(segment.start, segment.end);
        let mut engine = DiceEngine::new(&td.model);
        let mut reports = engine.process_range(&mut log, segment.start, segment.end);
        reports.extend(engine.flush());
        if !reports.is_empty() {
            noisy_segments += 1;
        }
    }
    assert!(
        noisy_segments <= 1,
        "{noisy_segments}/4 faultless segments raised alarms"
    );
}

#[test]
fn noise_fault_is_detected_and_attributed() {
    let td = quick_testbed();
    let segment = td.plan.segment_for_trial(1);
    // Noise on a beacon: beacons are exercised around the clock.
    let beacon = td
        .sim
        .registry()
        .sensors()
        .find(|s| s.kind() == dice_types::SensorKind::Location)
        .expect("testbed has beacons")
        .id();
    let fault = SensorFault {
        sensor: beacon,
        fault: FaultType::Noise,
        onset: segment.start + TimeDelta::from_mins(45),
    };
    let clean = td.sim.log_between(segment.start, segment.end);
    let faulty = FaultInjector::new(3).inject_sensor(clean, td.sim.registry(), &fault);
    let outcome = run_faulty_segment(&td, faulty, segment, fault.onset);
    let report = outcome.report.expect("noise fault must be detected");
    assert!(report.devices.contains(&DeviceId::Sensor(beacon)));
    assert!(report.identified_at >= report.detected_at);
    assert!((report.detected_at - fault.onset).as_mins() <= 120);
}

#[test]
fn evaluation_pipeline_produces_consistent_counts() {
    let td = quick_testbed();
    let cfg = quick_cfg();
    let eval = evaluate_sensor_faults(&td, &cfg);
    assert_eq!(
        eval.detection.true_positives + eval.detection.false_negatives,
        cfg.trials
    );
    assert_eq!(
        eval.detection.false_positives + eval.detection.true_negatives,
        cfg.trials
    );
    // Every missed fault contributes exactly one missed device; every
    // detection contributes exactly one judged device.
    assert_eq!(
        eval.identification.correct + eval.identification.missed,
        cfg.trials
    );
    // Latency samples exist exactly for detected faults.
    assert_eq!(
        eval.detect_latency.len() as u64,
        eval.detection.true_positives
    );
    // Attribution totals match the faulty-trial count.
    let attributed: u64 = eval
        .by_fault_type
        .values()
        .map(dice_eval::CheckAttribution::total)
        .sum();
    assert_eq!(attributed, cfg.trials);
}

#[test]
fn model_clone_and_reindex_preserve_behavior() {
    let td = quick_testbed();
    let mut clone = td.model.clone();
    assert_eq!(clone, td.model);
    // rebuild_index (the post-deserialization fixup) must not change results.
    clone.rebuild_index();
    let segment = td.plan.segment_for_trial(0);
    let mut log = td.sim.log_between(segment.start, segment.end);
    let mut a = DiceEngine::new(&td.model);
    let mut b = DiceEngine::new(&clone);
    assert_eq!(
        a.process_range(&mut log.clone(), segment.start, segment.end),
        b.process_range(&mut log, segment.start, segment.end),
    );
}
