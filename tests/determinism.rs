//! Determinism: identical seeds must reproduce identical datasets, models,
//! and evaluation results; different seeds must differ.

use dice_core::DiceConfig;
use dice_datasets::DatasetId;
use dice_eval::{evaluate_sensor_faults, train_scenario, RunnerConfig};
use dice_sim::Simulator;
use dice_types::{TimeDelta, Timestamp};

fn quick_cfg(seed: u64) -> RunnerConfig {
    RunnerConfig {
        seed,
        trials: 4,
        precompute: TimeDelta::from_hours(36),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

fn shrunk_house_a(seed: u64) -> dice_sim::ScenarioSpec {
    let mut spec = DatasetId::HouseA.scenario(seed);
    spec.duration = TimeDelta::from_hours(60);
    spec
}

#[test]
fn same_seed_same_dataset_and_model() {
    let sim_a = Simulator::new(shrunk_house_a(5)).unwrap();
    let sim_b = Simulator::new(shrunk_house_a(5)).unwrap();
    let mut log_a = sim_a.log_between(Timestamp::ZERO, Timestamp::from_hours(24));
    let mut log_b = sim_b.log_between(Timestamp::ZERO, Timestamp::from_hours(24));
    assert_eq!(log_a.events(), log_b.events());

    let td_a = train_scenario(shrunk_house_a(5), &quick_cfg(5));
    let td_b = train_scenario(shrunk_house_a(5), &quick_cfg(5));
    assert_eq!(td_a.model, td_b.model);
}

#[test]
fn same_seed_same_evaluation() {
    let cfg = quick_cfg(5);
    let a = evaluate_sensor_faults(&train_scenario(shrunk_house_a(5), &cfg), &cfg);
    let b = evaluate_sensor_faults(&train_scenario(shrunk_house_a(5), &cfg), &cfg);
    assert_eq!(a.detection, b.detection);
    assert_eq!(a.identification, b.identification);
    assert_eq!(a.detect_latency, b.detect_latency);
    assert_eq!(a.by_fault_type, b.by_fault_type);
}

#[test]
fn different_seeds_differ() {
    let sim_a = Simulator::new(shrunk_house_a(5)).unwrap();
    let sim_b = Simulator::new(shrunk_house_a(6)).unwrap();
    let mut log_a = sim_a.log_between(Timestamp::ZERO, Timestamp::from_hours(24));
    let mut log_b = sim_b.log_between(Timestamp::ZERO, Timestamp::from_hours(24));
    assert_ne!(log_a.events(), log_b.events());
}

#[test]
fn random_access_generation_is_consistent_under_training() {
    // Training reads the data in 6-hour chunks; the same range read in one
    // piece must contain exactly the same events.
    let sim = Simulator::new(shrunk_house_a(9)).unwrap();
    let mut whole = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(12));
    let mut parts = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(6));
    parts.merge(sim.log_between(Timestamp::from_hours(6), Timestamp::from_hours(12)));
    assert_eq!(whole.events(), parts.events());
}
