//! CSV persistence: a dataset exported to CSV and re-imported must train to
//! the identical model.

use dice_core::{ContextExtractor, DiceConfig};
use dice_datasets::{read_csv, write_csv, DatasetId};
use dice_sim::Simulator;
use dice_types::Timestamp;

#[test]
fn csv_round_trip_trains_identical_model() {
    let mut spec = DatasetId::HouseB.scenario(3);
    spec.duration = dice_types::TimeDelta::from_hours(30);
    let sim = Simulator::new(spec).unwrap();
    let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(30));

    let mut buffer = Vec::new();
    write_csv(&mut log, &mut buffer).unwrap();
    let mut restored = read_csv(buffer.as_slice()).unwrap();

    assert_eq!(log.events(), restored.events());

    let extractor = ContextExtractor::new(DiceConfig::default());
    let model_a = extractor.extract(sim.registry(), &mut log).unwrap();
    let model_b = extractor.extract(sim.registry(), &mut restored).unwrap();
    assert_eq!(model_a, model_b);
}

#[test]
fn csv_of_numeric_home_round_trips() {
    let mut spec = DatasetId::DHouseA.scenario(3);
    spec.duration = dice_types::TimeDelta::from_hours(4);
    let sim = Simulator::new(spec).unwrap();
    let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(4));
    let events_before = log.len();

    let mut buffer = Vec::new();
    write_csv(&mut log, &mut buffer).unwrap();
    let text = String::from_utf8(buffer).unwrap();
    assert!(text.starts_with("secs,kind,id,value"));
    assert!(text.contains(",N,"), "numeric rows present");
    assert!(text.contains(",A,"), "actuator rows present");

    let mut restored = read_csv(text.as_bytes()).unwrap();
    assert_eq!(restored.len(), events_before);
    assert_eq!(restored.events(), log.events());
}
