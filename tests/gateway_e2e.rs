//! Streaming/offline equivalence on the full testbed: the gateway path
//! (aggregator threads, frame encoding, k-way merge) must reproduce the
//! offline replay's first report exactly.

use dice_core::{DiceConfig, DiceEngine};
use dice_eval::{train_scenario, RunnerConfig};
use dice_faults::{FaultInjector, FaultType, SensorFault};
use dice_gateway::{partition_by_device, spawn_aggregator, HomeGateway};
use dice_sim::testbed;
use dice_types::{Event, TimeDelta};

#[test]
fn gateway_streaming_equals_offline_replay_on_testbed() {
    let cfg = RunnerConfig {
        seed: 21,
        trials: 0,
        precompute: TimeDelta::from_hours(48),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    };
    let spec = testbed::dice_testbed("gw-e2e", 21, TimeDelta::from_hours(72), 12, 1);
    let td = train_scenario(spec, &cfg);

    let segment = td.plan.segments()[2];
    let beacon = td
        .sim
        .registry()
        .sensors()
        .find(|s| s.kind() == dice_types::SensorKind::Location)
        .unwrap()
        .id();
    let fault = SensorFault {
        sensor: beacon,
        fault: FaultType::Noise,
        onset: segment.start + TimeDelta::from_mins(40),
    };
    let clean = td.sim.log_between(segment.start, segment.end);
    let faulty = FaultInjector::new(2).inject_sensor(clean, td.sim.registry(), &fault);

    // Offline replay.
    let mut offline_log = faulty.clone();
    let mut engine = DiceEngine::new(&td.model);
    let mut offline = engine.process_range(&mut offline_log, segment.start, segment.end);
    offline.extend(engine.flush());
    assert!(
        !offline.is_empty(),
        "offline replay must detect the noise fault"
    );

    // Streaming through five aggregators.
    let events: Vec<Event> = faulty.into_events().collect();
    let parts = partition_by_device(&events, 5);
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        let (tx, rx) = crossbeam::channel::bounded(64);
        handles.push(spawn_aggregator(format!("{i}"), part, tx));
        receivers.push(rx);
    }
    let (alarm_tx, alarm_rx) = crossbeam::channel::unbounded();
    let gateway = HomeGateway::new(&td.model);
    let stats = gateway.run(receivers, &alarm_tx, segment.start, segment.end);
    for handle in handles {
        handle.join().unwrap();
    }
    drop(alarm_tx);
    let alarms: Vec<_> = alarm_rx.iter().collect();

    assert_eq!(stats.windows, 360);
    assert!(!alarms.is_empty());
    assert_eq!(alarms[0].report, offline[0]);
}
