//! `dice-repro monitor --once` end-to-end: the deterministic render mode
//! must be byte-stable across runs on the same replayed segment, carry the
//! sparkline dashboard, and grade every deterministic health rule.

use std::io::BufWriter;

use dice_core::{write_model, ContextExtractor, DiceConfig};
use dice_datasets::write_csv;
use dice_eval::experiments::run_command;
use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta, Timestamp};

/// Trains a 3-sensor model and persists it plus a 60-minute live CSV (one
/// sensor failed-stop halfway) under a fresh temp directory.
fn materialize() -> (String, String) {
    let mut registry = DeviceRegistry::new();
    let s0 = registry.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
    let s1 = registry.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
    let s2 = registry.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
    let mut train = EventLog::new();
    for minute in 0..240 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            train.push_sensor(SensorReading::new(s0, at, true.into()));
            train.push_sensor(SensorReading::new(s1, at, true.into()));
        } else {
            train.push_sensor(SensorReading::new(s2, at, true.into()));
        }
    }
    let model = ContextExtractor::new(DiceConfig::default())
        .extract(&registry, &mut train)
        .expect("training succeeds");

    let mut live = EventLog::new();
    for minute in 0..60 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            live.push_sensor(SensorReading::new(s0, at, true.into()));
            if minute < 30 {
                live.push_sensor(SensorReading::new(s1, at, true.into()));
            }
        } else {
            live.push_sensor(SensorReading::new(s2, at, true.into()));
        }
    }

    let dir = std::env::temp_dir().join(format!("dice-test-monitor-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path = dir.join("model.dice");
    let file = std::fs::File::create(&model_path).expect("model file");
    write_model(&model, BufWriter::new(file)).expect("model writes");
    let csv_path = dir.join("live.csv");
    let file = std::fs::File::create(&csv_path).expect("csv file");
    write_csv(&mut live, BufWriter::new(file)).expect("csv writes");
    (
        model_path.to_string_lossy().into_owned(),
        csv_path.to_string_lossy().into_owned(),
    )
}

#[test]
fn monitor_once_render_is_byte_stable() {
    let (model, csv) = materialize();
    let args = ["--once", "--health", model.as_str(), csv.as_str()];
    let first = run_command("monitor", &args).expect("monitor runs");
    let second = run_command("monitor", &args).expect("monitor runs again");
    assert_eq!(first, second, "--once render must be byte-stable");

    // The dashboard carries the fault, the series, and the health table.
    assert!(
        first.contains("ALARM:"),
        "faulty replay must alarm:\n{first}"
    );
    assert!(first.contains("series (one sample per 30 sim-minutes"));
    assert!(first.contains("events"), "missing series rows:\n{first}");
    assert!(
        first.chars().any(|c| "▂▃▄▅▆▇█".contains(c)),
        "sparklines must show activity:\n{first}"
    );
    assert!(
        first.contains("status: ok"),
        "healthy rules grade ok:\n{first}"
    );
    assert!(
        first.contains("status: n/a"),
        "wall-clock rules must be skipped in --once:\n{first}"
    );
    assert!(
        !first.contains("status: crit"),
        "no crit expected:\n{first}"
    );
    assert!(first.contains("overall: ok"));
    assert!(first.contains("telemetry_overhead"));
    // 60 full minutes plus the partial window after the last event.
    assert!(first.contains("processed 61 windows"), "{first}");
}

#[test]
fn monitor_live_mode_matches_once_totals() {
    let (model, csv) = materialize();
    let once =
        run_command("monitor", &["--once", model.as_str(), csv.as_str()]).expect("once mode runs");
    let live = run_command("monitor", &[model.as_str(), csv.as_str()]).expect("live mode runs");
    // Thread timing may shift the channel-depth series, but the replay's
    // totals and alarms are identical.
    let footer = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("processed "))
            .expect("footer present")
            .to_string()
    };
    assert_eq!(footer(&once), footer(&live));
    assert_eq!(
        once.lines().filter(|l| l.starts_with("ALARM:")).count(),
        live.lines().filter(|l| l.starts_with("ALARM:")).count()
    );
    // No --health flag: the rule table must be absent.
    assert!(!once.contains("health rules"));
}
