//! Decision-trace end-to-end: disabled-mode overhead, enabled-mode
//! steady-state allocation behavior, report-stream bit-identity, and the
//! JSONL → `explain` pipeline naming an injected faulty device.
//!
//! Everything runs inside a single `#[test]` so the counting allocator
//! measures only the section it brackets and the timing sections never
//! compete with a sibling test for cores.
#![allow(unsafe_code)] // the counting global allocator below

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dice_core::{
    parse_trace_jsonl, render_explain, ContextExtractor, DiceConfig, DiceEngine, DiceModel,
    EngineOptions, FaultReport, JsonlTraceWriter, TraceOptions, TraceVerdict,
    DEFAULT_TRACE_CAPACITY,
};
use dice_eval::{train_scenario, RunnerConfig, TrainedDataset};
use dice_sim::testbed;
use dice_telemetry::Telemetry;
use dice_types::{
    DeviceId, DeviceRegistry, Event, EventLog, Room, SensorId, SensorKind, SensorReading,
    TimeDelta, Timestamp,
};

/// Counts heap allocations so the steady-state guard can prove a traced
/// window recycles its ring slot instead of allocating.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn quick_cfg() -> RunnerConfig {
    RunnerConfig {
        seed: 29,
        trials: 4,
        precompute: TimeDelta::from_hours(72),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

/// Replays trial 0's segment through a fresh engine with the given trace
/// options, returning the reports and the wall-clock nanoseconds.
fn replay(td: &TrainedDataset, trace: TraceOptions) -> (Vec<FaultReport>, u128) {
    let segment = td.plan.segment_for_trial(0);
    let mut log = td.sim.log_between(segment.start, segment.end);
    let mut engine = DiceEngine::with_options(
        &td.model,
        EngineOptions {
            telemetry: Telemetry::noop(),
            trace,
            ..EngineOptions::default()
        },
    );
    let start = Instant::now();
    let mut reports = engine.process_range(&mut log, segment.start, segment.end);
    reports.extend(engine.flush());
    (reports, start.elapsed().as_nanos())
}

/// The three-sensor home used across the engine tests: s0+s1 fire together
/// on even minutes, s2 on odd minutes.
fn three_sensor_model() -> (DiceModel, Vec<SensorId>) {
    let mut reg = DeviceRegistry::new();
    let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
    let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
    let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
    let mut training = EventLog::new();
    for minute in 0..240 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            training.push_sensor(SensorReading::new(s0, at, true.into()));
            training.push_sensor(SensorReading::new(s1, at, true.into()));
        } else {
            training.push_sensor(SensorReading::new(s2, at, true.into()));
        }
    }
    let model = ContextExtractor::new(DiceConfig::default())
        .extract(&reg, &mut training)
        .unwrap();
    (model, vec![s0, s1, s2])
}

/// Healthy per-window event slices for the three-sensor home.
fn healthy_windows(
    model: &DiceModel,
    sensors: &[SensorId],
    minutes: i64,
) -> Vec<(Timestamp, Timestamp, Vec<Event>)> {
    let mut log = EventLog::new();
    for minute in 0..minutes {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
        } else {
            log.push_sensor(SensorReading::new(sensors[2], at, true.into()));
        }
    }
    log.windows(model.config().window())
        .map(|w| (w.start, w.end, w.events.to_vec()))
        .collect()
}

#[test]
fn tracing_is_free_when_off_and_allocation_free_when_on() {
    // 1. Overhead guards. The disabled path in `process_window` is a two-arm
    //    phase read plus one `Option::is_some` branch per window —
    //    sub-nanosecond work against the microseconds each window's
    //    correlation scan costs, i.e. well under 1% and too small to time
    //    directly. What is measurable is the *enabled* mode (ring fill, no
    //    sink), a strict superset of the disabled work: interleaved min-of-N
    //    replays of a testbed segment must keep it within 12% in release
    //    builds (~140 ns of slot recycling against ~2 µs windows), with
    //    more slack for debug codegen.
    let cfg = quick_cfg();
    let spec = testbed::dice_testbed("trace", 29, TimeDelta::from_hours(96), 12, 1);
    let td = train_scenario(spec, &cfg);
    let reps = if cfg!(debug_assertions) { 8 } else { 24 };
    let mut off_best = u128::MAX;
    let mut on_best = u128::MAX;
    for _ in 0..reps {
        let (off_reports, off_ns) = replay(&td, TraceOptions::default());
        let (on_reports, on_ns) = replay(&td, TraceOptions::recording());
        assert_eq!(
            off_reports, on_reports,
            "tracing must not change the fault-report stream"
        );
        off_best = off_best.min(off_ns);
        on_best = on_best.min(on_ns);
    }
    assert!(off_best > 0, "replay too short to time");
    #[allow(clippy::cast_precision_loss)]
    let overhead_pct = (on_best as f64 - off_best as f64) / off_best as f64 * 100.0;
    let budget_pct = if cfg!(debug_assertions) { 35.0 } else { 12.0 };
    assert!(
        overhead_pct < budget_pct,
        "tracing overhead {overhead_pct:.2}% exceeds {budget_pct}% \
         (off {off_best} ns vs on {on_best} ns)"
    );

    // 2. Zero steady-state allocations per traced window. Warm a recording
    //    engine far enough past the flight-recorder capacity that every ring
    //    slot's vectors have reached their working size, then require the
    //    next pass of healthy windows to touch the allocator zero times.
    let (model, sensors) = three_sensor_model();
    let windows = healthy_windows(&model, &sensors, 300);
    let warm = 3 * DEFAULT_TRACE_CAPACITY;
    assert!(windows.len() > warm + 64, "need windows beyond warm-up");
    let mut engine = DiceEngine::with_options(
        &model,
        EngineOptions {
            telemetry: Telemetry::noop(),
            trace: TraceOptions::recording(),
            ..EngineOptions::default()
        },
    );
    for (start, end, events) in &windows[..warm] {
        assert!(engine.process_window(*start, *end, events).is_none());
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for (start, end, events) in &windows[warm..] {
        assert!(engine.process_window(*start, *end, events).is_none());
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations,
        0,
        "a warm traced window must recycle its ring slot, not allocate \
         ({allocations} allocations over {} windows)",
        windows.len() - warm
    );

    // 3. End to end: trace an s1 fail-stop through a JSONL sink, then parse
    //    the file back and render the explanation — it must name the device
    //    the engine flagged.
    let path = std::env::temp_dir().join("dice_trace_test_e2e.jsonl");
    let reports = {
        let file = std::fs::File::create(&path).unwrap();
        let mut engine = DiceEngine::with_options(
            &model,
            EngineOptions {
                telemetry: Telemetry::noop(),
                trace: TraceOptions::recording()
                    .with_sink(JsonlTraceWriter::new(file).into_shared()),
                ..EngineOptions::default()
            },
        );
        let mut live = EventLog::new();
        for minute in 0..30 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                live.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            } else {
                live.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        engine.process_log(&mut live)
    };
    assert!(!reports.is_empty(), "the fail-stop must be reported");
    assert!(
        reports[0].devices.contains(&DeviceId::Sensor(sensors[1])),
        "s1 must be implicated: {reports:?}"
    );
    assert!(
        !reports[0].evidence.is_empty(),
        "reports from a tracing engine must carry evidence"
    );

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let log = parse_trace_jsonl(&text).unwrap();
    assert_eq!(log.traces.len(), 30, "one trace per processed window");
    assert!(log
        .traces
        .iter()
        .any(|t| t.reported && t.verdict != TraceVerdict::Normal));
    let rendered = render_explain(&log, None).unwrap();
    assert!(
        rendered.contains(&sensors[1].to_string()),
        "explain must name the fail-stopped sensor:\n{rendered}"
    );
}
