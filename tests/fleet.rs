//! Fleet-layer guarantees: the wire-frame codec is byte-stable and
//! panic-free on untrusted input, alarm output is invariant under the
//! shard count, a single-home fleet matches the single-home gateway, and
//! fleet model memory scales with distinct floor plans, not homes.

use std::sync::Arc;

use dice_core::{ContextExtractor, DiceConfig, DiceModel};
use dice_fleet::{
    decode_frame_slice, decode_frames, encode_frame, Fleet, FleetConfig, FleetRun, ModelCache,
    TraceClock,
};
use dice_gateway::{encode_event, HomeGateway};
use dice_telemetry::{evaluate_health, standard_rules, HealthStatus, Telemetry};
use dice_types::{
    ActuatorEvent, ActuatorId, DeviceRegistry, Event, EventLog, Room, SensorId, SensorKind,
    SensorReading, TimeDelta, Timestamp,
};
use proptest::prelude::*;

/// Floor plan `extra`: `3 + extra` motion sensors, the first two trained
/// to fire together (one correlation group) — the gateway test fixture,
/// widened per plan.
fn plan_devices(extra: usize) -> (DeviceRegistry, Vec<SensorId>) {
    let mut registry = DeviceRegistry::new();
    let sensors = (0..3 + extra)
        .map(|i| {
            let room = if i < 2 { Room::Kitchen } else { Room::Bedroom };
            registry.add_sensor(SensorKind::Motion, format!("s{i}"), room)
        })
        .collect();
    (registry, sensors)
}

/// Trains floor plan `extra` on the deterministic alternating log.
fn train_plan(extra: usize) -> DiceModel {
    let (registry, sensors) = plan_devices(extra);
    let mut log = EventLog::new();
    for minute in 0..240 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
        } else {
            let idx = 2 + (minute as usize / 2) % (sensors.len() - 2);
            log.push_sensor(SensorReading::new(sensors[idx], at, true.into()));
        }
    }
    ContextExtractor::new(DiceConfig::default())
        .extract(&registry, &mut log)
        .expect("training log is non-empty")
}

/// The live schedule for one home over `minutes`: the training pattern,
/// with sensor 1 fail-stopped when `drop_s1` is set.
fn live_events(sensors: &[SensorId], minutes: i64, drop_s1: bool) -> Vec<Event> {
    let mut events = Vec::new();
    for minute in 0..minutes {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            events.push(Event::Sensor(SensorReading::new(
                sensors[0],
                at,
                true.into(),
            )));
            if !drop_s1 {
                events.push(Event::Sensor(SensorReading::new(
                    sensors[1],
                    at,
                    true.into(),
                )));
            }
        } else {
            let idx = 2 + (minute as usize / 2) % (sensors.len() - 2);
            events.push(Event::Sensor(SensorReading::new(
                sensors[idx],
                at,
                true.into(),
            )));
        }
    }
    events
}

/// Streams the same 24-home, 30-minute fleet through `shards` shards.
/// Homes alternate between two floor plans; every home with id ≡ 1
/// (mod 5) fail-stops its second sensor.
fn run_fleet(shards: usize, plans: &[Arc<DiceModel>; 2]) -> FleetRun {
    run_fleet_with(
        FleetConfig {
            shards,
            queue_capacity: 8,
            frames_per_batch: 16,
            batch_windows: 16,
            ..FleetConfig::default()
        },
        plans,
    )
}

/// The 24-home fixture stream under an arbitrary `config`.
fn run_fleet_with(config: FleetConfig, plans: &[Arc<DiceModel>; 2]) -> FleetRun {
    const HOMES: u32 = 24;
    const MINUTES: i64 = 30;
    let sensors = [plan_devices(0).1, plan_devices(1).1];
    let mut fleet = Fleet::new(config);
    for h in 0..HOMES {
        fleet.register_home(h, Arc::clone(&plans[h as usize % 2]));
    }
    fleet.run(
        Timestamp::from_mins(0),
        Timestamp::from_mins(MINUTES),
        |sender| {
            for minute in 0..MINUTES {
                for h in 0..HOMES {
                    let plan = &sensors[h as usize % 2];
                    let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
                    if minute % 2 == 0 {
                        let lead = SensorReading::new(plan[0], at, true.into());
                        sender.send(h, &Event::Sensor(lead));
                        if h % 5 != 1 {
                            let partner = SensorReading::new(plan[1], at, true.into());
                            sender.send(h, &Event::Sensor(partner));
                        }
                    } else {
                        let idx = 2 + (minute as usize / 2) % (plan.len() - 2);
                        let reading = SensorReading::new(plan[idx], at, true.into());
                        sender.send(h, &Event::Sensor(reading));
                    }
                }
            }
        },
    )
}

#[test]
fn alarms_are_invariant_under_shard_count() {
    let plans = [Arc::new(train_plan(0)), Arc::new(train_plan(1))];
    let one = run_fleet(1, &plans);
    let two = run_fleet(2, &plans);
    let eight = run_fleet(8, &plans);

    // The merged per-home alarm reports are bit-identical however the
    // homes were sharded.
    assert_eq!(one.alarms, two.alarms);
    assert_eq!(one.alarms, eight.alarms);

    // And they are the right alarms: exactly the seeded faulty homes.
    for home in &one.alarms {
        assert_eq!(
            !home.reports.is_empty(),
            home.home % 5 == 1,
            "home {} alarm state",
            home.home
        );
    }

    // Aggregate counters that don't depend on batching agree too.
    for other in [&two, &eight] {
        assert_eq!(one.stats.frames, other.stats.frames);
        assert_eq!(one.stats.events, other.stats.events);
        assert_eq!(one.stats.windows, other.stats.windows);
        assert_eq!(one.stats.alarms, other.stats.alarms);
        assert_eq!(one.stats.suppressed, other.stats.suppressed);
        assert_eq!(one.stats.decode_errors, 0);
    }
    assert_eq!(one.stats.windows, 24 * 30);
    assert_eq!(eight.stats.shards, 8);
}

#[test]
fn lineage_ids_are_monotone_per_shard_with_frozen_stage_deltas() {
    let plans = [Arc::new(train_plan(0)), Arc::new(train_plan(1))];
    for shards in [1usize, 2, 8] {
        // A frozen manual clock: every stage delta must come out exactly
        // zero (deltas are computed on one monotone clock, never from
        // mixed time sources), while lineage blocks stay monotone.
        let (clock, _ticks) = TraceClock::manual();
        let run = run_fleet_with(
            FleetConfig {
                shards,
                queue_capacity: 8,
                frames_per_batch: 16,
                batch_windows: 16,
                clock,
                ..FleetConfig::default()
            },
            &plans,
        );
        assert_eq!(run.lineage.len(), shards);
        assert!(run.lineage.iter().any(|records| !records.is_empty()));
        for (shard, records) in run.lineage.iter().enumerate() {
            // Consecutive sweeps of one batch share its lineage block;
            // whenever the block advances it must clear the previous one.
            for pair in records.windows(2) {
                assert!(
                    pair[1].lineage == pair[0].lineage
                        || pair[0].lineage + u64::from(pair[0].frames) <= pair[1].lineage,
                    "shard {shard}: lineage blocks must be monotone and disjoint"
                );
            }
            for record in records {
                assert!(record.frames > 0);
                assert_eq!(record.shard as usize, shard);
                let stages = [
                    record.enqueue_wait_ns,
                    record.queue_wait_ns,
                    record.dequeue_ns,
                    record.scan_ns,
                    record.verdict_ns,
                    record.publish_ns,
                ];
                assert_eq!(stages, [0; 6], "frozen clock must yield zero deltas");
            }
        }
        // Delivered alarms carry the lineage stamp of their sweep, and
        // the stamp names the shard that served the home.
        let stamped: Vec<_> = run
            .alarms
            .iter()
            .flat_map(|h| {
                h.reports
                    .iter()
                    .filter_map(|r| r.lineage.map(|s| (h.home, s)))
            })
            .collect();
        assert!(
            !stamped.is_empty(),
            "fleet alarms must carry lineage stamps"
        );
        for (home, stamp) in stamped {
            assert_eq!(
                stamp.shard as usize,
                dice_fleet::shard_for_home(home, shards),
                "stamp must name the serving shard"
            );
        }
    }
}

#[test]
fn preloaded_runs_are_reproducible_and_match_threaded_alarms() {
    let plans = [Arc::new(train_plan(0)), Arc::new(train_plan(1))];
    let config = |clock: TraceClock| FleetConfig {
        shards: 4,
        frames_per_batch: 16,
        batch_windows: 16,
        clock,
        ..FleetConfig::default()
    };
    const HOMES: u32 = 24;
    const MINUTES: i64 = 30;
    let sensors = [plan_devices(0).1, plan_devices(1).1];
    let preload = |clock: TraceClock| {
        let mut fleet = Fleet::new(config(clock));
        for h in 0..HOMES {
            fleet.register_home(h, Arc::clone(&plans[h as usize % 2]));
        }
        fleet.run_preloaded(
            Timestamp::from_mins(0),
            Timestamp::from_mins(MINUTES),
            |sender| {
                for minute in 0..MINUTES {
                    for h in 0..HOMES {
                        let plan = &sensors[h as usize % 2];
                        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
                        if minute % 2 == 0 {
                            let lead = SensorReading::new(plan[0], at, true.into());
                            sender.send(h, &Event::Sensor(lead));
                            if h % 5 != 1 {
                                let partner = SensorReading::new(plan[1], at, true.into());
                                sender.send(h, &Event::Sensor(partner));
                            }
                        } else {
                            let idx = 2 + (minute as usize / 2) % (plan.len() - 2);
                            let reading = SensorReading::new(plan[idx], at, true.into());
                            sender.send(h, &Event::Sensor(reading));
                        }
                    }
                }
            },
        )
    };
    let a = preload(TraceClock::manual().0);
    let b = preload(TraceClock::manual().0);
    // With a frozen manual clock the whole run — stats, alarms, lineage
    // records — is deterministic, which is what byte-stable fleet-monitor
    // frames build on.
    assert_eq!(a, b);
    let threaded = run_fleet_with(config(TraceClock::manual().0), &plans);
    assert_eq!(a.alarms, threaded.alarms);
    assert_eq!(a.stats.windows, threaded.stats.windows);
}

#[test]
fn stalled_shard_grows_queue_waits_and_trips_the_straggler_rule() {
    let plans = [Arc::new(train_plan(0)), Arc::new(train_plan(1))];
    let telemetry = Telemetry::recording();
    // Shard 0 sleeps 3ms per batch behind a 2-deep queue: its queue-wait
    // sketch must grow and the producer must block (counted in
    // occurrences and nanoseconds), while the other shards stay prompt —
    // exactly the straggler shape the health rule grades.
    let run = run_fleet_with(
        FleetConfig {
            shards: 4,
            queue_capacity: 2,
            frames_per_batch: 4,
            batch_windows: 16,
            telemetry: telemetry.clone(),
            stall: Some((0, 3)),
            ..FleetConfig::default()
        },
        &plans,
    );
    assert!(run.stats.backpressure_waits > 0, "sender must have blocked");
    assert!(
        run.stats.backpressure_wait_ns > 0,
        "blocked time must be measured, not just counted"
    );

    let snapshot = telemetry.snapshot().unwrap();
    let children = snapshot
        .sketch_family("dice_fleet_stage_queue_wait_ns")
        .unwrap();
    let stalled = children
        .iter()
        .find(|c| c.values == ["s0"])
        .expect("stalled shard records queue waits");
    assert!(stalled.count > 0);
    let best_other = children
        .iter()
        .filter(|c| c.values != ["s0"])
        .map(|c| c.p99)
        .max()
        .expect("other shards record too");
    assert!(
        stalled.p99 > best_other.saturating_mul(4),
        "stalled shard p99 {} must dwarf the others' {best_other}",
        stalled.p99
    );

    // The injected slow shard drives the straggler rule to warn/crit.
    let report = evaluate_health(&standard_rules(), &snapshot, false);
    let row = report
        .rows
        .iter()
        .find(|r| r.id == "fleet_stage_straggler")
        .expect("straggler rule is a standard rule");
    assert!(
        matches!(row.status, Some(HealthStatus::Warn | HealthStatus::Crit)),
        "straggler rule must fire, got {:?} ({})",
        row.status,
        row.observed
    );

    // Per-shard back-pressure families point at the stalled shard.
    let waits = snapshot
        .family_series("dice_fleet_shard_backpressure_waits_total")
        .unwrap();
    let wait_ns = snapshot
        .family_series("dice_fleet_shard_backpressure_wait_ns_total")
        .unwrap();
    assert!(waits.iter().any(|(v, n)| v == &["s0"] && *n > 0));
    assert!(wait_ns.iter().any(|(v, n)| v == &["s0"] && *n > 0));
}

#[test]
fn single_home_fleet_matches_the_gateway() {
    let model = Arc::new(train_plan(0));
    let sensors = plan_devices(0).1;
    let events = live_events(&sensors, 120, true);
    let from = Timestamp::from_mins(0);
    let to = Timestamp::from_mins(120);

    // The single-home gateway, fed the same stream over one aggregator
    // channel.
    let (tx, rx) = crossbeam::channel::unbounded();
    for event in &events {
        tx.send(encode_event(event)).unwrap();
    }
    drop(tx);
    let (alarm_tx, alarm_rx) = crossbeam::channel::unbounded();
    let gateway = HomeGateway::new(Arc::clone(&model));
    let stats = gateway.run(vec![rx], &alarm_tx, from, to);
    drop(alarm_tx);
    let gateway_reports: Vec<_> = alarm_rx.iter().map(|a| a.report).collect();
    assert!(
        !gateway_reports.is_empty(),
        "the fail-stopped sensor must alarm"
    );

    // A one-home fleet over the wire-frame path.
    let mut fleet = Fleet::new(FleetConfig {
        shards: 1,
        ..FleetConfig::default()
    });
    fleet.register_home(0, model);
    let run = fleet.run(from, to, |sender| {
        for event in &events {
            sender.send(0, event);
        }
    });

    assert_eq!(run.alarms.len(), 1);
    assert_eq!(run.alarms[0].home, 0);
    assert_eq!(run.alarms[0].reports, gateway_reports);
    assert_eq!(run.stats.windows, stats.windows);
}

#[test]
fn fleet_memory_scales_with_distinct_models() {
    let cache = ModelCache::new();
    let mut fleet = Fleet::new(FleetConfig::default());
    for h in 0..100u32 {
        let plan = h as usize % 3;
        let model = cache.get_or_train(&format!("plan{plan}"), || train_plan(plan));
        fleet.register_home(h, model);
    }
    assert_eq!(fleet.homes(), 100);
    assert_eq!(cache.len(), 3);
    assert_eq!(
        fleet.models_resident(),
        3,
        "100 homes must share 3 model allocations"
    );
}

/// An arbitrary event covering all three frame tags. Numeric values stay
/// finite so decoded equality is well-defined.
fn event_strategy() -> impl Strategy<Value = Event> {
    (
        0u8..3,
        any::<u32>(),
        -1_000_000_000i64..1_000_000_000i64,
        any::<bool>(),
        -1.0e12f64..1.0e12,
    )
        .prop_map(|(tag, id, secs, b, v)| {
            let at = Timestamp::from_secs(secs);
            match tag {
                0 => Event::Sensor(SensorReading::new(SensorId::new(id), at, b.into())),
                1 => Event::Sensor(SensorReading::new(SensorId::new(id), at, v.into())),
                _ => Event::Actuator(ActuatorEvent::new(ActuatorId::new(id), at, b)),
            }
        })
}

proptest! {
    /// Encode → decode → re-encode is the identity on frames: the decoded
    /// frame equals the input and the re-encoded bytes are byte-identical
    /// (the wire format has one canonical encoding).
    #[test]
    fn frames_round_trip_byte_stably(home in any::<u32>(), event in event_strategy()) {
        let encoded = encode_frame(home, &event);
        let (frame, used) = decode_frame_slice(&encoded).expect("own encoding must decode");
        prop_assert_eq!(used, encoded.len());
        prop_assert_eq!(frame.home, home);
        prop_assert_eq!(&frame.event, &event);
        let again = encode_frame(frame.home, &frame.event);
        prop_assert_eq!(again.as_slice(), encoded.as_slice());
    }

    /// Decoding never panics on arbitrary bytes — truncated, corrupt, or
    /// oversized input returns an error (or a shorter valid frame), and
    /// the batch iterator terminates.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        data in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = decode_frame_slice(&data);
        let frames: Vec<_> = decode_frames(&data).collect();
        // The iterator stops at the first error, so it is finite and any
        // error is last.
        for result in &frames[..frames.len().saturating_sub(1)] {
            prop_assert!(result.is_ok());
        }
    }

    /// Flipping any single byte of a valid frame either still decodes (the
    /// flipped byte was payload, id, or timestamp) or returns an error —
    /// never a panic, and never a frame that re-encodes differently from a
    /// canonical encoding of itself.
    #[test]
    fn corrupted_frames_fail_closed(
        home in any::<u32>(),
        event in event_strategy(),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = encode_frame(home, &event).as_slice().to_vec();
        let at = flip_at % bytes.len();
        bytes[at] ^= flip_bits;
        if let Ok((frame, used)) = decode_frame_slice(&bytes) {
            // Whatever decoded must re-encode to exactly the bytes it was
            // decoded from (bit-exact even for odd float payloads).
            let canonical = encode_frame(frame.home, &frame.event);
            prop_assert_eq!(canonical.as_slice(), &bytes[..used]);
        }
    }
}
