//! Cross-crate property-based tests (proptest) for the core invariants.

use dice_core::{
    parse_trace_jsonl, read_model, write_model, write_trace_jsonl, BitSet, ContextExtractor,
    DecisionTrace, DiceConfig, DiceEngine, DiceModel, EngineOptions, FaultReport, GroupTable,
    ParallelTrainer, RoutedScanIndex, ScanBackend, ScanIndex, SlicedScanIndex, TraceHeader,
    TraceLog, TraceOptions, TracePhase, TraceTransition, TraceVerdict, TransitionCase,
    TransitionCounts,
};
use dice_telemetry::Telemetry;
use dice_types::{
    ActuatorEvent, ActuatorId, ActuatorKind, DeviceRegistry, EventLog, GroupId, Room, SensorId,
    SensorKind, SensorReading, TimeDelta, Timestamp,
};
use proptest::prelude::*;

/// Trains a 4-motion-sensor model on `fires` and replays `live` through an
/// engine with the given trace options, returning in-stream reports plus
/// the flushed tail.
fn replay_with_trace(
    train: &[(u32, i64)],
    live: &[(u32, i64)],
    trace: TraceOptions,
) -> Result<(DiceModel, Vec<FaultReport>), dice_core::DiceError> {
    let mut registry = DeviceRegistry::new();
    for i in 0..4 {
        registry.add_sensor(SensorKind::Motion, format!("s{i}"), Room::Kitchen);
    }
    let build = |fires: &[(u32, i64)]| {
        let mut log = EventLog::new();
        for &(sensor, minute) in fires {
            log.push_sensor(SensorReading::new(
                SensorId::new(sensor),
                Timestamp::from_mins(minute) + TimeDelta::from_secs(7),
                true.into(),
            ));
        }
        log
    };
    let model =
        ContextExtractor::new(DiceConfig::default()).extract(&registry, &mut build(train))?;
    let mut engine = DiceEngine::with_options(
        &model,
        EngineOptions {
            telemetry: Telemetry::noop(),
            trace,
            ..EngineOptions::default()
        },
    );
    let mut reports = engine.process_log(&mut build(live));
    reports.extend(engine.flush());
    drop(engine);
    Ok((model, reports))
}

/// A hand-built trace exercising serializer paths engine evidence may not
/// hit: every transition case, empty and populated options, and a
/// probability with a long decimal expansion.
fn synthetic_trace(index: u64, observed: f64, bits: usize) -> DecisionTrace {
    let words = bits.div_ceil(64);
    let word = |salt: u64| {
        let raw = (index + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(u32::try_from(salt % 63).unwrap());
        // Keep the top word consistent with `bits` so `state()` stays valid.
        if bits.is_multiple_of(64) {
            raw
        } else {
            raw & ((1u64 << (bits % 64)) - 1)
        }
    };
    let case = match index % 3 {
        0 => TransitionCase::G2G {
            from: GroupId::new(1),
            to: GroupId::new(2),
        },
        1 => TransitionCase::G2A {
            from: GroupId::new(3),
            actuator: ActuatorId::new(0),
        },
        _ => TransitionCase::A2G {
            actuator: ActuatorId::new(1),
            to: GroupId::new(4),
        },
    };
    let nearest = index.is_multiple_of(2).then(|| (GroupId::new(1), 2));
    DecisionTrace {
        window: index,
        start: Timestamp::from_mins(i64::try_from(index).unwrap()),
        end: Timestamp::from_mins(i64::try_from(index).unwrap() + 1),
        bits,
        ones: u32::try_from(index % 7).unwrap(),
        state_words: (0..words as u64).map(word).collect(),
        main_group: (index % 2 == 1).then(|| GroupId::new(7)),
        candidates: vec![(GroupId::new(1), 2), (GroupId::new(5), 3)],
        nearest,
        nearest_state: if nearest.is_some() {
            (0..words as u64).map(|w| word(w + 17)).collect()
        } else {
            Vec::new()
        },
        transitions: vec![TraceTransition {
            case,
            observed,
            threshold: 0.0,
            support: index,
            min_support: 3,
        }],
        phase_before: TracePhase::Monitoring,
        phase_after: if index.is_multiple_of(2) {
            TracePhase::Identifying
        } else {
            TracePhase::Monitoring
        },
        verdict: match index % 3 {
            0 => TraceVerdict::Normal,
            1 => TraceVerdict::Correlation,
            _ => TraceVerdict::Transition,
        },
        reported: index.is_multiple_of(4),
        conclusive: index.is_multiple_of(8),
    }
}

fn bitset_strategy(len: usize) -> impl Strategy<Value = BitSet> {
    prop::collection::vec(any::<bool>(), len).prop_map(move |bits| {
        BitSet::from_indices(
            len,
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
        )
    })
}

proptest! {
    /// Hamming distance is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn hamming_distance_is_a_metric(
        a in bitset_strategy(40),
        b in bitset_strategy(40),
        c in bitset_strategy(40),
    ) {
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b) == 0, a == b);
        prop_assert!(
            a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c)
        );
    }

    /// The bounded-distance variant agrees with the exact distance.
    #[test]
    fn hamming_distance_within_agrees(
        a in bitset_strategy(70),
        b in bitset_strategy(70),
        limit in 0u32..70,
    ) {
        let exact = a.hamming_distance(&b);
        match a.hamming_distance_within(&b, limit) {
            Some(d) => prop_assert_eq!(d, exact),
            None => prop_assert!(exact > limit),
        }
    }

    /// diff_indices returns exactly the differing bits.
    #[test]
    fn diff_indices_matches_distance(
        a in bitset_strategy(40),
        b in bitset_strategy(40),
    ) {
        let diff: Vec<usize> = a.diff_indices(&b).collect();
        prop_assert_eq!(diff.len() as u32, a.hamming_distance(&b));
        for i in diff {
            prop_assert_ne!(a.get(i), b.get(i));
        }
    }

    /// Group observation is idempotent on ids and total counts add up.
    #[test]
    fn group_table_counts_are_consistent(
        states in prop::collection::vec(bitset_strategy(12), 1..60),
    ) {
        let mut table = GroupTable::new(12);
        for state in &states {
            table.observe(state);
        }
        prop_assert_eq!(table.total_observations(), states.len() as u64);
        // Every observed state has an exact-match group.
        for state in &states {
            let id = table.lookup(state).expect("observed state must be a group");
            prop_assert_eq!(table.state(id), state);
        }
        // Candidate search at max distance finds every group.
        let all = table.candidates(&states[0], 12);
        prop_assert_eq!(all.len(), table.len());
    }

    /// The packed scan index agrees exactly with the naive group-table scan
    /// for any table, query, and threshold — including the ordering of
    /// candidates and nearest-tie sets. Width 130 exercises multi-word rows.
    #[test]
    fn scan_index_matches_naive_table(
        states in prop::collection::vec(bitset_strategy(130), 1..50),
        query in bitset_strategy(130),
        max_distance in 0u32..20,
    ) {
        let mut table = GroupTable::new(130);
        for state in &states {
            table.observe(state);
        }
        let index = ScanIndex::build(&table);
        prop_assert_eq!(index.len(), table.len());
        let naive_candidates = table.candidates(&query, max_distance);
        let naive_nearest = table.nearest(&query);
        prop_assert_eq!(&index.candidates(&query, max_distance), &naive_candidates);
        prop_assert_eq!(&index.nearest(&query), &naive_nearest);

        // Scratch reuse: a dirty buffer from a previous query must not leak
        // into the next result.
        let mut scratch = index.candidates(&states[0], 130);
        index.candidates_into(&query, max_distance, &mut scratch);
        prop_assert_eq!(&scratch, &naive_candidates);

        // The bit-sliced index returns bit-identical candidates, ties, and
        // ScanProfiles on every backend this CPU supports, and its batch
        // entry points match the per-query singles element-wise.
        let batch_queries: Vec<&BitSet> =
            std::iter::once(&query).chain(states.iter().take(3)).collect();
        let mut reference_profiles = None;
        for backend in ScanBackend::available() {
            let sliced = SlicedScanIndex::with_backend(&table, backend);
            prop_assert_eq!(sliced.len(), table.len());
            prop_assert_eq!(sliced.backend(), backend);

            let mut candidates = Vec::new();
            let profile = sliced.candidates_into(&query, max_distance, &mut candidates);
            prop_assert_eq!(&candidates, &naive_candidates);
            let mut nearest = Vec::new();
            let nearest_profile = sliced.nearest_into(&query, &mut nearest);
            prop_assert_eq!(&nearest, &naive_nearest);
            match reference_profiles {
                None => reference_profiles = Some((profile, nearest_profile)),
                Some((p, np)) => {
                    prop_assert_eq!(p, profile, "candidate profile differs on {}", backend.name());
                    prop_assert_eq!(np, nearest_profile, "nearest profile differs on {}", backend.name());
                }
            }

            let mut candidate_batch = Vec::new();
            let batch_profile =
                sliced.candidates_batch_into(&batch_queries, max_distance, &mut candidate_batch);
            let mut summed = dice_core::ScanProfile::default();
            for (q, slots) in batch_queries.iter().zip(&candidate_batch) {
                prop_assert_eq!(slots, &table.candidates(q, max_distance));
                let p = sliced.candidates_into(q, max_distance, &mut scratch);
                summed.rows += p.rows;
                summed.pruned += p.pruned;
                summed.blocks += p.blocks;
                summed.early_stops += p.early_stops;
            }
            prop_assert_eq!(batch_profile, summed, "batch profile is the sum of singles");

            let mut nearest_batch = Vec::new();
            let _ = sliced.nearest_batch_into(&batch_queries, &mut nearest_batch);
            for (q, slots) in batch_queries.iter().zip(&nearest_batch) {
                prop_assert_eq!(slots, &table.nearest(q));
            }
        }

        // The crossover-routed index — whichever side of the group-count
        // threshold this table lands on — stays bit-identical to the naive
        // scan through every entry point.
        let routed = RoutedScanIndex::build(&table);
        prop_assert_eq!(routed.len(), table.len());
        prop_assert_eq!(&routed.candidates(&query, max_distance), &naive_candidates);
        prop_assert_eq!(&routed.nearest(&query), &naive_nearest);
        let mut routed_batch = Vec::new();
        let _ = routed.candidates_batch_into(&batch_queries, max_distance, &mut routed_batch);
        for (q, slots) in batch_queries.iter().zip(&routed_batch) {
            prop_assert_eq!(slots, &table.candidates(q, max_distance));
        }
        let mut routed_nearest = Vec::new();
        let _ = routed.nearest_batch_into(&batch_queries, &mut routed_nearest);
        for (q, slots) in batch_queries.iter().zip(&routed_nearest) {
            prop_assert_eq!(slots, &table.nearest(q));
        }
    }

    /// Transition probabilities per row sum to one (over observed columns).
    #[test]
    fn transition_rows_are_distributions(
        pairs in prop::collection::vec((0u32..8, 0u32..8), 1..100),
    ) {
        let mut t = TransitionCounts::new();
        for &(from, to) in &pairs {
            t.record(from, to);
        }
        for from in 0..8 {
            if t.row_total(from) == 0 { continue; }
            let sum: f64 = t.successors(from).iter().map(|&to| t.prob(from, to)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", from, sum);
        }
    }

    /// Loading arbitrarily corrupted model bytes returns an error instead of
    /// panicking, and a clean round trip is exact.
    #[test]
    fn model_io_survives_corruption(
        flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..8),
        truncate_at in 0usize..4096,
    ) {
        let mut registry = DeviceRegistry::new();
        let m = registry.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let t = registry.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let mut log = EventLog::new();
        for minute in 0..30 {
            let at = Timestamp::from_mins(minute);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(m, at, true.into()));
            }
            log.push_sensor(SensorReading::new(t, at, (20.0 + (minute % 3) as f64).into()));
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&registry, &mut log)
            .unwrap();
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).unwrap();
        prop_assert_eq!(&read_model(bytes.as_slice()).unwrap(), &model);

        // Corrupt: flip bytes and truncate; decoding must return Err or a
        // (coincidentally still valid) model — never panic.
        let mut corrupted = bytes.clone();
        for &(pos, value) in &flips {
            let len = corrupted.len();
            corrupted[pos % len] ^= value;
        }
        corrupted.truncate((truncate_at % corrupted.len()).max(1));
        let _ = read_model(corrupted.as_slice());
    }

    /// Chunked parallel training is bit-identical to the serial extractor —
    /// same model *and* same serialized bytes — for any log (binary-only,
    /// numeric-heavy, with or without actuators, down to a single window)
    /// and any chunk count (1, 2, 7, exactly the window count, and more
    /// chunks than windows, which leaves some chunks empty).
    #[test]
    fn parallel_training_is_byte_identical_to_serial(
        binary_fires in prop::collection::vec((0u32..3, 0i64..90), 1..60),
        numeric_reads in prop::collection::vec((0u32..2, 0i64..90, -50i32..150), 0..60),
        actuations in prop::collection::vec((0u32..2, 0i64..90, any::<bool>()), 0..20),
        collapse in any::<bool>(),
    ) {
        let mut registry = DeviceRegistry::new();
        for i in 0..3 {
            registry.add_sensor(SensorKind::Motion, format!("m{i}"), Room::Kitchen);
        }
        for i in 0..2 {
            registry.add_sensor(SensorKind::Temperature, format!("t{i}"), Room::Kitchen);
        }
        let bulbs = [
            registry.add_actuator(ActuatorKind::SmartBulb, "a0", Room::Kitchen),
            registry.add_actuator(ActuatorKind::SmartBulb, "a1", Room::Kitchen),
        ];
        // `collapse` squeezes every event into minute zero, so the log
        // covers exactly one window.
        let at = |minute: i64, offset: i64| {
            Timestamp::from_mins(if collapse { 0 } else { minute })
                + TimeDelta::from_secs(offset % 60)
        };
        let mut log = EventLog::new();
        for &(sensor, minute) in &binary_fires {
            log.push_sensor(SensorReading::new(
                SensorId::new(sensor),
                at(minute, i64::from(sensor) * 13),
                true.into(),
            ));
        }
        for &(sensor, minute, value) in &numeric_reads {
            log.push_sensor(SensorReading::new(
                SensorId::new(3 + sensor),
                at(minute, i64::from(value.unsigned_abs())),
                (f64::from(value) * 0.25).into(),
            ));
        }
        for &(actuator, minute, active) in &actuations {
            log.push_actuator(ActuatorEvent::new(
                bulbs[actuator as usize],
                at(minute, i64::from(actuator) * 29),
                active,
            ));
        }

        let serial = ContextExtractor::new(DiceConfig::default())
            .extract(&registry, &mut log.clone())
            .unwrap();
        let mut serial_bytes = Vec::new();
        write_model(&serial, &mut serial_bytes).unwrap();

        let num_windows = serial.training_windows() as usize;
        for chunks in [1, 2, 7, num_windows, num_windows + 5] {
            let parallel = ParallelTrainer::new(DiceConfig::default())
                .with_chunks(chunks.max(1))
                .extract(&registry, &mut log.clone())
                .unwrap();
            prop_assert_eq!(&parallel, &serial, "model mismatch at {} chunks", chunks);
            let mut parallel_bytes = Vec::new();
            write_model(&parallel, &mut parallel_bytes).unwrap();
            prop_assert_eq!(
                &parallel_bytes,
                &serial_bytes,
                "serialized bytes differ at {} chunks",
                chunks
            );
        }
    }

    /// Tracing is an observer: for any training data and any live stream, an
    /// engine with the flight recorder on emits a bit-identical fault-report
    /// stream to one with tracing off — evidence rides along on the traced
    /// side but never changes a decision.
    #[test]
    fn tracing_never_changes_fault_reports(
        train in prop::collection::vec((0u32..4, 0i64..240), 10..120),
        live in prop::collection::vec((0u32..4, 0i64..60), 5..60),
    ) {
        let (_, plain) = replay_with_trace(&train, &live, TraceOptions::default()).unwrap();
        let (_, traced) = replay_with_trace(&train, &live, TraceOptions::recording()).unwrap();
        prop_assert_eq!(&plain, &traced, "tracing changed the report stream");
        for report in &plain {
            prop_assert!(report.evidence.is_empty(), "untraced engines carry no evidence");
        }
        for report in &traced {
            prop_assert!(!report.evidence.is_empty(), "traced reports must carry evidence");
        }
        // `FaultReport` equality excludes evidence by design; everything
        // else must agree down to the Debug rendering.
        let mut stripped = traced.clone();
        for report in &mut stripped {
            report.evidence.clear();
        }
        prop_assert_eq!(format!("{plain:?}"), format!("{stripped:?}"));
    }

    /// The JSONL trace format round-trips byte-stably: serialize → parse →
    /// serialize is the identity on bytes, and parse recovers the exact
    /// structures — for engine-produced evidence and for hand-built traces
    /// covering every transition case.
    #[test]
    fn trace_jsonl_round_trip_is_byte_stable(
        train in prop::collection::vec((0u32..4, 0i64..240), 10..120),
        live in prop::collection::vec((0u32..4, 0i64..60), 5..60),
        probs in prop::collection::vec(0u32..=1000, 1..5),
    ) {
        let (model, reports) =
            replay_with_trace(&train, &live, TraceOptions::recording()).unwrap();
        let header = TraceHeader::from_layout(model.layout());
        let mut traces: Vec<DecisionTrace> = reports
            .iter()
            .flat_map(|r| r.evidence.iter().cloned())
            .collect();
        let bits = header.num_bits;
        for (i, &p) in probs.iter().enumerate() {
            traces.push(synthetic_trace(i as u64, f64::from(p) / 999.0, bits));
        }
        let log = TraceLog { header, traces };
        let text = write_trace_jsonl(&log);
        let parsed = parse_trace_jsonl(&text);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &log, "parse must recover the exact structures");
        prop_assert_eq!(
            write_trace_jsonl(&parsed),
            text,
            "re-serialization must be byte-identical"
        );
    }

    /// A model trained on any binary event log never raises a correlation
    /// violation when replaying its own training data.
    #[test]
    fn replaying_training_data_matches_main_groups(
        fires in prop::collection::vec(
            (0u32..4, 0i64..240),
            10..120,
        ),
    ) {
        let mut registry = DeviceRegistry::new();
        for i in 0..4 {
            registry.add_sensor(SensorKind::Motion, format!("s{i}"), Room::Kitchen);
        }
        let mut log = EventLog::new();
        for &(sensor, minute) in &fires {
            log.push_sensor(SensorReading::new(
                SensorId::new(sensor),
                Timestamp::from_mins(minute) + TimeDelta::from_secs(7),
                true.into(),
            ));
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&registry, &mut log)
            .unwrap();
        // Every training window's state set must be a known group.
        for window in log.windows(TimeDelta::from_mins(1)) {
            let obs = model.binarizer().binarize(window.start, window.end, window.events);
            prop_assert!(
                model.groups().lookup(&obs.state).is_some(),
                "training window produced an unknown state"
            );
        }
    }
}
