//! Telemetry end-to-end: enabled-vs-noop determinism, exporter round trips,
//! and the recording-overhead guard.
//!
//! Everything runs inside a single `#[test]` so the process-global telemetry
//! handle is installed exactly once, before any code path in this binary
//! reads it.

use std::time::Instant;

use dice_core::{DiceConfig, DiceEngine, EngineOptions, FaultReport};
use dice_eval::{evaluate_sensor_faults, train_scenario, RunnerConfig, TrainedDataset};
use dice_sim::testbed;
use dice_telemetry::{validate_snapshot_json, Telemetry};
use dice_types::TimeDelta;

fn quick_cfg() -> RunnerConfig {
    RunnerConfig {
        seed: 23,
        trials: 4,
        precompute: TimeDelta::from_hours(72),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

/// Replays trial 0's segment through a fresh engine wired to `telemetry`,
/// returning the reports and the wall-clock nanoseconds of the replay.
fn replay(td: &TrainedDataset, telemetry: Telemetry) -> (Vec<FaultReport>, u128) {
    let segment = td.plan.segment_for_trial(0);
    let mut log = td.sim.log_between(segment.start, segment.end);
    let mut engine = DiceEngine::with_options(
        &td.model,
        EngineOptions {
            telemetry,
            ..EngineOptions::default()
        },
    );
    let start = Instant::now();
    let mut reports = engine.process_range(&mut log, segment.start, segment.end);
    reports.extend(engine.flush());
    (reports, start.elapsed().as_nanos())
}

#[test]
fn telemetry_is_deterministic_exportable_and_cheap() {
    let recording = Telemetry::recording();
    assert!(
        Telemetry::install_global(recording.clone()),
        "this test binary must be the first reader of the global handle"
    );

    let cfg = quick_cfg();
    let spec = testbed::dice_testbed("telemetry", 23, TimeDelta::from_hours(96), 12, 1);
    let td = train_scenario(spec, &cfg);

    // 1. Determinism and overhead: interleaved replays, min-of-N per mode.
    //    The engine reads one clock per check either way (the CostProfile
    //    bridge), so recording adds only atomic updates; the guard bounds
    //    that at 5% in release builds (debug codegen gets more slack).
    let reps = if cfg!(debug_assertions) { 8 } else { 24 };
    let mut noop_best = u128::MAX;
    let mut recording_best = u128::MAX;
    let mut reference: Option<Vec<FaultReport>> = None;
    for _ in 0..reps {
        let (noop_reports, noop_ns) = replay(&td, Telemetry::noop());
        let (rec_reports, rec_ns) = replay(&td, Telemetry::recording());
        assert_eq!(
            noop_reports, rec_reports,
            "recording telemetry must not change fault reports"
        );
        if let Some(reference) = &reference {
            assert_eq!(reference, &rec_reports, "replay must be reproducible");
        } else {
            reference = Some(rec_reports);
        }
        noop_best = noop_best.min(noop_ns);
        recording_best = recording_best.min(rec_ns);
    }
    assert!(noop_best > 0, "replay too short to time");
    #[allow(clippy::cast_precision_loss)]
    let overhead_pct = (recording_best as f64 - noop_best as f64) / noop_best as f64 * 100.0;
    let budget_pct = if cfg!(debug_assertions) { 30.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "telemetry overhead {overhead_pct:.2}% exceeds {budget_pct}% \
         (noop {noop_best} ns vs recording {recording_best} ns)"
    );

    // 2. The eval runner reports to the installed global recorder.
    let eval = evaluate_sensor_faults(&td, &cfg);
    assert_eq!(
        eval.detection.true_positives + eval.detection.false_negatives,
        cfg.trials
    );
    let snapshot = Telemetry::global()
        .snapshot()
        .expect("global handle is recording");
    assert!(snapshot.counter("dice_eval_trials_total").unwrap() >= cfg.trials);
    assert!(snapshot.counter("dice_eval_datasets_total").unwrap() >= 1);
    assert!(snapshot.counter("dice_engine_windows_total").unwrap() > 0);
    let (trial_count, trial_sum) = snapshot.histogram("dice_eval_trial_ns").unwrap();
    assert!(trial_count >= cfg.trials && trial_sum > 0);

    // 3. Exporters: the JSON snapshot satisfies its own schema and the
    //    Prometheus rendition exposes the same registry.
    let json = snapshot.to_json();
    validate_snapshot_json(&json).expect("snapshot must satisfy its schema");
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("# TYPE dice_engine_windows_total counter"));
    assert!(prom.contains("# TYPE dice_gateway_channel_depth gauge"));
    assert!(prom.contains("# TYPE dice_eval_trial_ns histogram"));
    assert!(prom.contains("dice_engine_correlation_check_ns_bucket{le=\"+Inf\"}"));
}
