//! Telemetry end-to-end: enabled-vs-noop determinism, exporter round trips,
//! and the recording-overhead guard.
//!
//! Everything runs inside a single `#[test]` so the process-global telemetry
//! handle is installed exactly once, before any code path in this binary
//! reads it.

use std::time::Instant;

use dice_core::{DiceConfig, DiceEngine, EngineOptions, FaultReport};
use dice_eval::{evaluate_sensor_faults, train_scenario, RunnerConfig, TrainedDataset};
use dice_sim::testbed;
use dice_telemetry::{
    validate_snapshot_json, EventRing, QuantileSketch, SlotRing, Telemetry, SKETCH_RELATIVE_ERROR,
};
use dice_types::TimeDelta;
use proptest::prelude::*;

fn quick_cfg() -> RunnerConfig {
    RunnerConfig {
        seed: 23,
        trials: 4,
        precompute: TimeDelta::from_hours(72),
        segment_len: TimeDelta::from_hours(6),
        dice: DiceConfig::default(),
    }
}

/// Replays trial 0's segment through a fresh engine wired to `telemetry`,
/// returning the reports and the wall-clock nanoseconds of the replay.
fn replay(td: &TrainedDataset, telemetry: Telemetry) -> (Vec<FaultReport>, u128) {
    let segment = td.plan.segment_for_trial(0);
    let mut log = td.sim.log_between(segment.start, segment.end);
    let mut engine = DiceEngine::with_options(
        &td.model,
        EngineOptions {
            telemetry,
            ..EngineOptions::default()
        },
    );
    let start = Instant::now();
    let mut reports = engine.process_range(&mut log, segment.start, segment.end);
    reports.extend(engine.flush());
    (reports, start.elapsed().as_nanos())
}

#[test]
fn telemetry_is_deterministic_exportable_and_cheap() {
    let recording = Telemetry::recording();
    assert!(
        Telemetry::install_global(recording.clone()),
        "this test binary must be the first reader of the global handle"
    );

    let cfg = quick_cfg();
    let spec = testbed::dice_testbed("telemetry", 23, TimeDelta::from_hours(96), 12, 1);
    let td = train_scenario(spec, &cfg);

    // 1. Determinism and overhead: interleaved replays, min-of-N per mode.
    //    The engine reads one clock per check either way (the CostProfile
    //    bridge), so recording adds only atomic updates; the guard bounds
    //    that at 5% in release builds (debug codegen gets more slack).
    let reps = if cfg!(debug_assertions) { 8 } else { 24 };
    let mut noop_best = u128::MAX;
    let mut recording_best = u128::MAX;
    let mut reference: Option<Vec<FaultReport>> = None;
    for _ in 0..reps {
        let (noop_reports, noop_ns) = replay(&td, Telemetry::noop());
        let (rec_reports, rec_ns) = replay(&td, Telemetry::recording());
        assert_eq!(
            noop_reports, rec_reports,
            "recording telemetry must not change fault reports"
        );
        if let Some(reference) = &reference {
            assert_eq!(reference, &rec_reports, "replay must be reproducible");
        } else {
            reference = Some(rec_reports);
        }
        noop_best = noop_best.min(noop_ns);
        recording_best = recording_best.min(rec_ns);
    }
    assert!(noop_best > 0, "replay too short to time");
    #[allow(clippy::cast_precision_loss)]
    let overhead_pct = (recording_best as f64 - noop_best as f64) / noop_best as f64 * 100.0;
    let budget_pct = if cfg!(debug_assertions) { 30.0 } else { 5.0 };
    assert!(
        overhead_pct < budget_pct,
        "telemetry overhead {overhead_pct:.2}% exceeds {budget_pct}% \
         (noop {noop_best} ns vs recording {recording_best} ns)"
    );

    // 2. The eval runner reports to the installed global recorder.
    let eval = evaluate_sensor_faults(&td, &cfg);
    assert_eq!(
        eval.detection.true_positives + eval.detection.false_negatives,
        cfg.trials
    );
    let snapshot = Telemetry::global()
        .snapshot()
        .expect("global handle is recording");
    assert!(snapshot.counter("dice_eval_trials_total").unwrap() >= cfg.trials);
    assert!(snapshot.counter("dice_eval_datasets_total").unwrap() >= 1);
    assert!(snapshot.counter("dice_engine_windows_total").unwrap() > 0);
    let (trial_count, trial_sum) = snapshot.histogram("dice_eval_trial_ns").unwrap();
    assert!(trial_count >= cfg.trials && trial_sum > 0);

    // 3. Exporters: the JSON snapshot satisfies its own schema and the
    //    Prometheus rendition exposes the same registry.
    let json = snapshot.to_json();
    validate_snapshot_json(&json).expect("snapshot must satisfy its schema");
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("# TYPE dice_engine_windows_total counter"));
    assert!(prom.contains("# TYPE dice_gateway_channel_depth gauge"));
    assert!(prom.contains("# TYPE dice_eval_trial_ns histogram"));
    assert!(prom.contains("dice_engine_correlation_check_ns_bucket{le=\"+Inf\"}"));
    // The engine replays above fed the detection-latency sketch; its
    // summary rows appear in the same exposition.
    assert!(prom.contains("# TYPE dice_engine_detection_ns summary"));
    assert!(prom.contains("dice_engine_detection_ns{quantile=\"0.99\"}"));
}

/// Concurrent writers on one `EventRing`: every push is either retained or
/// counted as dropped — none vanish — and retained sequence numbers are the
/// newest ones, strictly increasing.
#[test]
fn event_ring_survives_concurrent_writers() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 500;
    const CAPACITY: usize = 64;
    let ring = EventRing::new(CAPACITY);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = &ring;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push("stress", format!("writer {w} event {i}"));
                }
            });
        }
    });
    let pushed = WRITERS as u64 * PER_WRITER;
    assert_eq!(ring.total(), pushed);
    let events = ring.snapshot();
    assert_eq!(events.len(), CAPACITY);
    assert_eq!(ring.dropped(), pushed - CAPACITY as u64);
    // Retained events are exactly the newest CAPACITY sequence numbers.
    for (offset, event) in events.iter().enumerate() {
        assert_eq!(event.seq, pushed - CAPACITY as u64 + offset as u64);
        assert_eq!(event.kind, "stress");
        assert!(event.message.starts_with("writer "));
    }
}

/// Concurrent recorders on one sketch: counts and sums merge losslessly
/// (each record is two atomic adds, no samples lost).
#[test]
fn sketch_survives_concurrent_recorders() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 10_000;
    let sketch = QuantileSketch::new();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let sketch = &sketch;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    sketch.record(w * PER_WRITER + i);
                }
            });
        }
    });
    let n = WRITERS * PER_WRITER;
    assert_eq!(sketch.count(), n);
    assert_eq!(sketch.sum(), n * (n - 1) / 2);
}

proptest! {
    /// `QuantileSketch` estimates vs exact sorted quantiles: never below
    /// the true sample, never more than `SKETCH_RELATIVE_ERROR` above it
    /// (+1 for the integer bucket edge).
    #[test]
    fn sketch_quantiles_match_exact_within_bound(
        raw in proptest::collection::vec(0u64..=10_000_000_000, 1..400),
        quantiles in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let sketch = QuantileSketch::new();
        for &v in &raw {
            sketch.record(v);
        }
        let mut values = raw;
        values.sort_unstable();
        for &q in &quantiles {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let estimate = sketch.quantile(q).expect("non-empty sketch");
            prop_assert!(estimate >= exact, "q={}: {} < exact {}", q, estimate, exact);
            #[allow(clippy::cast_precision_loss)]
            let bound = exact as f64 * (1.0 + SKETCH_RELATIVE_ERROR) + 1.0;
            prop_assert!(
                estimate as f64 <= bound,
                "q={}: {} above bound {} (exact {})", q, estimate, bound, exact
            );
        }
    }

    /// `SlotRing` wraparound: retention, drop counts, and order hold for
    /// any capacity/volume combination.
    #[test]
    fn slot_ring_wraparound_is_exact(
        capacity in 1usize..32,
        pushes in 0u64..200,
    ) {
        let mut ring: SlotRing<u64> = SlotRing::new(capacity);
        for i in 0..pushes {
            let seq = ring.push_with(|seq, slot| *slot = seq);
            prop_assert_eq!(seq, i);
        }
        prop_assert_eq!(ring.total(), pushes);
        prop_assert_eq!(ring.len() as u64, pushes.min(capacity as u64));
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity as u64));
        let retained: Vec<u64> = ring.iter().copied().collect();
        let expected: Vec<u64> =
            (pushes.saturating_sub(capacity as u64)..pushes).collect();
        prop_assert_eq!(retained, expected);
        prop_assert_eq!(ring.latest().copied(), pushes.checked_sub(1));
    }
}
