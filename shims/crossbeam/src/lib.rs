//! Offline shim for `crossbeam`: MPMC-shaped channels over `std::sync::mpsc`.
//!
//! Only the `channel` module surface the DICE workspace uses is provided:
//! [`channel::unbounded`], [`channel::bounded`], cloneable senders, and
//! blocking receivers with an `iter()` drain. Receivers are single-consumer
//! (the gateway fan-in owns each receiver exclusively, so MPMC receive
//! semantics are not needed).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                kind: self.kind.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Receives a value if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.rx.try_recv().ok()
        }

        /// A blocking iterator that drains the channel until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.rx.into_iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel that holds at most `capacity` in-flight values;
    /// senders block when it is full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            Sender {
                kind: SenderKind::Bounded(tx),
            },
            Receiver { rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::{bounded, unbounded};

        #[test]
        fn unbounded_round_trip_and_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn bounded_blocks_and_delivers_across_threads() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnection_is_an_error() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
