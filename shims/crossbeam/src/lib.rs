//! Offline shim for `crossbeam`: MPMC-shaped channels over `std::sync::mpsc`.
//!
//! Only the `channel` module surface the DICE workspace uses is provided:
//! [`channel::unbounded`], [`channel::bounded`], cloneable senders, and
//! blocking receivers with an `iter()` drain and a `len()` depth probe
//! (mirroring real crossbeam's queue-length accessor, used by the gateway
//! for channel-depth telemetry). Receivers are single-consumer (the gateway
//! fan-in owns each receiver exclusively, so MPMC receive semantics are not
//! needed).

pub mod channel {
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the value comes back either
    /// because a bounded channel is at capacity or because every receiver
    /// is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// All receivers have disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for SenderKind<T> {
        fn clone(&self) -> Self {
            match self {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        kind: SenderKind<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                kind: self.kind.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Count the message before it becomes visible: a receiver may
            // otherwise consume (and decrement for) it ahead of a late
            // post-send increment, underflowing the depth counter.
            self.depth.fetch_add(1, Ordering::Relaxed);
            let sent = match &self.kind {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            };
            if sent.is_err() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            sent
        }

        /// Sends `value` without ever blocking.
        ///
        /// # Errors
        ///
        /// Returns the value back as [`TrySendError::Full`] when a bounded
        /// channel is at capacity (an unbounded channel is never full) or
        /// as [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            // Pre-increment for the same reason as `send`.
            self.depth.fetch_add(1, Ordering::Relaxed);
            let sent = match &self.kind {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if sent.is_err() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            sent
        }

        /// Messages currently queued in the channel (approximate under
        /// concurrent sends/receives, exact when quiescent).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let value = self.rx.recv().map_err(|_| RecvError)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(value)
        }

        /// Receives a value if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            let value = self.rx.try_recv().ok()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Some(value)
        }

        /// A blocking iterator that drains the channel until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter().map(|value| {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                value
            })
        }

        /// Messages currently queued in the channel (approximate under
        /// concurrent sends/receives, exact when quiescent).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Draining iterator returned by [`Receiver::into_iter`].
    pub struct IntoIter<T> {
        rx: mpsc::IntoIter<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            let value = self.rx.next()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Some(value)
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter {
                rx: self.rx.into_iter(),
                depth: self.depth,
            }
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                kind: SenderKind::Unbounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    /// Creates a channel that holds at most `capacity` in-flight values;
    /// senders block when it is full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                kind: SenderKind::Bounded(tx),
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::{bounded, unbounded};

        #[test]
        fn unbounded_round_trip_and_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn bounded_blocks_and_delivers_across_threads() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnection_is_an_error() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            use super::TrySendError;
            let (tx, rx) = super::bounded(1);
            assert!(tx.try_send(1).is_ok());
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
            drop(rx);
            // The queued value is lost with the receiver; further sends
            // report disconnection.
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
            let (tx, rx) = super::unbounded::<u8>();
            assert!(tx.try_send(9).is_ok());
            assert_eq!(rx.recv(), Ok(9));
            drop(rx);
            assert_eq!(tx.try_send(10), Err(TrySendError::Disconnected(10)));
        }

        #[test]
        fn len_tracks_queue_depth() {
            let (tx, rx) = unbounded();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            tx.send(3).unwrap();
            assert_eq!(tx.len(), 3);
            assert_eq!(rx.len(), 3);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Some(2));
            assert_eq!(rx.len(), 1);
            drop(tx);
            let rest: Vec<i32> = rx.into_iter().collect();
            assert_eq!(rest, vec![3]);
        }
    }
}
