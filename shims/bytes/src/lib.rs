//! Offline shim for `bytes`: `Bytes`/`BytesMut` plus the big-endian
//! `Buf`/`BufMut` accessors the gateway wire format uses.
//!
//! `Bytes` shares its backing store behind an `Arc`, so cloning a frame and
//! handing it across channels stays cheap, as with the real crate. Reading
//! advances an internal cursor (the real crate's `Buf` semantics).

use std::sync::Arc;

/// A cheaply cloneable, contiguous, read-only byte buffer with a read
/// cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            pos: 0,
        }
    }

    /// The unread remainder as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer for frame assembly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads from a buffer.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `N` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `N` bytes remain (callers check `remaining()`
    /// first, as with the real crate).
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(21);
        buf.put_u8(0xAB);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i64(-12345);
        buf.put_f64(21.125);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.remaining(), 21);
        assert_eq!(frozen.get_u8(), 0xAB);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_i64(), -12345);
        assert_eq!(frozen.get_f64(), 21.125);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clone_shares_but_cursors_are_independent() {
        let mut a = Bytes::from(vec![1, 2, 3]);
        let mut b = a.clone();
        assert_eq!(a.get_u8(), 1);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(a.get_u8(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1]);
        let _ = b.get_u32();
    }
}
