//! Offline shim for `rand` 0.8: the subset the DICE workspace uses.
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — deterministic per
//! seed, but *not* stream-compatible with upstream rand's ChaCha12-based
//! `StdRng`), the [`SeedableRng`] constructor trait, and the [`Rng`]
//! extension methods `gen_bool` / `gen_range` over integer and float ranges.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation, matching the `rand 0.8` method names the
/// workspace calls.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen_f64() < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can be sampled uniformly for elements of type `T`.
///
/// Generic over `T` (as in upstream rand) so that integer-literal ranges
/// infer their element type from the call site.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + rng.gen_f64() * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A SplitMix64 generator: tiny, fast, and deterministic per seed.
    ///
    /// Not stream-compatible with upstream rand's `StdRng`; see the crate
    /// docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
