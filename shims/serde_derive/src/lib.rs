//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The sibling `serde` shim provides blanket implementations of its marker
//! traits, so the derives only need to *accept* the derive position and the
//! inert `#[serde(...)]` helper attributes; they expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and inert `#[serde(...)]` attributes) and
/// expands to nothing; the `serde` shim's blanket impl covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and inert `#[serde(...)]` attributes)
/// and expands to nothing; the `serde` shim's blanket impl covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
