//! Offline shim for `serde`: marker traits with blanket impls.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types so a real
//! serde can be dropped in when the build environment has registry access,
//! but no code path actually serializes through serde (persistence uses the
//! hand-rolled codec in `dice-core::model_io`). Blanket impls keep every
//! `T: Serialize` bound satisfied while the derive macros expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
