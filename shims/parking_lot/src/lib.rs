//! Offline shim for `parking_lot`: a `Mutex` over `std::sync::Mutex` with
//! parking_lot's panic-free `lock()` signature (poisoning is swallowed by
//! recovering the inner value, matching parking_lot's no-poisoning design).

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// An RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed
    /// with exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
