//! Offline shim for `rayon` 1.x: data parallelism over `std::thread::scope`.
//!
//! Implements exactly the surface the DICE workspace uses — `into_par_iter`
//! / `par_iter` on ranges, vectors, and slices, followed by `.map(...)` and
//! `.collect::<Vec<_>>()` (plus `for_each` / `sum`). Work is split into one
//! contiguous chunk per worker thread and results are reassembled in input
//! order, so a `map → collect` pipeline returns exactly what the serial
//! `iter().map().collect()` would — the property the deterministic
//! experiment runner relies on.
//!
//! Differences from upstream rayon:
//!
//! * no work stealing: items are pre-chunked, so heavily skewed workloads
//!   balance worse than under real rayon (results are still identical);
//! * no global thread pool: every `collect` spawns short-lived scoped
//!   threads (fine for the coarse per-trial/per-dataset tasks we run);
//! * `RAYON_NUM_THREADS` is honored; `RAYON_NUM_THREADS=1` forces the
//!   serial path, which tests use to compare serial vs parallel output.

use std::num::NonZeroUsize;

/// The worker-thread count: `RAYON_NUM_THREADS` if set and positive, else
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items`, one contiguous chunk per worker, and returns the
/// results in input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `threads` contiguous chunks (the first chunks get the
    // remainder), preserving order.
    let base = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    for i in 0..threads - 1 {
        let take = base + usize::from(i < extra);
        let tail = rest.split_off(take.min(rest.len()));
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Parallel-iterator adapters.
pub mod iter {
    use super::par_map_vec;

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Converts `self` into a [`ParIter`].
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send + 'a;
        /// Borrows `self` as a [`ParIter`] of references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    /// A materialized parallel iterator: the items to process, in order.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps every item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            par_map_vec(self.items, f);
        }
    }

    /// The result of [`ParIter::map`]; executes on `collect`.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the pipeline and collects results in input order.
        pub fn collect<C: FromParallelIterator<R>>(self) -> C {
            C::from_ordered_vec(par_map_vec(self.items, self.f))
        }

        /// Executes the pipeline and sums the results.
        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            par_map_vec(self.items, self.f).into_iter().sum()
        }
    }

    /// Collection types a parallel pipeline can collect into.
    pub trait FromParallelIterator<T> {
        /// Builds the collection from results already in input order.
        fn from_ordered_vec(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<T: Send> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<T: Send> IntoParallelIterator for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: Iterator<Item = T>,
    {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<u64> = (0u64..1000).map(|i| i * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens: Vec<usize> = data.par_iter().map(String::len).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn sum_matches_serial() {
        let par: u64 = (1u64..=100).into_par_iter().map(|i| i).sum();
        assert_eq!(par, 5050);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
