/root/repo/shims/rayon/target/debug/deps/rayon-2bec1b09b9f7ebe2.d: src/lib.rs

/root/repo/shims/rayon/target/debug/deps/librayon-2bec1b09b9f7ebe2.rlib: src/lib.rs

/root/repo/shims/rayon/target/debug/deps/librayon-2bec1b09b9f7ebe2.rmeta: src/lib.rs

src/lib.rs:
