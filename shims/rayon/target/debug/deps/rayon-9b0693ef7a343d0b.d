/root/repo/shims/rayon/target/debug/deps/rayon-9b0693ef7a343d0b.d: src/lib.rs

/root/repo/shims/rayon/target/debug/deps/rayon-9b0693ef7a343d0b: src/lib.rs

src/lib.rs:
