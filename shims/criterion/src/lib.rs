//! Offline shim for `criterion`: a smoke-run benchmark harness.
//!
//! `cargo bench` executes every benchmark body exactly once and reports
//! wall-clock time — enough to keep bench code compiling, running, and
//! usable as a coarse regression probe in an environment without the real
//! crate. No statistics, warm-up, or HTML reports.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A benchmark identifier (`group/parameter` style).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a bare parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id from a function name and a parameter value.
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!("bench {name}: {} ns (single smoke iteration)", bencher.elapsed_ns);
}

/// The top-level harness.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Registers and smoke-runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness always runs one
    /// iteration.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Smoke-runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Smoke-runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_each_closure_once() {
        let mut runs = 0;
        let mut c = Criterion::default();
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
