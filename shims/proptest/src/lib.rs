//! Offline shim for `proptest`: a miniature property-testing runner.
//!
//! Supports the subset the DICE test suites use: the [`proptest!`] macro,
//! `prop_assert*` macros, range / tuple / `collection::vec` /
//! `sample::select` strategies, `any::<T>()`, and `prop_map`. Each test runs
//! a fixed number of cases (overridable via `PROPTEST_CASES`) from a
//! deterministic per-test seed. No shrinking is performed — a failing case
//! panics with the ordinary assertion message.

use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property unless `PROPTEST_CASES` overrides
/// it.
pub const DEFAULT_CASES: u32 = 32;

/// Resolves the case count for this process.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// The runner's generator: SplitMix64 seeded from the test name, so every
/// property replays the same cases on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an empty domain");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform in a wide symmetric range.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive size domain for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.next_index(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.next_index(self.choices.len())].clone()
        }
    }

    /// A strategy drawing uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// The returned strategy panics on generation if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }
}

/// The customary glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _prop_case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let strat = prop::collection::vec((0u32..6, 0i64..7200), 0..200);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 200);
            for (a, b) in v {
                assert!(a < 6);
                assert!((0..7200).contains(&b));
            }
        }
    }

    #[test]
    fn select_draws_from_choices() {
        let mut rng = TestRng::deterministic("select");
        let strat = prop::sample::select(vec![2, 4, 8]);
        for _ in 0..50 {
            assert!([2, 4, 8].contains(&Strategy::generate(&strat, &mut rng)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 1u32..10, flag in any::<bool>()) {
            prop_assert!(x >= 1 && x < 10);
            prop_assert_eq!(flag || !flag, true);
            prop_assert_ne!(x, 0);
        }
    }
}
