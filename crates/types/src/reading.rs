//! Time-stamped readings and actuator events.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ActuatorId, SensorId};
use crate::time::Timestamp;
use crate::value::SensorValue;

/// One time-stamped measurement from a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// The reporting sensor.
    pub sensor: SensorId,
    /// When the reading was taken (simulated time).
    pub at: Timestamp,
    /// The measured value.
    pub value: SensorValue,
}

impl SensorReading {
    /// Creates a reading.
    pub fn new(sensor: SensorId, at: Timestamp, value: SensorValue) -> Self {
        SensorReading { sensor, at, value }
    }
}

impl fmt::Display for SensorReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} = {}", self.at, self.sensor, self.value)
    }
}

/// One time-stamped actuation event.
///
/// `active = true` records the actuator switching on (or performing its
/// action); `false` records it switching off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuatorEvent {
    /// The acting actuator.
    pub actuator: ActuatorId,
    /// When the actuation happened (simulated time).
    pub at: Timestamp,
    /// Whether the actuator turned on (`true`) or off (`false`).
    pub active: bool,
}

impl ActuatorEvent {
    /// Creates an actuation event.
    pub fn new(actuator: ActuatorId, at: Timestamp, active: bool) -> Self {
        ActuatorEvent {
            actuator,
            at,
            active,
        }
    }
}

impl fmt::Display for ActuatorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} -> {}",
            self.at,
            self.actuator,
            if self.active { "on" } else { "off" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reading_display() {
        let r = SensorReading::new(SensorId::new(2), Timestamp::from_secs(61), true.into());
        assert_eq!(r.to_string(), "[00:01:01] S2 = 1");
    }

    #[test]
    fn actuator_event_display() {
        let e = ActuatorEvent::new(ActuatorId::new(1), Timestamp::from_mins(2), true);
        assert_eq!(e.to_string(), "[00:02:00] A1 -> on");
        let e = ActuatorEvent::new(ActuatorId::new(1), Timestamp::from_mins(2), false);
        assert_eq!(e.to_string(), "[00:02:00] A1 -> off");
    }
}
