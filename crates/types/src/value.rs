//! Sensor values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single sensor measurement.
///
/// DICE distinguishes two sensor classes (Section 3.2.1): *binary* sensors
/// such as motion or door sensors, and *numeric* sensors such as temperature
/// or light sensors. A binary reading of `true` means the sensor is
/// activated/triggered at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorValue {
    /// An activation event from a binary sensor (`true` = triggered).
    Binary(bool),
    /// A sampled measurement from a numeric sensor, in the sensor's native unit.
    Numeric(f64),
}

impl SensorValue {
    /// Returns `true` if this is a binary reading.
    pub fn is_binary(self) -> bool {
        matches!(self, SensorValue::Binary(_))
    }

    /// Returns `true` if this is a numeric reading.
    pub fn is_numeric(self) -> bool {
        matches!(self, SensorValue::Numeric(_))
    }

    /// The binary activation, if this is a binary reading.
    pub fn as_binary(self) -> Option<bool> {
        match self {
            SensorValue::Binary(b) => Some(b),
            SensorValue::Numeric(_) => None,
        }
    }

    /// The numeric measurement, if this is a numeric reading.
    pub fn as_numeric(self) -> Option<f64> {
        match self {
            SensorValue::Binary(_) => None,
            SensorValue::Numeric(v) => Some(v),
        }
    }
}

impl From<bool> for SensorValue {
    fn from(b: bool) -> Self {
        SensorValue::Binary(b)
    }
}

impl From<f64> for SensorValue {
    fn from(v: f64) -> Self {
        SensorValue::Numeric(v)
    }
}

impl fmt::Display for SensorValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorValue::Binary(b) => write!(f, "{}", if *b { 1 } else { 0 }),
            SensorValue::Numeric(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variant() {
        let b = SensorValue::Binary(true);
        let n = SensorValue::Numeric(3.5);
        assert!(b.is_binary() && !b.is_numeric());
        assert!(n.is_numeric() && !n.is_binary());
        assert_eq!(b.as_binary(), Some(true));
        assert_eq!(b.as_numeric(), None);
        assert_eq!(n.as_numeric(), Some(3.5));
        assert_eq!(n.as_binary(), None);
    }

    #[test]
    fn from_primitives() {
        assert_eq!(SensorValue::from(true), SensorValue::Binary(true));
        assert_eq!(SensorValue::from(2.0), SensorValue::Numeric(2.0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SensorValue::Binary(true).to_string(), "1");
        assert_eq!(SensorValue::Binary(false).to_string(), "0");
        assert_eq!(SensorValue::Numeric(1.25).to_string(), "1.25");
    }
}
