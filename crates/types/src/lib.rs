//! Shared domain vocabulary for the DICE smart-home fault detection system.
//!
//! This crate defines the types every other DICE crate speaks: device
//! identifiers, simulated time, sensor readings, device registries describing
//! a smart-home deployment, and time-ordered event logs.
//!
//! The vocabulary follows the paper's model of a smart home (Figure 3.1): a
//! set of *sensors* (binary or numeric), a set of *actuators*, and a home
//! gateway observing a merged, time-stamped event stream from all of them.
//!
//! # Example
//!
//! ```
//! use dice_types::{
//!     DeviceRegistry, EventLog, Room, SensorKind, SensorReading, SensorValue, Timestamp,
//! };
//!
//! let mut registry = DeviceRegistry::new();
//! let motion = registry.add_sensor(SensorKind::Motion, "kitchen motion", Room::Kitchen);
//! let mut log = EventLog::new();
//! log.push_sensor(SensorReading::new(
//!     motion,
//!     Timestamp::from_secs(30),
//!     SensorValue::Binary(true),
//! ));
//! assert_eq!(log.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod ids;
mod log;
mod reading;
mod time;
mod value;

pub use device::{
    ActuatorKind, ActuatorSpec, DeviceRegistry, Room, SensorClass, SensorKind, SensorSpec,
};
pub use error::TypesError;
pub use ids::{ActuatorId, DeviceId, GroupId, SensorId};
pub use log::{Event, EventLog, Window, WindowIter};
pub use reading::{ActuatorEvent, SensorReading};
pub use time::{TimeDelta, Timestamp};
pub use value::SensorValue;
