//! Simulated time.
//!
//! DICE experiments run on *simulated* wall-clock time: datasets span hundreds
//! of hours, detection latency is reported in simulated minutes (Figure 5.2),
//! while computation cost is reported in real milliseconds (Figure 5.3).
//! [`Timestamp`] and [`TimeDelta`] carry the simulated side.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in whole seconds since the start of a dataset.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The dataset origin (time zero).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from seconds since the dataset origin.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Creates a timestamp from minutes since the dataset origin.
    pub const fn from_mins(mins: i64) -> Self {
        Timestamp(mins * 60)
    }

    /// Creates a timestamp from hours since the dataset origin.
    pub const fn from_hours(hours: i64) -> Self {
        Timestamp(hours * 3600)
    }

    /// Seconds since the dataset origin.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Whole minutes since the dataset origin (truncating).
    pub const fn as_mins(self) -> i64 {
        self.0 / 60
    }

    /// Hours since the dataset origin as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Second-of-day in `[0, 86400)`, useful for diurnal models.
    ///
    /// Negative timestamps wrap so the result is always non-negative.
    pub const fn second_of_day(self) -> i64 {
        self.0.rem_euclid(86_400)
    }

    /// Hour-of-day in `[0, 24)`.
    pub const fn hour_of_day(self) -> i64 {
        self.second_of_day() / 3600
    }

    /// Rounds down to a multiple of `delta` from the origin.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is non-positive.
    pub fn align_down(self, delta: TimeDelta) -> Timestamp {
        assert!(delta.as_secs() > 0, "alignment delta must be positive");
        Timestamp(self.0.div_euclid(delta.as_secs()) * delta.as_secs())
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let total = total.abs();
        let h = total / 3600;
        let m = (total % 3600) / 60;
        let s = total % 60;
        write!(f, "{sign}{h:02}:{m:02}:{s:02}")
    }
}

/// A span of simulated time, in whole seconds. May be negative.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from seconds.
    pub const fn from_secs(secs: i64) -> Self {
        TimeDelta(secs)
    }

    /// Creates a span from minutes.
    pub const fn from_mins(mins: i64) -> Self {
        TimeDelta(mins * 60)
    }

    /// Creates a span from hours.
    pub const fn from_hours(hours: i64) -> Self {
        TimeDelta(hours * 3600)
    }

    /// The span in seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// The span in whole minutes (truncating).
    pub const fn as_mins(self) -> i64 {
        self.0 / 60
    }

    /// The span in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// The span in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl Sub<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Timestamp::from_mins(2), Timestamp::from_secs(120));
        assert_eq!(Timestamp::from_hours(1), Timestamp::from_secs(3600));
        assert_eq!(TimeDelta::from_mins(3), TimeDelta::from_secs(180));
        assert_eq!(TimeDelta::from_hours(2), TimeDelta::from_secs(7200));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = Timestamp::from_secs(100);
        let d = TimeDelta::from_secs(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn second_of_day_wraps() {
        assert_eq!(Timestamp::from_secs(86_400 + 5).second_of_day(), 5);
        assert_eq!(Timestamp::from_secs(-1).second_of_day(), 86_399);
        assert_eq!(Timestamp::from_hours(25).hour_of_day(), 1);
    }

    #[test]
    fn align_down_floors_to_multiple() {
        let w = TimeDelta::from_mins(1);
        assert_eq!(
            Timestamp::from_secs(119).align_down(w),
            Timestamp::from_secs(60)
        );
        assert_eq!(
            Timestamp::from_secs(120).align_down(w),
            Timestamp::from_secs(120)
        );
        assert_eq!(
            Timestamp::from_secs(-1).align_down(w),
            Timestamp::from_secs(-60)
        );
    }

    #[test]
    #[should_panic(expected = "alignment delta must be positive")]
    fn align_down_rejects_zero_delta() {
        let _ = Timestamp::ZERO.align_down(TimeDelta::ZERO);
    }

    #[test]
    fn display_formats_hms() {
        assert_eq!(Timestamp::from_secs(3_725).to_string(), "01:02:05");
        assert_eq!(Timestamp::from_secs(-60).to_string(), "-00:01:00");
        assert_eq!(TimeDelta::from_secs(90).to_string(), "90s");
    }

    #[test]
    fn as_unit_conversions() {
        let d = TimeDelta::from_secs(90);
        assert_eq!(d.as_mins(), 1);
        assert!((d.as_mins_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_hours_f64() - 0.025).abs() < 1e-12);
        assert!((Timestamp::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
