//! Identifier newtypes for devices and context groups.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a sensor within a [`DeviceRegistry`](crate::DeviceRegistry).
///
/// Sensor ids are dense: the registry hands them out sequentially starting at
/// zero, so they double as indices into per-sensor tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SensorId(u32);

impl SensorId {
    /// Creates a sensor id from its raw index.
    pub const fn new(index: u32) -> Self {
        SensorId(index)
    }

    /// Returns the raw dense index of this sensor.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of an actuator within a [`DeviceRegistry`](crate::DeviceRegistry).
///
/// Like [`SensorId`], actuator ids are dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActuatorId(u32);

impl ActuatorId {
    /// Creates an actuator id from its raw index.
    pub const fn new(index: u32) -> Self {
        ActuatorId(index)
    }

    /// Returns the raw dense index of this actuator.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActuatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Identifier of a *group*: a unique sensor state set observed during the
/// precomputation phase (Section 3.2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(u32);

impl GroupId {
    /// Creates a group id from its raw index.
    pub const fn new(index: u32) -> Self {
        GroupId(index)
    }

    /// Returns the raw dense index of this group.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A device is either a sensor or an actuator.
///
/// DICE identifies *faulty devices*; the probable-fault sets it reports mix
/// sensors (from correlation / G2G violations) and actuators (from G2A / A2G
/// violations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceId {
    /// A sensor device.
    Sensor(SensorId),
    /// An actuator device.
    Actuator(ActuatorId),
}

impl DeviceId {
    /// Returns the sensor id if this device is a sensor.
    pub fn as_sensor(self) -> Option<SensorId> {
        match self {
            DeviceId::Sensor(s) => Some(s),
            DeviceId::Actuator(_) => None,
        }
    }

    /// Returns the actuator id if this device is an actuator.
    pub fn as_actuator(self) -> Option<ActuatorId> {
        match self {
            DeviceId::Sensor(_) => None,
            DeviceId::Actuator(a) => Some(a),
        }
    }
}

impl From<SensorId> for DeviceId {
    fn from(id: SensorId) -> Self {
        DeviceId::Sensor(id)
    }
}

impl From<ActuatorId> for DeviceId {
    fn from(id: ActuatorId) -> Self {
        DeviceId::Actuator(id)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Sensor(s) => write!(f, "{s}"),
            DeviceId::Actuator(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_id_round_trips_index() {
        let id = SensorId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "S7");
    }

    #[test]
    fn actuator_id_round_trips_index() {
        let id = ActuatorId::new(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "A3");
    }

    #[test]
    fn group_id_round_trips_index() {
        let id = GroupId::new(11);
        assert_eq!(id.index(), 11);
        assert_eq!(id.to_string(), "G11");
    }

    #[test]
    fn device_id_conversions() {
        let s: DeviceId = SensorId::new(1).into();
        let a: DeviceId = ActuatorId::new(2).into();
        assert_eq!(s.as_sensor(), Some(SensorId::new(1)));
        assert_eq!(s.as_actuator(), None);
        assert_eq!(a.as_actuator(), Some(ActuatorId::new(2)));
        assert_eq!(a.as_sensor(), None);
    }

    #[test]
    fn device_id_display_delegates() {
        assert_eq!(DeviceId::Sensor(SensorId::new(4)).to_string(), "S4");
        assert_eq!(DeviceId::Actuator(ActuatorId::new(5)).to_string(), "A5");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SensorId::new(1) < SensorId::new(2));
        assert!(GroupId::new(0) < GroupId::new(1));
    }
}
