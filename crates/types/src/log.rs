//! Time-ordered event logs and windowed iteration.

use serde::{Deserialize, Serialize};

use crate::reading::{ActuatorEvent, SensorReading};
use crate::time::{TimeDelta, Timestamp};

/// Either a sensor reading or an actuator event, merged on one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A sensor reading.
    Sensor(SensorReading),
    /// An actuator event.
    Actuator(ActuatorEvent),
}

impl Event {
    /// The event's timestamp.
    pub fn at(&self) -> Timestamp {
        match self {
            Event::Sensor(r) => r.at,
            Event::Actuator(e) => e.at,
        }
    }

    /// The sensor reading, if this is one.
    pub fn as_sensor(&self) -> Option<&SensorReading> {
        match self {
            Event::Sensor(r) => Some(r),
            Event::Actuator(_) => None,
        }
    }

    /// The actuator event, if this is one.
    pub fn as_actuator(&self) -> Option<&ActuatorEvent> {
        match self {
            Event::Sensor(_) => None,
            Event::Actuator(e) => Some(e),
        }
    }
}

impl From<SensorReading> for Event {
    fn from(r: SensorReading) -> Self {
        Event::Sensor(r)
    }
}

impl From<ActuatorEvent> for Event {
    fn from(e: ActuatorEvent) -> Self {
        Event::Actuator(e)
    }
}

/// A time-ordered log of sensor and actuator events.
///
/// The log keeps events sorted by timestamp (stable for equal timestamps in
/// insertion order). Out-of-order pushes are tolerated and fixed up lazily,
/// mirroring a gateway that receives slightly delayed reports from
/// aggregators.
///
/// # Example
///
/// ```
/// use dice_types::{EventLog, SensorId, SensorReading, TimeDelta, Timestamp};
///
/// let mut log = EventLog::new();
/// for m in 0..3 {
///     log.push_sensor(SensorReading::new(
///         SensorId::new(0),
///         Timestamp::from_mins(m),
///         true.into(),
///     ));
/// }
/// let windows: Vec<_> = log.windows(TimeDelta::from_mins(1)).collect();
/// assert_eq!(windows.len(), 3);
/// assert_eq!(windows[1].events.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
    sorted: bool,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog {
            events: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty log with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventLog {
            events: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Appends an event, tracking whether sorting is still intact.
    pub fn push(&mut self, event: Event) {
        if let Some(last) = self.events.last() {
            if event.at() < last.at() {
                self.sorted = false;
            }
        }
        self.events.push(event);
    }

    /// Appends a sensor reading.
    pub fn push_sensor(&mut self, reading: SensorReading) {
        self.push(Event::Sensor(reading));
    }

    /// Appends an actuator event.
    pub fn push_actuator(&mut self, event: ActuatorEvent) {
        self.push(Event::Actuator(event));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Restores time order if out-of-order events were pushed.
    pub fn normalize(&mut self) {
        if !self.sorted {
            self.events.sort_by_key(Event::at);
            self.sorted = true;
        }
    }

    /// All events in time order.
    ///
    /// Normalizes first, hence `&mut self`. Use [`EventLog::events_unsorted`]
    /// for read-only access when order does not matter.
    pub fn events(&mut self) -> &[Event] {
        self.normalize();
        &self.events
    }

    /// All events in insertion order (may be unsorted).
    pub fn events_unsorted(&self) -> &[Event] {
        &self.events
    }

    /// The timestamp of the first event, if any (normalizes first).
    pub fn start(&mut self) -> Option<Timestamp> {
        self.normalize();
        self.events.first().map(Event::at)
    }

    /// The timestamp of the last event, if any (normalizes first).
    pub fn end(&mut self) -> Option<Timestamp> {
        self.normalize();
        self.events.last().map(Event::at)
    }

    /// Extracts the events in `[from, to)` into a new log (normalizes first).
    pub fn slice(&mut self, from: Timestamp, to: Timestamp) -> EventLog {
        self.normalize();
        let lo = self.events.partition_point(|e| e.at() < from);
        let hi = self.events.partition_point(|e| e.at() < to);
        EventLog {
            events: self.events[lo..hi].to_vec(),
            sorted: true,
        }
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: EventLog) {
        for e in other.events {
            self.push(e);
        }
        self.normalize();
    }

    /// Iterates over fixed-duration windows aligned to multiples of
    /// `duration` from the origin, covering `[start, end]` of the log.
    ///
    /// Every window in the covered range is yielded, including empty ones —
    /// DICE's state sets are computed for every window regardless of whether
    /// any sensor fired (an all-silent home is itself a context).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is non-positive.
    pub fn windows(&mut self, duration: TimeDelta) -> WindowIter<'_> {
        assert!(duration.as_secs() > 0, "window duration must be positive");
        self.normalize();
        let (start, end) = match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) => (f.at().align_down(duration), l.at()),
            _ => (Timestamp::ZERO, Timestamp::ZERO - TimeDelta::from_secs(1)),
        };
        WindowIter {
            events: &self.events,
            cursor: 0,
            window_start: start,
            end,
            duration,
            clip: None,
        }
    }

    /// Iterates over fixed-duration windows tiling exactly `[from, to)`,
    /// regardless of where the log's events lie. Windows outside the log's
    /// event range are yielded empty; a final partial window is yielded when
    /// `to - from` is not a multiple of `duration`.
    ///
    /// This is the windowing the DICE evaluation protocol needs: a quiet
    /// home is itself a context, so leading/trailing silent windows of a
    /// training chunk or segment must not be skipped.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is non-positive or `from >= to`.
    pub fn windows_between(
        &mut self,
        from: Timestamp,
        to: Timestamp,
        duration: TimeDelta,
    ) -> WindowIter<'_> {
        assert!(duration.as_secs() > 0, "window duration must be positive");
        assert!(from < to, "window range must be non-empty");
        self.normalize();
        let cursor = self.events.partition_point(|e| e.at() < from);
        WindowIter {
            events: &self.events,
            cursor,
            window_start: from,
            end: to - TimeDelta::from_secs(1),
            duration,
            clip: Some(to),
        }
    }

    /// Returns an owning iterator over the events in time order.
    pub fn into_events(mut self) -> std::vec::IntoIter<Event> {
        self.normalize();
        self.events.into_iter()
    }
}

impl FromIterator<Event> for EventLog {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        let mut log = EventLog::new();
        for e in iter {
            log.push(e);
        }
        log.normalize();
        log
    }
}

impl Extend<Event> for EventLog {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

/// One fixed-duration window of events, yielded by [`EventLog::windows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window<'a> {
    /// Window start (inclusive).
    pub start: Timestamp,
    /// Window end (exclusive).
    pub end: Timestamp,
    /// Events with `start <= at < end`, in time order.
    pub events: &'a [Event],
}

/// Iterator over the fixed-duration windows of an [`EventLog`].
#[derive(Debug)]
pub struct WindowIter<'a> {
    events: &'a [Event],
    cursor: usize,
    window_start: Timestamp,
    end: Timestamp,
    duration: TimeDelta,
    clip: Option<Timestamp>,
}

impl<'a> Iterator for WindowIter<'a> {
    type Item = Window<'a>;

    fn next(&mut self) -> Option<Window<'a>> {
        if self.window_start > self.end {
            return None;
        }
        let start = self.window_start;
        let mut end = start + self.duration;
        if let Some(clip) = self.clip {
            end = end.min(clip);
        }
        let lo = self.cursor;
        let mut hi = lo;
        while hi < self.events.len() && self.events[hi].at() < end {
            hi += 1;
        }
        self.cursor = hi;
        self.window_start = end;
        Some(Window {
            start,
            end,
            events: &self.events[lo..hi],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActuatorId, SensorId};

    fn reading(sensor: u32, secs: i64) -> SensorReading {
        SensorReading::new(
            SensorId::new(sensor),
            Timestamp::from_secs(secs),
            true.into(),
        )
    }

    #[test]
    fn push_keeps_order_flag() {
        let mut log = EventLog::new();
        log.push_sensor(reading(0, 10));
        log.push_sensor(reading(0, 20));
        assert_eq!(log.events().len(), 2);
        log.push_sensor(reading(0, 5));
        let events = log.events();
        assert_eq!(events[0].at(), Timestamp::from_secs(5));
        assert_eq!(events[2].at(), Timestamp::from_secs(20));
    }

    #[test]
    fn slice_is_half_open() {
        let mut log: EventLog = [10, 20, 30, 40]
            .iter()
            .map(|&s| Event::from(reading(0, s)))
            .collect();
        let mut sub = log.slice(Timestamp::from_secs(20), Timestamp::from_secs(40));
        assert_eq!(sub.events().len(), 2);
        assert_eq!(sub.start(), Some(Timestamp::from_secs(20)));
        assert_eq!(sub.end(), Some(Timestamp::from_secs(30)));
    }

    #[test]
    fn windows_cover_gaps_with_empty_windows() {
        let mut log: EventLog = [0, 200]
            .iter()
            .map(|&s| Event::from(reading(0, s)))
            .collect();
        let windows: Vec<_> = log.windows(TimeDelta::from_mins(1)).collect();
        assert_eq!(windows.len(), 4); // minutes 0..4 cover 0s and 200s
        assert_eq!(windows[0].events.len(), 1);
        assert!(windows[1].events.is_empty());
        assert!(windows[2].events.is_empty());
        assert_eq!(windows[3].events.len(), 1);
    }

    #[test]
    fn windows_align_to_duration_multiples() {
        let mut log: EventLog = [90].iter().map(|&s| Event::from(reading(0, s))).collect();
        let windows: Vec<_> = log.windows(TimeDelta::from_mins(1)).collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start, Timestamp::from_secs(60));
        assert_eq!(windows[0].end, Timestamp::from_secs(120));
    }

    #[test]
    fn windows_of_empty_log_yield_nothing() {
        let mut log = EventLog::new();
        assert_eq!(log.windows(TimeDelta::from_mins(1)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "window duration must be positive")]
    fn windows_reject_zero_duration() {
        let mut log = EventLog::new();
        let _ = log.windows(TimeDelta::ZERO);
    }

    #[test]
    fn windows_between_tiles_exact_range_with_empty_windows() {
        let mut log: EventLog = [130].iter().map(|&s| Event::from(reading(0, s))).collect();
        let windows: Vec<_> = log
            .windows_between(
                Timestamp::ZERO,
                Timestamp::from_mins(4),
                TimeDelta::from_mins(1),
            )
            .collect();
        assert_eq!(windows.len(), 4);
        assert!(windows[0].events.is_empty());
        assert!(windows[1].events.is_empty());
        assert_eq!(windows[2].events.len(), 1);
        assert!(windows[3].events.is_empty());
        assert_eq!(windows[0].start, Timestamp::ZERO);
        assert_eq!(windows[3].end, Timestamp::from_mins(4));
    }

    #[test]
    fn windows_between_clips_partial_final_window() {
        let mut log = EventLog::new();
        let windows: Vec<_> = log
            .windows_between(
                Timestamp::ZERO,
                Timestamp::from_secs(150),
                TimeDelta::from_mins(1),
            )
            .collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[2].start, Timestamp::from_secs(120));
        assert_eq!(windows[2].end, Timestamp::from_secs(150));
    }

    #[test]
    fn windows_between_skips_events_outside_range() {
        let mut log: EventLog = [0, 70, 200]
            .iter()
            .map(|&s| Event::from(reading(0, s)))
            .collect();
        let windows: Vec<_> = log
            .windows_between(
                Timestamp::from_mins(1),
                Timestamp::from_mins(2),
                TimeDelta::from_mins(1),
            )
            .collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].events.len(), 1);
        assert_eq!(windows[0].events[0].at(), Timestamp::from_secs(70));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn windows_between_rejects_empty_range() {
        let mut log = EventLog::new();
        let _ = log.windows_between(Timestamp::ZERO, Timestamp::ZERO, TimeDelta::from_mins(1));
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a: EventLog = [0, 120]
            .iter()
            .map(|&s| Event::from(reading(0, s)))
            .collect();
        let b: EventLog = [60].iter().map(|&s| Event::from(reading(1, s))).collect();
        a.merge(b);
        let at: Vec<i64> = a.events().iter().map(|e| e.at().as_secs()).collect();
        assert_eq!(at, vec![0, 60, 120]);
    }

    #[test]
    fn event_accessors() {
        let s = Event::from(reading(0, 1));
        let a = Event::from(ActuatorEvent::new(
            ActuatorId::new(0),
            Timestamp::from_secs(2),
            true,
        ));
        assert!(s.as_sensor().is_some());
        assert!(s.as_actuator().is_none());
        assert!(a.as_actuator().is_some());
        assert!(a.as_sensor().is_none());
        assert_eq!(a.at(), Timestamp::from_secs(2));
    }

    #[test]
    fn mixed_events_window_together() {
        let mut log = EventLog::new();
        log.push_sensor(reading(0, 30));
        log.push_actuator(ActuatorEvent::new(
            ActuatorId::new(0),
            Timestamp::from_secs(45),
            true,
        ));
        let windows: Vec<_> = log.windows(TimeDelta::from_mins(1)).collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].events.len(), 2);
    }
}
