//! Device descriptions: sensor/actuator kinds and the deployment registry.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ActuatorId, SensorId};
use crate::value::SensorValue;

/// The two sensor classes DICE treats differently during binarization
/// (Section 3.2.1): binary sensors contribute one bit per state-set window,
/// numeric sensors contribute three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorClass {
    /// Event-style sensors reporting triggered/not-triggered.
    Binary,
    /// Sampled sensors reporting a real-valued measurement.
    Numeric,
}

impl fmt::Display for SensorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorClass::Binary => write!(f, "binary"),
            SensorClass::Numeric => write!(f, "numeric"),
        }
    }
}

/// Sensor types found in the paper's testbed (Figure 4.1) and in the
/// third-party datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    // --- binary sensors ---
    /// Passive infrared motion detector.
    Motion,
    /// Door / cabinet reed contact.
    Contact,
    /// Flame detector.
    Flame,
    /// Pressure mat (bed, couch).
    PressureMat,
    /// Float / water usage switch (toilet flush, faucet).
    Float,
    /// Item-use tag (RFID on cup, toothbrush, ...).
    Item,
    // --- numeric sensors ---
    /// Ambient light level (lux).
    Light,
    /// Air temperature (deg C).
    Temperature,
    /// Relative humidity (%).
    Humidity,
    /// Sound pressure level (dB).
    Sound,
    /// Ultrasonic distance ranger (cm).
    Ultrasonic,
    /// Combustible-gas concentration (ppm).
    Gas,
    /// Load cell / weight scale (kg).
    Weight,
    /// Beacon RSSI localization signal (dBm).
    Location,
    /// Battery level of a device (%).
    Battery,
}

impl SensorKind {
    /// The binarization class for this kind.
    pub fn class(self) -> SensorClass {
        match self {
            SensorKind::Motion
            | SensorKind::Contact
            | SensorKind::Flame
            | SensorKind::PressureMat
            | SensorKind::Float
            | SensorKind::Item => SensorClass::Binary,
            SensorKind::Light
            | SensorKind::Temperature
            | SensorKind::Humidity
            | SensorKind::Sound
            | SensorKind::Ultrasonic
            | SensorKind::Gas
            | SensorKind::Weight
            | SensorKind::Location
            | SensorKind::Battery => SensorClass::Numeric,
        }
    }

    /// All sensor kinds, binary first.
    pub fn all() -> &'static [SensorKind] {
        &[
            SensorKind::Motion,
            SensorKind::Contact,
            SensorKind::Flame,
            SensorKind::PressureMat,
            SensorKind::Float,
            SensorKind::Item,
            SensorKind::Light,
            SensorKind::Temperature,
            SensorKind::Humidity,
            SensorKind::Sound,
            SensorKind::Ultrasonic,
            SensorKind::Gas,
            SensorKind::Weight,
            SensorKind::Location,
            SensorKind::Battery,
        ]
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SensorKind::Motion => "motion",
            SensorKind::Contact => "contact",
            SensorKind::Flame => "flame",
            SensorKind::PressureMat => "pressure-mat",
            SensorKind::Float => "float",
            SensorKind::Item => "item",
            SensorKind::Light => "light",
            SensorKind::Temperature => "temperature",
            SensorKind::Humidity => "humidity",
            SensorKind::Sound => "sound",
            SensorKind::Ultrasonic => "ultrasonic",
            SensorKind::Gas => "gas",
            SensorKind::Weight => "weight",
            SensorKind::Location => "location",
            SensorKind::Battery => "battery",
        };
        f.write_str(name)
    }
}

/// Actuator types deployed in the paper's testbed (Section 4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActuatorKind {
    /// Philips-Hue-style smart bulb.
    SmartBulb,
    /// Amazon-Echo-style smart speaker.
    SmartSpeaker,
    /// WeMo-style smart switch (fan / humidifier).
    SmartSwitch,
    /// Motorized smart blind.
    SmartBlind,
}

impl fmt::Display for ActuatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActuatorKind::SmartBulb => "smart-bulb",
            ActuatorKind::SmartSpeaker => "smart-speaker",
            ActuatorKind::SmartSwitch => "smart-switch",
            ActuatorKind::SmartBlind => "smart-blind",
        };
        f.write_str(name)
    }
}

/// Rooms of the simulated smart home (Figure 4.1 floor plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Room {
    /// Kitchen / dining area.
    Kitchen,
    /// Bathroom / toilet.
    Bathroom,
    /// Primary bedroom.
    Bedroom,
    /// Secondary bedroom (two-resident datasets).
    Bedroom2,
    /// Living room.
    LivingRoom,
    /// Entrance / hallway.
    Hallway,
    /// Home office / study.
    Office,
}

impl Room {
    /// All rooms in floor-plan order.
    pub fn all() -> &'static [Room] {
        &[
            Room::Kitchen,
            Room::Bathroom,
            Room::Bedroom,
            Room::Bedroom2,
            Room::LivingRoom,
            Room::Hallway,
            Room::Office,
        ]
    }
}

impl fmt::Display for Room {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Room::Kitchen => "kitchen",
            Room::Bathroom => "bathroom",
            Room::Bedroom => "bedroom",
            Room::Bedroom2 => "bedroom2",
            Room::LivingRoom => "living-room",
            Room::Hallway => "hallway",
            Room::Office => "office",
        };
        f.write_str(name)
    }
}

/// Static description of one deployed sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    id: SensorId,
    kind: SensorKind,
    name: String,
    room: Room,
}

impl SensorSpec {
    /// The sensor's dense id.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The sensor's kind.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// The binarization class (shorthand for `kind().class()`).
    pub fn class(&self) -> SensorClass {
        self.kind.class()
    }

    /// Human-readable name, e.g. `"kitchen motion"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The room the sensor is mounted in.
    pub fn room(&self) -> Room {
        self.room
    }
}

/// Static description of one deployed actuator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuatorSpec {
    id: ActuatorId,
    kind: ActuatorKind,
    name: String,
    room: Room,
}

impl ActuatorSpec {
    /// The actuator's dense id.
    pub fn id(&self) -> ActuatorId {
        self.id
    }

    /// The actuator's kind.
    pub fn kind(&self) -> ActuatorKind {
        self.kind
    }

    /// Human-readable name, e.g. `"living-room hue"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The room the actuator is mounted in.
    pub fn room(&self) -> Room {
        self.room
    }
}

/// The deployment inventory of a smart home: every sensor and actuator.
///
/// The registry hands out dense ids and is the single source of truth for
/// sensor classes, which downstream crates use to lay out state-set bits.
///
/// # Example
///
/// ```
/// use dice_types::{DeviceRegistry, Room, SensorClass, SensorKind};
///
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "kitchen motion", Room::Kitchen);
/// let temp = reg.add_sensor(SensorKind::Temperature, "kitchen temp", Room::Kitchen);
/// assert_eq!(reg.sensor(motion).class(), SensorClass::Binary);
/// assert_eq!(reg.sensor(temp).class(), SensorClass::Numeric);
/// assert_eq!(reg.num_sensors(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceRegistry {
    sensors: Vec<SensorSpec>,
    actuators: Vec<ActuatorSpec>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a sensor and returns its id.
    pub fn add_sensor(
        &mut self,
        kind: SensorKind,
        name: impl Into<String>,
        room: Room,
    ) -> SensorId {
        let id = SensorId::new(self.sensors.len() as u32);
        self.sensors.push(SensorSpec {
            id,
            kind,
            name: name.into(),
            room,
        });
        id
    }

    /// Registers an actuator and returns its id.
    pub fn add_actuator(
        &mut self,
        kind: ActuatorKind,
        name: impl Into<String>,
        room: Room,
    ) -> ActuatorId {
        let id = ActuatorId::new(self.actuators.len() as u32);
        self.actuators.push(ActuatorSpec {
            id,
            kind,
            name: name.into(),
            room,
        });
        id
    }

    /// Number of registered sensors.
    pub fn num_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// Number of registered actuators.
    pub fn num_actuators(&self) -> usize {
        self.actuators.len()
    }

    /// Number of binary sensors.
    pub fn num_binary_sensors(&self) -> usize {
        self.sensors
            .iter()
            .filter(|s| s.class() == SensorClass::Binary)
            .count()
    }

    /// Number of numeric sensors.
    pub fn num_numeric_sensors(&self) -> usize {
        self.sensors
            .iter()
            .filter(|s| s.class() == SensorClass::Numeric)
            .count()
    }

    /// Looks up a sensor spec.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn sensor(&self, id: SensorId) -> &SensorSpec {
        &self.sensors[id.index()]
    }

    /// Looks up an actuator spec.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn actuator(&self, id: ActuatorId) -> &ActuatorSpec {
        &self.actuators[id.index()]
    }

    /// Iterates over all sensor specs in id order.
    pub fn sensors(&self) -> impl Iterator<Item = &SensorSpec> {
        self.sensors.iter()
    }

    /// Iterates over all actuator specs in id order.
    pub fn actuators(&self) -> impl Iterator<Item = &ActuatorSpec> {
        self.actuators.iter()
    }

    /// Iterates over all sensor ids.
    pub fn sensor_ids(&self) -> impl Iterator<Item = SensorId> + '_ {
        (0..self.sensors.len() as u32).map(SensorId::new)
    }

    /// Iterates over all actuator ids.
    pub fn actuator_ids(&self) -> impl Iterator<Item = ActuatorId> + '_ {
        (0..self.actuators.len() as u32).map(ActuatorId::new)
    }

    /// Sensors mounted in `room`.
    pub fn sensors_in(&self, room: Room) -> impl Iterator<Item = &SensorSpec> {
        self.sensors.iter().filter(move |s| s.room() == room)
    }

    /// Checks that a reading's value variant matches the sensor's class.
    pub fn value_matches_class(&self, id: SensorId, value: SensorValue) -> bool {
        matches!(
            (self.sensor(id).class(), value),
            (SensorClass::Binary, SensorValue::Binary(_))
                | (SensorClass::Numeric, SensorValue::Numeric(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m0", Room::Kitchen);
        reg.add_sensor(SensorKind::Temperature, "t0", Room::Kitchen);
        reg.add_sensor(SensorKind::Light, "l0", Room::Bedroom);
        reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Bedroom);
        reg
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let reg = registry();
        let ids: Vec<usize> = reg
            .sensor_ids()
            .map(super::super::ids::SensorId::index)
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(reg.actuator_ids().count(), 1);
    }

    #[test]
    fn counts_by_class() {
        let reg = registry();
        assert_eq!(reg.num_sensors(), 3);
        assert_eq!(reg.num_binary_sensors(), 1);
        assert_eq!(reg.num_numeric_sensors(), 2);
        assert_eq!(reg.num_actuators(), 1);
    }

    #[test]
    fn lookup_returns_registered_spec() {
        let reg = registry();
        let s = reg.sensor(SensorId::new(1));
        assert_eq!(s.kind(), SensorKind::Temperature);
        assert_eq!(s.name(), "t0");
        assert_eq!(s.room(), Room::Kitchen);
        let a = reg.actuator(ActuatorId::new(0));
        assert_eq!(a.kind(), ActuatorKind::SmartBulb);
    }

    #[test]
    fn sensors_in_room_filters() {
        let reg = registry();
        assert_eq!(reg.sensors_in(Room::Kitchen).count(), 2);
        assert_eq!(reg.sensors_in(Room::Bedroom).count(), 1);
        assert_eq!(reg.sensors_in(Room::Office).count(), 0);
    }

    #[test]
    fn value_class_checking() {
        let reg = registry();
        assert!(reg.value_matches_class(SensorId::new(0), SensorValue::Binary(true)));
        assert!(!reg.value_matches_class(SensorId::new(0), SensorValue::Numeric(1.0)));
        assert!(reg.value_matches_class(SensorId::new(1), SensorValue::Numeric(20.0)));
        assert!(!reg.value_matches_class(SensorId::new(1), SensorValue::Binary(false)));
    }

    #[test]
    fn every_kind_has_a_class_and_name() {
        for &kind in SensorKind::all() {
            let _ = kind.class();
            assert!(!kind.to_string().is_empty());
        }
        for room in Room::all() {
            assert!(!room.to_string().is_empty());
        }
    }
}
