//! Error types shared across the DICE crates.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating domain values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypesError {
    /// A reading's value variant does not match the sensor's declared class.
    ValueClassMismatch {
        /// The offending sensor's dense index.
        sensor: u32,
    },
    /// A referenced device id was not issued by the registry in use.
    UnknownDevice {
        /// Textual id of the device (e.g. `"S7"`).
        id: String,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::ValueClassMismatch { sensor } => {
                write!(
                    f,
                    "value class does not match declared class of sensor S{sensor}"
                )
            }
            TypesError::UnknownDevice { id } => {
                write!(f, "device {id} is not registered")
            }
        }
    }
}

impl Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TypesError::ValueClassMismatch { sensor: 3 };
        assert!(e.to_string().contains("S3"));
        let e = TypesError::UnknownDevice { id: "A9".into() };
        assert!(e.to_string().contains("A9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypesError>();
    }
}
