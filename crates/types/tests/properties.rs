//! Property-based tests for the event-log invariants.

use dice_types::{Event, EventLog, SensorId, SensorReading, TimeDelta, Timestamp};
use proptest::prelude::*;

fn events_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u32..6, 0i64..7200), 0..200).prop_map(|raw| {
        raw.into_iter()
            .map(|(sensor, secs)| {
                Event::from(SensorReading::new(
                    SensorId::new(sensor),
                    Timestamp::from_secs(secs),
                    true.into(),
                ))
            })
            .collect()
    })
}

proptest! {
    /// Normalization sorts and is idempotent, preserving multiset identity.
    #[test]
    fn normalize_sorts_and_preserves_events(events in events_strategy()) {
        let mut log: EventLog = events.iter().copied().collect();
        prop_assert_eq!(log.len(), events.len());
        let sorted = log.events().to_vec();
        for pair in sorted.windows(2) {
            prop_assert!(pair[0].at() <= pair[1].at());
        }
        // Idempotent.
        log.normalize();
        prop_assert_eq!(log.events(), sorted.as_slice());
        // Same multiset: sort inputs stably by time and compare lengths plus
        // per-timestamp counts.
        let mut by_time_in: Vec<i64> = events.iter().map(|e| e.at().as_secs()).collect();
        let mut by_time_out: Vec<i64> = sorted.iter().map(|e| e.at().as_secs()).collect();
        by_time_in.sort_unstable();
        by_time_out.sort_unstable();
        prop_assert_eq!(by_time_in, by_time_out);
    }

    /// windows_between partitions a range: every event in range appears in
    /// exactly one window, windows tile without gaps.
    #[test]
    fn windows_between_partition_events(
        events in events_strategy(),
        duration_mins in 1i64..10,
    ) {
        let mut log: EventLog = events.iter().copied().collect();
        let from = Timestamp::ZERO;
        let to = Timestamp::from_secs(7200);
        let duration = TimeDelta::from_mins(duration_mins);
        let mut covered = 0usize;
        let mut expected_start = from;
        for window in log.windows_between(from, to, duration) {
            prop_assert_eq!(window.start, expected_start, "windows tile without gaps");
            prop_assert!(window.end <= to);
            for event in window.events {
                prop_assert!(event.at() >= window.start && event.at() < window.end);
            }
            covered += window.events.len();
            expected_start = window.end;
        }
        prop_assert_eq!(expected_start, to, "windows cover the whole range");
        let in_range = events.iter().filter(|e| e.at() >= from && e.at() < to).count();
        prop_assert_eq!(covered, in_range);
    }

    /// slice is exactly the half-open restriction.
    #[test]
    fn slice_is_half_open_restriction(
        events in events_strategy(),
        lo in 0i64..7200,
        len in 0i64..3600,
    ) {
        let mut log: EventLog = events.iter().copied().collect();
        let from = Timestamp::from_secs(lo);
        let to = Timestamp::from_secs(lo + len);
        let mut sub = log.slice(from, to);
        let expected = events
            .iter()
            .filter(|e| e.at() >= from && e.at() < to)
            .count();
        prop_assert_eq!(sub.events().len(), expected);
    }

    /// merge is multiset union.
    #[test]
    fn merge_is_multiset_union(a in events_strategy(), b in events_strategy()) {
        let mut left: EventLog = a.iter().copied().collect();
        let right: EventLog = b.iter().copied().collect();
        left.merge(right);
        prop_assert_eq!(left.len(), a.len() + b.len());
        let merged = left.events();
        for pair in merged.windows(2) {
            prop_assert!(pair[0].at() <= pair[1].at());
        }
    }

    /// Timestamp arithmetic: align_down is idempotent and never exceeds the
    /// input.
    #[test]
    fn align_down_properties(secs in -100_000i64..100_000, step_mins in 1i64..120) {
        let t = Timestamp::from_secs(secs);
        let step = TimeDelta::from_mins(step_mins);
        let aligned = t.align_down(step);
        prop_assert!(aligned <= t);
        prop_assert!((t - aligned).as_secs() < step.as_secs());
        prop_assert_eq!(aligned.align_down(step), aligned);
        prop_assert_eq!(aligned.as_secs().rem_euclid(step.as_secs()), 0);
    }
}
