//! Catalog-coverage check (`DV200`): the DESIGN.md §5e metric table vs the
//! runtime metric catalog.
//!
//! The runtime side of the truth is
//! [`dice_telemetry::catalog_metric_names`] — produced by registering the
//! real catalog into a scratch registry, so it cannot drift from the code.
//! The documentation side is parsed back out of the markdown table in the
//! "Runtime telemetry" section of DESIGN.md. [`check_catalog_coverage`]
//! diffs the two sets in both directions and reports one warning-level
//! `DV200` finding per undocumented or stale name, so a new metric cannot
//! ship without a table row and a removed metric cannot linger in the docs.
//!
//! Table grammar (matching the prose that introduces it): each data row is
//! `| <layer> | <names> | <kind> | <meaning> |`. The names cell holds one
//! or more backtick code spans; a brace group with commas
//! (`` `transition_cases_{g2g,g2a,a2g}_total` ``) expands to one name per
//! alternative, and every name is prefixed `dice_<layer>_` unless it
//! already starts with `dice_`. Only the names cell is harvested — code
//! spans in the meaning column (label names, config knobs) are ignored.

use std::collections::BTreeSet;

use dice_core::{Diagnostic, DiagnosticCode};

/// The heading the metric table lives under. Matched as a prefix of an
/// `## ` line so section renumbering ("5e" staying put is part of the
/// documented contract) still fails loudly if the whole section vanishes.
const SECTION_HEADING: &str = "## 5e.";

/// Extracts the documented metric names from DESIGN.md text.
///
/// # Errors
///
/// Returns a message when the §5e section or its table is missing — a
/// structural problem distinct from a coverage gap.
pub fn parse_design_metric_names(markdown: &str) -> Result<BTreeSet<String>, String> {
    let mut in_section = false;
    let mut names = BTreeSet::new();
    for line in markdown.lines() {
        if let Some(heading) = line.strip_prefix("## ") {
            in_section = format!("## {heading}").starts_with(SECTION_HEADING);
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| a | b | c | d |` splits into ["", a, b, c, d, ""].
        if cells.len() < 5 {
            continue;
        }
        let (layer, metric_cell) = (cells[1], cells[2]);
        if layer.is_empty() || layer == "Layer" || layer.chars().all(|c| c == '-') {
            continue; // header or separator row
        }
        for span in code_spans(metric_cell) {
            for name in expand_braces(span) {
                if name.starts_with("dice_") {
                    names.insert(name);
                } else {
                    names.insert(format!("dice_{layer}_{name}"));
                }
            }
        }
    }
    if !names.is_empty() {
        return Ok(names);
    }
    Err(format!(
        "no metric table found under the {SECTION_HEADING:?} heading"
    ))
}

/// The backtick code spans of one table cell, in order.
fn code_spans(cell: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let Some(len) = rest[open + 1..].find('`') else {
            break;
        };
        spans.push(&rest[open + 1..open + 1 + len]);
        rest = &rest[open + 1 + len + 1..];
    }
    spans
}

/// Expands one `prefix{a,b,c}suffix` brace group; names without braces (or
/// with an unmatched one) pass through whole.
fn expand_braces(name: &str) -> Vec<String> {
    match name.find('{').zip(name.find('}')) {
        Some((open, close)) if open < close => name[open + 1..close]
            .split(',')
            .map(|alt| format!("{}{}{}", &name[..open], alt.trim(), &name[close + 1..]))
            .collect(),
        _ => vec![name.to_string()],
    }
}

/// Cross-checks the runtime catalog against DESIGN.md text, both ways.
///
/// Every finding is a warning-level [`DiagnosticCode::CatalogCoverage`]
/// (`DV200`): either a registered metric with no table row, a documented
/// name no longer registered, or (if the table itself is gone) one finding
/// describing that.
pub fn check_catalog_coverage(markdown: &str) -> Vec<Diagnostic> {
    let documented = match parse_design_metric_names(markdown) {
        Ok(names) => names,
        Err(e) => {
            return vec![Diagnostic::new(
                DiagnosticCode::CatalogCoverage,
                format!("metric table unparseable: {e}"),
            )]
        }
    };
    let registered: BTreeSet<String> = dice_telemetry::catalog_metric_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut out = Vec::new();
    for name in registered.difference(&documented) {
        out.push(Diagnostic::new(
            DiagnosticCode::CatalogCoverage,
            format!("metric {name} is registered by the runtime catalog but has no DESIGN.md \u{a7}5e table row"),
        ));
    }
    for name in documented.difference(&registered) {
        out.push(Diagnostic::new(
            DiagnosticCode::CatalogCoverage,
            format!("DESIGN.md \u{a7}5e documents {name}, which the runtime catalog no longer registers"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_groups_and_multi_name_cells_expand() {
        let doc = "\
## 5e. Runtime telemetry

| Layer | Metric | Kind | Meaning |
| --- | --- | --- | --- |
| engine | `transition_cases_{g2g,g2a,a2g}_total` | counter | per-case outcomes |
| engine | `scan_rows_total` / `scan_rows_pruned_total` | counter | visited / pruned |
| gateway | `a`, `b` | counter | labeled by `home` (span ignored) |

## 5f. Next section

| engine | `not_me` | counter | outside the section |
";
        let names = parse_design_metric_names(doc).unwrap();
        let expect: BTreeSet<String> = [
            "dice_engine_transition_cases_g2g_total",
            "dice_engine_transition_cases_g2a_total",
            "dice_engine_transition_cases_a2g_total",
            "dice_engine_scan_rows_total",
            "dice_engine_scan_rows_pruned_total",
            "dice_gateway_a",
            "dice_gateway_b",
        ]
        .into_iter()
        .map(str::to_string)
        .collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn missing_section_is_a_parse_error_and_one_finding() {
        assert!(parse_design_metric_names("## 5f. other\n").is_err());
        let findings = check_catalog_coverage("nothing here");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code(), DiagnosticCode::CatalogCoverage);
        assert!(findings[0].message().contains("unparseable"));
    }

    #[test]
    fn drift_is_reported_in_both_directions() {
        // A table with one stale row and (inevitably) every real metric
        // missing: both directions must surface as DV200 warnings.
        let doc = "\
## 5e. Runtime telemetry

| Layer | Metric | Kind | Meaning |
| --- | --- | --- | --- |
| engine | `windows_total` | counter | windows checked |
| engine | `ghost_metric_total` | counter | no longer registered |
";
        let findings = check_catalog_coverage(doc);
        assert!(findings
            .iter()
            .all(|d| d.code() == DiagnosticCode::CatalogCoverage));
        assert!(!dice_core::has_errors(&findings), "DV200 is warning-level");
        assert!(findings.iter().any(|d| d
            .message()
            .contains("dice_engine_ghost_metric_total, which the runtime catalog no longer")));
        assert!(findings.iter().any(|d| d
            .message()
            .contains("dice_gateway_frames_total is registered")));
        // The one documented real metric is not flagged.
        assert!(!findings
            .iter()
            .any(|d| d.message().contains("dice_engine_windows_total ")));
    }

    #[test]
    fn repo_design_md_covers_the_live_catalog_exactly() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
        let markdown = std::fs::read_to_string(path).expect("DESIGN.md readable");
        let findings = check_catalog_coverage(&markdown);
        assert!(
            findings.is_empty(),
            "catalog/docs drift:\n{}",
            crate::render_report(&findings)
        );
    }
}
