//! `dice-lint`: static analysis of serialized DICE model files.
//!
//! ```text
//! usage: dice-lint [--errors-only] <model-file>...
//! ```
//!
//! Every finding prints as `file: severity: [DVnnn] message`. Exit status:
//! `0` when no file has an error-level finding (warnings and infos are
//! advisory), `1` when at least one does, `2` for usage or filesystem
//! problems.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use dice_verify::{verify_reader, Severity};

fn main() -> ExitCode {
    let mut errors_only = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--errors-only" => errors_only = true,
            "-h" | "--help" => {
                println!("usage: dice-lint [--errors-only] <model-file>...");
                println!();
                println!("Statically verifies serialized DICE models and prints");
                println!("one `file: severity: [DVnnn] message` line per finding.");
                println!("Exits 1 if any error-level finding exists, 2 on usage");
                println!("or filesystem problems, 0 otherwise.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("dice-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: dice-lint [--errors-only] <model-file>...");
        return ExitCode::from(2);
    }

    let mut total_errors = 0usize;
    let mut total_findings = 0usize;
    for path in &paths {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dice-lint: cannot open {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let findings = verify_reader(BufReader::new(file));
        for finding in &findings {
            if errors_only && finding.severity() != Severity::Error {
                continue;
            }
            println!("{path}: {finding}");
        }
        total_findings += findings.len();
        total_errors += findings
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count();
    }

    eprintln!(
        "dice-lint: {} file(s), {total_findings} finding(s), {total_errors} error(s)",
        paths.len()
    );
    if total_errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
