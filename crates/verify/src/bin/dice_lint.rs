//! `dice-lint`: whole-pipeline static analysis for DICE.
//!
//! ```text
//! usage: dice-lint [--errors-only] [--deny-warnings] <artifact>...
//!        dice-lint lint-src [--deny-warnings] [workspace-root]
//!        dice-lint catalog [--deny-warnings] [path-to-DESIGN.md]
//! ```
//!
//! In artifact mode each argument is a model binary, a `dice-config v1`
//! file, a `dice-trace` JSONL log, a telemetry snapshot, or the pseudo-spec
//! `dataset:<name>` (a Table 4.1 catalog entry). The kind is sniffed from
//! the content. Model artifacts get the full model verification (container,
//! invariants, graph dataflow); every artifact then participates in the
//! pairwise cross-artifact compatibility check (`DV19x`), so
//! `dice-lint model.bin gateway.conf run.jsonl snapshot.json dataset:hh102`
//! answers "do these five things actually belong to the same deployment?".
//!
//! `lint-src` mode runs the workspace determinism lint over
//! `<root>/crates/*/src` (root defaults to the current directory).
//!
//! `catalog` mode cross-checks the runtime metric catalog against the
//! DESIGN.md §5e table (`DV200`, warning-level, both directions); the path
//! defaults to `DESIGN.md` in the current directory.
//!
//! Findings print to stdout; the summary line on stderr ends with the
//! machine-grepable `findings: E=<n> W=<n> I=<n>`. Exit status: `0` clean,
//! `1` when any error-level finding exists (or any warning under
//! `--deny-warnings`), `2` for usage problems.

use std::process::ExitCode;

use dice_verify::artifacts::{
    check_artifacts, read_artifact, read_artifact_bytes, ArtifactInfo, DATASET_SPEC_PREFIX,
};
use dice_verify::lint_src::lint_workspace;
use dice_verify::{Diagnostic, Severity};

const USAGE: &str = "usage: dice-lint [--errors-only] [--deny-warnings] <artifact>...\n       dice-lint lint-src [--deny-warnings] [workspace-root]\n       dice-lint catalog [--deny-warnings] [path-to-DESIGN.md]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint-src") => lint_src_mode(&args[1..]),
        Some("catalog") => catalog_mode(&args[1..]),
        _ => artifact_mode(&args),
    }
}

fn artifact_mode(args: &[String]) -> ExitCode {
    let mut errors_only = false;
    let mut deny_warnings = false;
    let mut specs = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--errors-only" => errors_only = true,
            "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                println!();
                println!("Statically analyzes DICE artifacts: full model verification");
                println!("for model binaries, plus pairwise layout/config/threshold");
                println!("compatibility (DV19x) across every given artifact. Artifacts");
                println!("are model binaries, dice-config files, dice-trace JSONL logs,");
                println!("telemetry snapshots, or dataset:<name> catalog entries.");
                println!("Exits 1 on any error finding (or warning under");
                println!("--deny-warnings), 2 on usage problems, 0 otherwise.");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("dice-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            spec => specs.push(spec.to_string()),
        }
    }
    if specs.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut infos = Vec::new();
    let mut counts = Counts::default();
    for spec in &specs {
        let (info, findings) = analyze_spec(spec);
        for finding in &findings {
            counts.tally(finding.severity());
            if !(errors_only && finding.severity() != Severity::Error) {
                println!("{spec}: {finding}");
            }
        }
        infos.extend(info);
    }
    // Cross-artifact findings name both sides in the message, so they
    // print without a path prefix.
    for finding in check_artifacts(&infos) {
        counts.tally(finding.severity());
        if !(errors_only && finding.severity() != Severity::Error) {
            println!("{finding}");
        }
    }

    eprintln!(
        "dice-lint: {} artifact(s), findings: E={} W={} I={}",
        specs.len(),
        counts.errors,
        counts.warnings,
        counts.infos
    );
    counts.exit(deny_warnings)
}

/// Reads one artifact spec and produces its single-artifact findings.
///
/// Dataset pseudo-specs resolve through the catalog; files are read once.
/// Bytes carrying the model magic additionally get the full single-model
/// verification (container, invariants, graph dataflow), so a damaged model
/// container reports the precise `DV0xx`/`DV1xx` diagnosis alongside the
/// artifact-level `DV193`.
fn analyze_spec(spec: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    if spec.starts_with(DATASET_SPEC_PREFIX) {
        return read_artifact(spec);
    }
    match std::fs::read(spec) {
        Ok(bytes) => {
            let (info, mut findings) = read_artifact_bytes(spec, &bytes);
            if bytes.starts_with(dice_core::MODEL_MAGIC) {
                findings.extend(dice_verify::verify_reader(bytes.as_slice()));
            }
            (info, findings)
        }
        Err(e) => {
            let finding = Diagnostic::new(
                dice_verify::DiagnosticCode::ArtifactUnreadable,
                format!("artifact {spec}: cannot read file: {e}"),
            );
            (None, vec![finding])
        }
    }
}

fn lint_src_mode(args: &[String]) -> ExitCode {
    let mut deny_warnings = false;
    let mut root = None;
    for arg in args {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("dice-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path if root.is_none() => root = Some(path.to_string()),
            extra => {
                eprintln!("dice-lint: lint-src takes one root, got extra {extra:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| ".".to_string());
    let findings = match lint_workspace(std::path::Path::new(&root)) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("dice-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut counts = Counts::default();
    for finding in &findings {
        counts.tally(finding.severity);
        println!("{finding}");
    }
    eprintln!(
        "dice-lint: lint-src over {root}, findings: E={} W={} I={}",
        counts.errors, counts.warnings, counts.infos
    );
    counts.exit(deny_warnings)
}

fn catalog_mode(args: &[String]) -> ExitCode {
    let mut deny_warnings = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("dice-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => {
                eprintln!("dice-lint: catalog takes one path, got extra {extra:?}");
                return ExitCode::from(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| "DESIGN.md".to_string());
    let markdown = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("dice-lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = dice_verify::metric_catalog::check_catalog_coverage(&markdown);
    let mut counts = Counts::default();
    for finding in &findings {
        counts.tally(finding.severity());
        println!("{path}: {finding}");
    }
    eprintln!(
        "dice-lint: catalog coverage over {path}, findings: E={} W={} I={}",
        counts.errors, counts.warnings, counts.infos
    );
    counts.exit(deny_warnings)
}

#[derive(Default)]
struct Counts {
    errors: usize,
    warnings: usize,
    infos: usize,
}

impl Counts {
    fn tally(&mut self, severity: Severity) {
        match severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
            Severity::Info => self.infos += 1,
        }
    }

    fn exit(&self, deny_warnings: bool) -> ExitCode {
        if self.errors > 0 || (deny_warnings && self.warnings > 0) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
