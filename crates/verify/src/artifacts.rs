//! Cross-artifact compatibility analysis (the `DV19x` family).
//!
//! A DICE deployment scatters derived state across several files: the
//! trained model binary, the gateway's config file, `dice-trace` JSONL
//! decision logs, and telemetry snapshots. Each was produced against one
//! concrete [`BitLayout`](dice_core::BitLayout) / [`DiceConfig`] /
//! threshold set, and nothing at runtime stops an operator from replaying
//! a trace against a retrained model or pointing the gateway at a config
//! that differs from the one the model was trained under. The resulting
//! failures are silent: bit indexes land on the wrong sensor, candidate
//! distances change meaning, zero-probability checks fire on the wrong
//! rows.
//!
//! This module gives every artifact a *fingerprint profile* — up to three
//! stable 64-bit FNV-1a fingerprints (layout, config, thresholds; see
//! [`dice_core::fingerprint`]) — and compares every pair:
//!
//! | code  | meaning |
//! |-------|---------|
//! | DV190 | two artifacts disagree about the bit layout |
//! | DV191 | two artifacts disagree about the configuration |
//! | DV192 | two artifacts disagree about the numeric thresholds |
//! | DV193 | an artifact could not be read or recognized |
//! | DV194 | a telemetry snapshot carries no layout fingerprint |
//!
//! Not every artifact carries every facet: a trace header fixes only the
//! layout, a standalone config file only the configuration, a telemetry
//! snapshot only the (gauge-masked) layout fingerprint. Pairs are compared
//! on the facets both sides actually carry; layout fingerprints are
//! normalized through [`fingerprint::gauge_value`] so a 63-bit gauge
//! readback compares cleanly against the full 64-bit values.
//!
//! Artifacts are named by path, or by the pseudo-spec `dataset:<name>`
//! which resolves a Table 4.1 catalog entry to the layout its scenario
//! registry implies — letting `dice-lint` answer "was this model trained
//! for hh102's sensor complement?" without any dataset files on disk.

use std::fmt;
use std::fs;
use std::path::Path;

use dice_core::{
    fingerprint, parse_trace_jsonl, read_model_unverified, BitLayout, Diagnostic, DiagnosticCode,
    DiceConfig, MODEL_MAGIC, TRACE_KIND,
};
use dice_datasets::DatasetId;
use dice_telemetry::{json_parse, snapshot_gauge_json, Value, SNAPSHOT_KIND};
use dice_types::TimeDelta;

/// First line of the standalone config text format.
pub const CONFIG_MAGIC: &str = "dice-config v1";

/// Prefix of a dataset pseudo-artifact spec.
pub const DATASET_SPEC_PREFIX: &str = "dataset:";

/// Seed used when resolving `dataset:<name>` pseudo-artifacts.
///
/// The bit layout depends only on the scenario's device complement, which
/// the catalog fixes per dataset independent of the seed, so any constant
/// works; this one is pinned so the resolution is reproducible anyway.
pub const DATASET_FINGERPRINT_SEED: u64 = 1;

/// The gauge a telemetry snapshot publishes the active model's layout
/// fingerprint under (see `dice_engine_model_layout_fingerprint` in the
/// telemetry catalog).
pub const LAYOUT_FINGERPRINT_GAUGE: &str = "dice_engine_model_layout_fingerprint";

/// What kind of artifact a spec resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A serialized [`DiceModel`](dice_core::DiceModel) binary.
    Model,
    /// A standalone config file in the [`CONFIG_MAGIC`] text format.
    Config,
    /// A `dice-trace` JSONL decision log (only its header matters here).
    Trace,
    /// A telemetry snapshot JSON document.
    Telemetry,
    /// A `dataset:<name>` catalog pseudo-artifact.
    Dataset,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Config => "config",
            ArtifactKind::Trace => "trace",
            ArtifactKind::Telemetry => "telemetry",
            ArtifactKind::Dataset => "dataset",
        })
    }
}

/// The fingerprint profile of one artifact.
///
/// `None` facets are ones this artifact kind does not carry (a trace pins
/// no thresholds) or could not provide (a telemetry snapshot from a run
/// where no engine was ever constructed).
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Display name: the path as given, or `dataset:<name>`.
    pub name: String,
    /// What the artifact turned out to be.
    pub kind: ArtifactKind,
    /// Fingerprint of the bit layout, if the artifact pins one.
    pub layout_fingerprint: Option<u64>,
    /// Fingerprint of the configuration, if the artifact pins one.
    pub config_fingerprint: Option<u64>,
    /// Fingerprint of the numeric thresholds, if the artifact pins them.
    pub threshold_fingerprint: Option<u64>,
}

impl ArtifactInfo {
    fn new(name: &str, kind: ArtifactKind) -> Self {
        ArtifactInfo {
            name: name.to_string(),
            kind,
            layout_fingerprint: None,
            config_fingerprint: None,
            threshold_fingerprint: None,
        }
    }
}

/// Renders a [`DiceConfig`] in the standalone text format
/// ([`parse_config_text`] reads it back).
pub fn write_config_text(config: &DiceConfig) -> String {
    let mut out = String::new();
    out.push_str(CONFIG_MAGIC);
    out.push('\n');
    out.push_str(&format!("window_secs = {}\n", config.window().as_secs()));
    out.push_str(&format!("max_faults = {}\n", config.max_faults()));
    out.push_str(&format!("num_thre = {}\n", config.num_thre()));
    match config.candidate_distance_override() {
        Some(d) => out.push_str(&format!("candidate_distance = {d}\n")),
        None => out.push_str("candidate_distance = auto\n"),
    }
    out.push_str(&format!(
        "max_identification_windows = {}\n",
        config.max_identification_windows()
    ));
    out.push_str(&format!(
        "nearest_only_identification = {}\n",
        config.nearest_only_identification()
    ));
    out.push_str(&format!("min_row_support = {}\n", config.min_row_support()));
    out.push_str(&format!(
        "confirmation_violations = {}\n",
        config.confirmation_violations()
    ));
    out.push_str(&format!(
        "confirmation_horizon_windows = {}\n",
        config.confirmation_horizon_windows()
    ));
    out
}

/// Parses the standalone config text format written by
/// [`write_config_text`].
///
/// The first non-blank line must be [`CONFIG_MAGIC`]; the rest are
/// `key = value` pairs (`#`-prefixed comment lines and blank lines are
/// skipped). Unknown keys, repeated keys, and values the
/// [`DiceConfig`] builder would reject (zero window, zero `max_faults`,
/// ...) are errors.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_config_text(text: &str) -> Result<DiceConfig, String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty config file")?;
    if header != CONFIG_MAGIC {
        return Err(format!("first line {header:?} is not \"{CONFIG_MAGIC}\""));
    }
    let mut builder = DiceConfig::builder();
    let mut seen: Vec<&str> = Vec::new();
    for line in lines {
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line:?} is not key = value"))?;
        let (key, value) = (key.trim(), value.trim());
        if seen.contains(&key) {
            return Err(format!("key {key:?} given twice"));
        }
        seen.push(key);
        builder = match key {
            "window_secs" => {
                let secs: i64 = parse_num(key, value)?;
                if secs <= 0 {
                    return Err("window_secs must be positive".into());
                }
                builder.window(TimeDelta::from_secs(secs))
            }
            "max_faults" => {
                let n: usize = parse_num(key, value)?;
                if n == 0 {
                    return Err("max_faults must be at least 1".into());
                }
                builder.max_faults(n)
            }
            "num_thre" => {
                let n: usize = parse_num(key, value)?;
                if n == 0 {
                    return Err("num_thre must be at least 1".into());
                }
                builder.num_thre(n)
            }
            "candidate_distance" => {
                if value == "auto" {
                    builder // auto is the default: no override
                } else {
                    builder.candidate_distance(parse_num(key, value)?)
                }
            }
            "max_identification_windows" => {
                let n: usize = parse_num(key, value)?;
                if n == 0 {
                    return Err("max_identification_windows must be positive".into());
                }
                builder.max_identification_windows(n)
            }
            "nearest_only_identification" => match value {
                "true" => builder.nearest_only_identification(true),
                "false" => builder.nearest_only_identification(false),
                other => {
                    return Err(format!(
                        "nearest_only_identification value {other:?} is not true/false"
                    ))
                }
            },
            "min_row_support" => builder.min_row_support(parse_num(key, value)?),
            "confirmation_violations" => {
                let n: usize = parse_num(key, value)?;
                if n == 0 {
                    return Err("confirmation_violations must be at least 1".into());
                }
                builder.confirmation_violations(n)
            }
            "confirmation_horizon_windows" => {
                builder.confirmation_horizon_windows(parse_num(key, value)?)
            }
            other => return Err(format!("unknown config key {other:?}")),
        };
    }
    Ok(builder.build())
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{key} value {value:?} is not a valid number"))
}

/// Resolves one artifact spec (a path, or `dataset:<name>`) to its
/// fingerprint profile.
///
/// Never fails hard: anything unreadable or unrecognizable comes back as
/// `(None, [DV193])`, and a readable telemetry snapshot without a layout
/// fingerprint as `(Some(info), [DV194])`, so the caller always gets one
/// uniform report shape.
pub fn read_artifact(spec: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    if let Some(name) = spec.strip_prefix(DATASET_SPEC_PREFIX) {
        return read_dataset_artifact(spec, name);
    }
    match fs::read(Path::new(spec)) {
        Ok(bytes) => read_artifact_bytes(spec, &bytes),
        Err(e) => (
            None,
            vec![unreadable(spec, &format!("cannot read file: {e}"))],
        ),
    }
}

/// Like [`read_artifact`] but over in-memory bytes, for callers that
/// already hold the content. The artifact kind is sniffed from the bytes:
/// model magic, config header, trace header line, or snapshot JSON.
pub fn read_artifact_bytes(name: &str, bytes: &[u8]) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    if bytes.starts_with(MODEL_MAGIC) {
        return read_model_artifact(name, bytes);
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return (
            None,
            vec![unreadable(
                name,
                "neither a DICE model binary nor a text artifact",
            )],
        );
    };
    let first = text.lines().map(str::trim).find(|l| !l.is_empty());
    match first {
        Some(line) if line == CONFIG_MAGIC => read_config_artifact(name, text),
        Some(line) if line_is_kind(line, TRACE_KIND) => read_trace_artifact(name, line),
        _ if document_is_kind(text, SNAPSHOT_KIND) => read_telemetry_artifact(name, text),
        _ => (
            None,
            vec![unreadable(
                name,
                "unrecognized artifact: expected a model binary, \
                 a \"dice-config v1\" file, a dice-trace JSONL log, \
                 or a telemetry snapshot",
            )],
        ),
    }
}

/// Compares every pair of artifacts on every facet both sides carry.
///
/// Findings are deterministic: pairs are visited in input order, facets
/// in layout / config / threshold order. An empty or single-element input
/// trivially yields no findings.
pub fn check_artifacts(artifacts: &[ArtifactInfo]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, a) in artifacts.iter().enumerate() {
        for b in &artifacts[i + 1..] {
            check_pair(a, b, &mut out);
        }
    }
    out
}

fn check_pair(a: &ArtifactInfo, b: &ArtifactInfo, out: &mut Vec<Diagnostic>) {
    // Layout fingerprints are compared gauge-masked: a telemetry snapshot
    // can only ever report the 53-bit gauge projection (JSON numbers are
    // IEEE doubles), and masking both sides keeps every pair comparable
    // under one rule.
    if let (Some(fa), Some(fb)) = (a.layout_fingerprint, b.layout_fingerprint) {
        if fingerprint::gauge_value(fa) != fingerprint::gauge_value(fb) {
            out.push(Diagnostic::new(
                DiagnosticCode::ArtifactLayoutMismatch,
                format!(
                    "{} ({}) and {} ({}) disagree about the bit layout \
                     (fingerprints {:016x} vs {:016x}): they were produced \
                     against different sensor complements",
                    a.name, a.kind, b.name, b.kind, fa, fb
                ),
            ));
        }
    }
    if let (Some(fa), Some(fb)) = (a.config_fingerprint, b.config_fingerprint) {
        if fa != fb {
            out.push(Diagnostic::new(
                DiagnosticCode::ArtifactConfigMismatch,
                format!(
                    "{} ({}) and {} ({}) disagree about the configuration \
                     (fingerprints {:016x} vs {:016x}): window, thresholds, \
                     or identification limits drifted",
                    a.name, a.kind, b.name, b.kind, fa, fb
                ),
            ));
        }
    }
    if let (Some(fa), Some(fb)) = (a.threshold_fingerprint, b.threshold_fingerprint) {
        if fa != fb {
            out.push(Diagnostic::new(
                DiagnosticCode::ArtifactThresholdMismatch,
                format!(
                    "{} ({}) and {} ({}) disagree about the trained numeric \
                     thresholds (fingerprints {:016x} vs {:016x}): one was \
                     retrained without the other",
                    a.name, a.kind, b.name, b.kind, fa, fb
                ),
            ));
        }
    }
}

fn unreadable(name: &str, why: &str) -> Diagnostic {
    Diagnostic::new(
        DiagnosticCode::ArtifactUnreadable,
        format!("artifact {name}: {why}"),
    )
}

fn read_model_artifact(name: &str, bytes: &[u8]) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    match read_model_unverified(bytes) {
        Ok(model) => {
            let mut info = ArtifactInfo::new(name, ArtifactKind::Model);
            info.layout_fingerprint = Some(model.layout().fingerprint());
            info.config_fingerprint = Some(model.config().fingerprint());
            info.threshold_fingerprint = Some(model.binarizer().thresholds().fingerprint());
            (Some(info), Vec::new())
        }
        Err(e) => (
            None,
            vec![unreadable(name, &format!("model container: {e}"))],
        ),
    }
}

fn read_config_artifact(name: &str, text: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    match parse_config_text(text) {
        Ok(config) => {
            let mut info = ArtifactInfo::new(name, ArtifactKind::Config);
            info.config_fingerprint = Some(config.fingerprint());
            (Some(info), Vec::new())
        }
        Err(e) => (None, vec![unreadable(name, &format!("config file: {e}"))]),
    }
}

fn read_trace_artifact(name: &str, header_line: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    // Only the header matters for compatibility; parsing just that line
    // keeps this O(1) in the trace length.
    match parse_trace_jsonl(header_line) {
        Ok(log) => {
            let mut info = ArtifactInfo::new(name, ArtifactKind::Trace);
            info.layout_fingerprint = Some(log.header.layout_fingerprint());
            (Some(info), Vec::new())
        }
        Err(e) => (None, vec![unreadable(name, &format!("trace header: {e}"))]),
    }
}

fn read_telemetry_artifact(name: &str, text: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    match snapshot_gauge_json(text, LAYOUT_FINGERPRINT_GAUGE) {
        Ok(Some(gauge)) if gauge != 0 => {
            let mut info = ArtifactInfo::new(name, ArtifactKind::Telemetry);
            #[allow(clippy::cast_sign_loss)]
            {
                info.layout_fingerprint = Some(gauge as u64);
            }
            (Some(info), Vec::new())
        }
        Ok(_) => {
            // Gauge absent or still zero: the snapshot predates the gauge
            // or no engine ever ran, so the snapshot pins nothing.
            let info = ArtifactInfo::new(name, ArtifactKind::Telemetry);
            (
                Some(info),
                vec![Diagnostic::new(
                    DiagnosticCode::ArtifactFingerprintUnavailable,
                    format!(
                        "artifact {name}: telemetry snapshot carries no \
                         {LAYOUT_FINGERPRINT_GAUGE} value (no engine ran \
                         while recording), so layout compatibility cannot \
                         be checked against it"
                    ),
                )],
            )
        }
        Err(e) => (
            None,
            vec![unreadable(name, &format!("telemetry snapshot: {e}"))],
        ),
    }
}

fn read_dataset_artifact(spec: &str, dataset: &str) -> (Option<ArtifactInfo>, Vec<Diagnostic>) {
    match DatasetId::parse(dataset) {
        Some(id) => {
            let scenario = id.scenario(DATASET_FINGERPRINT_SEED);
            let layout = BitLayout::for_registry(&scenario.registry);
            let mut info = ArtifactInfo::new(spec, ArtifactKind::Dataset);
            info.layout_fingerprint = Some(layout.fingerprint());
            (Some(info), Vec::new())
        }
        None => (
            None,
            vec![unreadable(
                spec,
                &format!("unknown dataset {dataset:?}; expected a Table 4.1 name like hh102"),
            )],
        ),
    }
}

fn line_is_kind(line: &str, kind: &str) -> bool {
    match json_parse(line) {
        Ok(value) => kind_field(&value) == Some(kind),
        Err(_) => false,
    }
}

fn document_is_kind(text: &str, kind: &str) -> bool {
    match json_parse(text) {
        Ok(value) => kind_field(&value) == Some(kind),
        Err(_) => false,
    }
}

fn kind_field(value: &Value) -> Option<&str> {
    value.as_obj()?.get("kind")?.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::{write_model, ContextExtractor};
    use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};

    fn trained_model() -> dice_core::DiceModel {
        let mut reg = DeviceRegistry::new();
        let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let mut log = EventLog::new();
        for minute in 0..120 {
            log.push_sensor(SensorReading::new(
                m,
                Timestamp::from_mins(minute),
                (minute % 2 == 0).into(),
            ));
            log.push_sensor(SensorReading::new(
                t,
                Timestamp::from_mins(minute),
                dice_types::SensorValue::Numeric((18 + (minute % 3)) as f64),
            ));
        }
        ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .expect("training succeeds")
    }

    #[test]
    fn config_text_round_trips() {
        let config = DiceConfig::builder()
            .window(TimeDelta::from_mins(2))
            .max_faults(2)
            .num_thre(3)
            .candidate_distance(4)
            .min_row_support(7)
            .build();
        let text = write_config_text(&config);
        let back = parse_config_text(&text).expect("round trip");
        assert_eq!(back, config);
        assert_eq!(back.fingerprint(), config.fingerprint());
    }

    #[test]
    fn config_text_rejects_damage() {
        assert!(parse_config_text("").is_err());
        assert!(parse_config_text("not a config").is_err());
        assert!(parse_config_text("dice-config v1\nwat = 1").is_err());
        assert!(parse_config_text("dice-config v1\nmax_faults = 0").is_err());
        assert!(parse_config_text("dice-config v1\nmax_faults = banana").is_err());
        assert!(parse_config_text("dice-config v1\nnum_thre = 1\nnum_thre = 2").is_err());
    }

    #[test]
    fn model_artifact_carries_all_three_facets() {
        let model = trained_model();
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).expect("serialize");
        let (info, findings) = read_artifact_bytes("m.bin", &bytes);
        let info = info.expect("model readable");
        assert!(findings.is_empty());
        assert_eq!(info.kind, ArtifactKind::Model);
        assert_eq!(info.layout_fingerprint, Some(model.layout().fingerprint()));
        assert_eq!(info.config_fingerprint, Some(model.config().fingerprint()));
        assert!(info.threshold_fingerprint.is_some());
    }

    #[test]
    fn matching_artifacts_are_clean_and_mismatches_flagged() {
        let model = trained_model();
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).expect("serialize");
        let (model_info, _) = read_artifact_bytes("m.bin", &bytes);
        let config_text = write_config_text(model.config());
        let (config_info, _) = read_artifact_bytes("c.txt", config_text.as_bytes());
        let mut header_line = String::new();
        dice_core::write_header_line(
            &mut header_line,
            &dice_core::TraceHeader::from_layout(model.layout()),
        );
        let (trace_info, _) = read_artifact_bytes("t.jsonl", header_line.as_bytes());
        let clean = [
            model_info.expect("model"),
            config_info.expect("config"),
            trace_info.expect("trace"),
        ];
        assert!(check_artifacts(&clean).is_empty());

        // Drift the config: exactly one DV191, no layout/threshold noise.
        let drifted = write_config_text(&DiceConfig::builder().max_faults(3).build());
        let (bad_config, _) = read_artifact_bytes("c2.txt", drifted.as_bytes());
        let mixed = [clean[0].clone(), bad_config.expect("config")];
        let findings = check_artifacts(&mixed);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code(), DiagnosticCode::ArtifactConfigMismatch);
    }

    #[test]
    fn garbage_bytes_are_dv193() {
        let (info, findings) = read_artifact_bytes("junk", &[0xff, 0xfe, 0x00, 0x01]);
        assert!(info.is_none());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code(), DiagnosticCode::ArtifactUnreadable);
    }

    #[test]
    fn unknown_dataset_is_dv193_and_known_dataset_fingerprints() {
        let (info, findings) = read_artifact("dataset:atlantis");
        assert!(info.is_none());
        assert_eq!(findings[0].code(), DiagnosticCode::ArtifactUnreadable);

        let (info, findings) = read_artifact("dataset:houseA");
        let info = info.expect("catalog entry resolves");
        assert!(findings.is_empty());
        assert_eq!(info.kind, ArtifactKind::Dataset);
        assert!(info.layout_fingerprint.is_some());
        assert!(info.config_fingerprint.is_none());
    }

    #[test]
    fn snapshot_without_gauge_is_dv194() {
        let telemetry = dice_telemetry::Telemetry::recording();
        let snapshot = telemetry.snapshot().expect("recording");
        let (info, findings) = read_artifact_bytes("snap.json", snapshot.to_json().as_bytes());
        let info = info.expect("snapshot readable");
        assert_eq!(info.kind, ArtifactKind::Telemetry);
        assert!(info.layout_fingerprint.is_none());
        assert_eq!(
            findings[0].code(),
            DiagnosticCode::ArtifactFingerprintUnavailable
        );
    }

    #[test]
    fn snapshot_with_gauge_matches_model_layout() {
        let model = trained_model();
        let telemetry = dice_telemetry::Telemetry::recording();
        telemetry
            .recorder()
            .expect("recording")
            .metrics
            .engine
            .model_layout_fingerprint
            .set(fingerprint::gauge_value(model.layout().fingerprint()));
        let snapshot = telemetry.snapshot().expect("recording");
        let (snap_info, findings) = read_artifact_bytes("snap.json", snapshot.to_json().as_bytes());
        assert!(findings.is_empty());
        let mut bytes = Vec::new();
        write_model(&model, &mut bytes).expect("serialize");
        let (model_info, _) = read_artifact_bytes("m.bin", &bytes);
        let pair = [model_info.expect("model"), snap_info.expect("snapshot")];
        assert!(check_artifacts(&pair).is_empty());
    }
}
