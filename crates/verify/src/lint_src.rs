//! The workspace determinism lint (`dice-lint lint-src`).
//!
//! The DICE reproduction promises bit-identical results across runs,
//! thread counts, and machines. That promise is easy to break with one
//! innocuous line — a raw thread, an iteration over a hashed container, a
//! wall-clock read feeding a decision, a float sum whose value depends on
//! reduction order — and none of those show up in unit tests until the
//! schedule happens to differ. This module is a line-oriented scanner over
//! the workspace's `crates/*/src` trees that denies the constructs which
//! have historically caused nondeterminism, outside the places sanctioned
//! to use them:
//!
//! | rule | severity | banned | sanctioned home |
//! |------|----------|--------|-----------------|
//! | `thread-spawn` | error | `std::thread` spawn / `Builder` | nowhere (pragma per site) |
//! | `unordered-parallelism` | error | `rayon` spawn / join / scope / `par_bridge` | nowhere — only the ordered `par_iter` map/collect surface |
//! | `hash-container` | warning | `HashMap` / `HashSet` | non-model-facing crates |
//! | `wall-clock` | warning | `Instant::now` / `SystemTime` | `crates/telemetry/src` |
//! | `float-accumulation` | warning | `.sum::<f64>()` / `fold(0.0` | `crates/core/src/stats.rs` (`ExactSum`) |
//! | `simd-guard` | error | `#[target_feature]` / `std::arch` intrinsics | any file that also calls `is_x86_feature_detected!` |
//!
//! # Pragmas
//!
//! A site that has been audited carries an allowlist pragma:
//!
//! * `// lint-src: allow(<rule>)` on the offending line or the line
//!   directly above it suppresses that rule for that one line.
//! * `// lint-src: allow-file(<rule>)` anywhere in the file suppresses
//!   the rule for the whole file — used where a construct is pervasive
//!   and the file-level justification lives in the surrounding comment.
//!
//! # Scanning rules
//!
//! The scanner is deliberately simple and deterministic: files are
//! visited in sorted path order, lines in order. Comment-only lines are
//! never matched (pragmas are still read from them), the code before an
//! inline `//` is matched while the comment after it is not, and
//! everything from the first `#[cfg(test)]` line to the end of the file
//! is skipped — tests may spawn threads and hash to their heart's
//! content. The scanner's own rule table (this file) is exempt, since it
//! must spell out every banned pattern.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use dice_core::Severity;

/// One determinism finding in workspace source.
#[derive(Debug, Clone)]
pub struct SrcFinding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (e.g. `wall-clock`).
    pub rule: &'static str,
    /// Error for constructs that are never acceptable unaudited;
    /// warning for ones with sanctioned homes.
    pub severity: Severity,
    /// What matched and why it is banned.
    pub message: String,
}

impl fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity, self.rule, self.path, self.line, self.message
        )
    }
}

struct LintRule {
    name: &'static str,
    severity: Severity,
    patterns: &'static [&'static str],
    why: &'static str,
}

/// Crates whose sources feed model state, and therefore must iterate
/// deterministically (the `hash-container` rule's scope).
const MODEL_FACING_CRATES: &[&str] = &[
    "crates/core/",
    "crates/types/",
    "crates/sim/",
    "crates/datasets/",
    "crates/faults/",
    "crates/gateway/",
];

const RULES: &[LintRule] = &[
    LintRule {
        name: "thread-spawn",
        severity: Severity::Error,
        patterns: &["thread::spawn", "thread::Builder"],
        why: "raw threads interleave nondeterministically; use the \
              deterministic parallel trainer or the ordered rayon surface, \
              or audit the site and add a pragma",
    },
    LintRule {
        name: "unordered-parallelism",
        severity: Severity::Error,
        patterns: &["rayon::spawn", "rayon::join", "rayon::scope", "par_bridge"],
        why: "unordered rayon primitives surrender result ordering; only \
              the ordered par_iter map/collect surface is allowed",
    },
    LintRule {
        name: "hash-container",
        severity: Severity::Warning,
        patterns: &["HashMap", "HashSet"],
        why: "hashed iteration order is arbitrary; model-facing code must \
              iterate in sorted order or carry an audit pragma",
    },
    LintRule {
        name: "wall-clock",
        severity: Severity::Warning,
        patterns: &["Instant::now", "SystemTime"],
        why: "wall-clock reads make replays diverge; timing belongs in \
              dice-telemetry spans or behind an audit pragma",
    },
    LintRule {
        name: "float-accumulation",
        severity: Severity::Warning,
        patterns: &[".sum::<f64>()", "fold(0.0"],
        why: "naive float summation is reduction-order-sensitive; use \
              stats::ExactSum",
    },
    LintRule {
        name: "simd-guard",
        severity: Severity::Error,
        patterns: &[
            "#[target_feature(",
            "_mm256_",
            "_mm_",
            "std::arch::",
            "core::arch::",
        ],
        why: "calling a #[target_feature] kernel on a CPU without the \
              feature is undefined behavior; a file using std::arch \
              intrinsics must gate dispatch behind \
              is_x86_feature_detected! or carry an audit pragma",
    },
];

/// Whether `rule` is in force for the file at workspace-relative `path`.
fn rule_applies(rule: &LintRule, path: &str) -> bool {
    match rule.name {
        "hash-container" => MODEL_FACING_CRATES.iter().any(|c| path.starts_with(c)),
        "wall-clock" => !path.starts_with("crates/telemetry/src"),
        "float-accumulation" => path != "crates/core/src/stats.rs",
        _ => true,
    }
}

/// Lints one file's content. Pure — the unit of testing.
///
/// `path` must be workspace-relative with forward slashes (it drives the
/// per-rule scoping above).
pub fn lint_source(path: &str, content: &str) -> Vec<SrcFinding> {
    // The rule table itself must spell out every banned pattern.
    if path == "crates/verify/src/lint_src.rs" {
        return Vec::new();
    }
    let file_allows: Vec<&str> = RULES
        .iter()
        .map(|r| r.name)
        .filter(|name| content.contains(&format!("lint-src: allow-file({name})")))
        .collect();
    // `simd-guard` is satisfied by evidence rather than location: a file
    // that calls `is_x86_feature_detected!` anywhere demonstrably gates its
    // kernels behind runtime dispatch, so its intrinsics are sanctioned.
    let simd_guarded = content.contains("is_x86_feature_detected!");
    let mut findings = Vec::new();
    let mut prev_comment = String::new();
    for (idx, raw) in content.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed == "#[cfg(test)]" {
            break; // tests (at the end of the file by convention) may do anything
        }
        // Split code from an inline comment so commented-out mentions of a
        // banned construct never fire, while same-line pragmas still work.
        // (Naive: a "//" inside a string literal also splits. Acceptable.)
        let (code, comment) = match raw.find("//") {
            Some(pos) => raw.split_at(pos),
            None => (raw, ""),
        };
        for rule in RULES {
            if !rule_applies(rule, path) || file_allows.contains(&rule.name) {
                continue;
            }
            if rule.name == "simd-guard" && simd_guarded {
                continue;
            }
            let Some(pattern) = rule.patterns.iter().find(|p| code.contains(**p)) else {
                continue;
            };
            let pragma = format!("lint-src: allow({})", rule.name);
            if comment.contains(&pragma) || prev_comment.contains(&pragma) {
                continue;
            }
            findings.push(SrcFinding {
                path: path.to_string(),
                line: idx + 1,
                rule: rule.name,
                severity: rule.severity,
                message: format!("{pattern:?} is banned here: {}", rule.why),
            });
        }
        // A pragma only reaches the next line from a comment-only line, so
        // it cannot accidentally blanket a stretch of code.
        prev_comment = if trimmed.starts_with("//") {
            trimmed.to_string()
        } else {
            String::new()
        };
    }
    findings
}

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace
/// directory), in sorted path order.
///
/// # Errors
///
/// Returns a description of the first filesystem problem (missing
/// `crates/` directory, unreadable file).
pub fn lint_workspace(root: &Path) -> Result<Vec<SrcFinding>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut findings = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let content = fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(lint_source(&rel, &content));
        }
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))? {
        let path = entry
            .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings one per line, matching [`SrcFinding`]'s `Display`.
pub fn render_src_findings(findings: &[SrcFinding]) -> String {
    let mut out = String::new();
    for finding in findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, content: &str) -> Vec<&'static str> {
        lint_source(path, content)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn bans_thread_spawn_everywhere() {
        let src = "fn main() {\n    std::thread::spawn(|| {});\n}\n";
        let findings = lint_source("crates/eval/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "thread-spawn");
        assert_eq!(findings[0].severity, Severity::Error);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn hash_container_scope_is_model_facing() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", src), ["hash-container"]);
        assert!(rules_fired("crates/eval/src/x.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_is_sanctioned_in_telemetry() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", src), ["wall-clock"]);
        assert!(rules_fired("crates/telemetry/src/span.rs", src).is_empty());
    }

    #[test]
    fn float_accumulation_is_sanctioned_in_stats() {
        let src = "let s = xs.iter().sum::<f64>();\n";
        assert_eq!(
            rules_fired("crates/eval/src/x.rs", src),
            ["float-accumulation"]
        );
        assert!(rules_fired("crates/core/src/stats.rs", src).is_empty());
    }

    #[test]
    fn same_line_and_preceding_line_pragmas_suppress() {
        let same = "let t = Instant::now(); // lint-src: allow(wall-clock)\n";
        assert!(rules_fired("crates/core/src/x.rs", same).is_empty());
        let above = "// audited: lint-src: allow(wall-clock)\nlet t = Instant::now();\n";
        assert!(rules_fired("crates/core/src/x.rs", above).is_empty());
        // The wrong rule name does not suppress.
        let wrong = "let t = Instant::now(); // lint-src: allow(hash-container)\n";
        assert_eq!(rules_fired("crates/core/src/x.rs", wrong), ["wall-clock"]);
    }

    #[test]
    fn pragma_does_not_reach_past_one_line() {
        let src = "// lint-src: allow(wall-clock)\nlet a = 1;\nlet t = Instant::now();\n";
        let findings = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn file_pragma_suppresses_whole_file() {
        let src = "// justification here. lint-src: allow-file(hash-container)\n\
                   use std::collections::HashMap;\n\
                   use std::collections::HashSet;\n";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn comments_and_test_modules_are_skipped() {
        let commented = "// mentions Instant::now in prose only\n";
        assert!(rules_fired("crates/core/src/x.rs", commented).is_empty());
        let inline = "let a = 1; // Instant::now in a trailing comment\n";
        assert!(rules_fired("crates/core/src/x.rs", inline).is_empty());
        let test_mod =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_fired("crates/core/src/x.rs", test_mod).is_empty());
    }

    #[test]
    fn simd_without_runtime_detection_is_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\n\
                   unsafe fn kernel(x: core::arch::x86_64::__m256i) {}\n";
        let findings = lint_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 2, "attribute and intrinsic type both fire");
        assert!(findings.iter().all(|f| f.rule == "simd-guard"));
        assert!(findings.iter().all(|f| f.severity == Severity::Error));
    }

    #[test]
    fn simd_with_runtime_detection_is_sanctioned() {
        let src = "fn pick() -> bool { is_x86_feature_detected!(\"avx2\") }\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn kernel() { let _ = _mm256_setzero_si256(); }\n";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn simd_pragma_suppresses_one_site() {
        let src = "// audited: lint-src: allow(simd-guard)\n\
                   unsafe fn kernel() { let _ = std::arch::x86_64::_mm_setzero_si128(); }\n";
        assert!(rules_fired("crates/eval/src/x.rs", src).is_empty());
        let bare = "unsafe fn kernel() { let _ = std::arch::x86_64::_mm_setzero_si128(); }\n";
        assert_eq!(rules_fired("crates/eval/src/x.rs", bare), ["simd-guard"]);
    }

    #[test]
    fn own_rule_table_is_exempt() {
        let src = "patterns: &[\"thread::spawn\"],\n";
        assert!(rules_fired("crates/verify/src/lint_src.rs", src).is_empty());
        assert_eq!(
            rules_fired("crates/verify/src/other.rs", src),
            ["thread-spawn"]
        );
    }

    #[test]
    fn workspace_lint_is_clean_on_this_workspace() {
        // The real tree must stay lint-clean: every audited site carries
        // its pragma. CARGO_MANIFEST_DIR is crates/verify.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings = lint_workspace(root).expect("workspace scans");
        assert!(
            findings.is_empty(),
            "workspace determinism lint found:\n{}",
            render_src_findings(&findings)
        );
    }
}
