//! Static invariant analysis for trained DICE models.
//!
//! `dice-verify` walks a [`DiceModel`] without executing it and reports
//! [`Diagnostic`]s with stable codes (`DV001`, `DV100`, ...), severities,
//! and human-readable messages. The structural checks live in
//! [`dice_core::invariants`] (so [`dice_core::read_model`] can enforce them
//! at load time without a dependency cycle); this crate adds the advisory
//! analyses — G2G reachability, candidate-distance sanity, the `DV18x`
//! transition-graph dataflow pass — plus two further static-analysis
//! layers and the `dice-lint` CLI:
//!
//! * [`artifacts`] — cross-artifact compatibility (`DV19x`): fingerprints
//!   models, config files, trace headers, telemetry snapshots, and dataset
//!   catalog entries, and flags every mismatched pair.
//! * [`lint_src`] — the workspace determinism lint: a source scanner that
//!   denies nondeterminism-prone constructs (unordered parallelism, hashed
//!   iteration, wall-clock reads, naive float accumulation) outside their
//!   sanctioned homes.
//! * [`metric_catalog`] — catalog-coverage (`DV200`): cross-checks the
//!   runtime metric catalog against the DESIGN.md §5e table in both
//!   directions, so metrics cannot ship undocumented.
//!
//! Three model entry points, coarsest to finest:
//!
//! * [`verify_reader`] — decode a serialized model and verify it; decode
//!   failures become a `DV001` finding instead of an error.
//! * [`verify_model`] — every check over an in-memory model.
//! * [`verify_config`] — the `DV14x` configuration checks alone.
//!
//! ```
//! use dice_core::{ContextExtractor, DiceConfig};
//! use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
//!
//! # fn main() -> Result<(), dice_core::DiceError> {
//! # let mut reg = DeviceRegistry::new();
//! # let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
//! # let mut log = EventLog::new();
//! # for minute in 0..10 {
//! #     log.push_sensor(SensorReading::new(m, Timestamp::from_mins(minute), (minute % 2 == 0).into()));
//! # }
//! let model = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut log)?;
//! let findings = dice_verify::verify_model(&model);
//! assert!(!dice_verify::has_errors(&findings));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod lint_src;
pub mod metric_catalog;

use std::io::Read;

use dice_core::invariants::{check_config, check_graph_dataflow, check_model};
use dice_core::{read_model_unverified, DiceConfig, DiceModel};

pub use dice_core::invariants::{
    check_group_merge, check_transition_merge, max_severity, ROW_SUM_EPSILON,
};
pub use dice_core::{has_errors, Diagnostic, DiagnosticCode, Severity};

/// Runs every check — structural invariants, configuration sanity, and the
/// G2G graph analyses — over an in-memory model.
///
/// Findings are sorted most severe first, then by code, so the first element
/// is always the worst problem.
pub fn verify_model(model: &DiceModel) -> Vec<Diagnostic> {
    let mut out = check_model(model);
    out.extend(check_config(model.config()));
    check_candidate_distance(model, &mut out);
    check_reachability(model, &mut out);
    out.extend(check_graph_dataflow(model));
    sort_report(&mut out);
    out
}

/// Runs the configuration checks (`DV14x`) over a standalone config.
pub fn verify_config(config: &DiceConfig) -> Vec<Diagnostic> {
    let mut out = check_config(config);
    sort_report(&mut out);
    out
}

/// Decodes a serialized model from `reader` and verifies it.
///
/// A stream that fails to decode at all yields a single
/// [`DiagnosticCode::ContainerUnreadable`] (`DV001`) error carrying the
/// decoder's message, so callers see one uniform report type for both byte
/// damage and semantic damage.
pub fn verify_reader<R: Read>(reader: R) -> Vec<Diagnostic> {
    match read_model_unverified(reader) {
        Ok(model) => verify_model(&model),
        Err(e) => vec![Diagnostic::new(
            DiagnosticCode::ContainerUnreadable,
            format!("model container could not be decoded: {e}"),
        )],
    }
}

/// Renders findings as one line per finding, `severity: [code] message`.
///
/// Returns an empty string for an empty report.
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

fn sort_report(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        b.severity()
            .cmp(&a.severity())
            .then_with(|| a.code().code().cmp(b.code().code()))
            .then_with(|| a.message().cmp(b.message()))
    });
}

/// `DV141`: a candidate distance at or above the state-set width makes every
/// group a candidate for every observation, so the correlation check can
/// never fire and identification diffs against the entire table.
fn check_candidate_distance(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let num_bits = model.layout().total_bits();
    let distance = model.candidate_distance() as usize;
    if num_bits > 0 && distance >= num_bits {
        out.push(Diagnostic::new(
            DiagnosticCode::CandidateDistanceExceedsWidth,
            format!(
                "candidate distance {distance} covers the whole {num_bits}-bit \
                 state set; every group is always a candidate"
            ),
        ));
    }
}

/// `DV130` / `DV131`: graph-shape analysis of the G2G matrix.
///
/// * A group no other group ever transitions into is *unreachable*: the
///   engine can enter it only as a first window. One such group per
///   contiguous training segment is expected (the segment's opening window);
///   more suggest the table and matrix drifted apart.
/// * A group whose only observed successor is itself is *absorbing*: once
///   entered, every later window either matches it or raises a violation.
///
/// Both are warnings — legitimate models produce them at training-segment
/// boundaries — but they are exactly the shape damage that silent
/// table/matrix edits cause, which no purely local check catches.
fn check_reachability(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let g2g = model.transitions().g2g();
    let num_groups = model.groups().len();
    if num_groups < 2 || g2g.num_entries() == 0 {
        return; // too little structure for graph shape to mean anything
    }
    let mut has_incoming = vec![false; num_groups];
    for (from, to, _) in g2g.entries() {
        if from != to {
            if let Some(slot) = has_incoming.get_mut(to as usize) {
                *slot = true;
            }
        }
    }
    for (id, incoming) in has_incoming.iter().enumerate() {
        if !incoming {
            out.push(Diagnostic::new(
                DiagnosticCode::UnreachableGroup,
                format!(
                    "group {id} is unreachable: no other group transitions \
                     into it (benign only for the opening window of a \
                     training segment)"
                ),
            ));
        }
    }
    for id in 0..num_groups {
        let row_total = g2g.row_total(id as u32);
        let self_loops = g2g.count(id as u32, id as u32);
        if row_total > 0 && self_loops == row_total {
            out.push(Diagnostic::new(
                DiagnosticCode::AbsorbingGroup,
                format!(
                    "group {id} is absorbing: all {row_total} observed \
                     departures return to itself, so every exit will raise a \
                     transition violation"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::{Binarizer, BitLayout, BitSet, GroupTable, Thresholds, TransitionModel};
    use dice_types::GroupId;

    fn model_from(
        groups: GroupTable,
        transitions: TransitionModel,
        widths: &[usize],
        training_windows: u64,
    ) -> DiceModel {
        let layout = BitLayout::from_widths(widths);
        let thresholds = Thresholds::from_values(vec![None; widths.len()]);
        DiceModel::from_parts(
            DiceConfig::default(),
            Binarizer::new(layout, thresholds),
            groups,
            transitions,
            1,
            training_windows,
        )
    }

    #[test]
    fn unreachable_group_is_warned() {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.observe(&BitSet::from_indices(2, [1]));
        groups.observe(&BitSet::from_indices(2, [0]));
        let mut transitions = TransitionModel::new();
        // 0 -> 0 only: group 1 has no incoming edge.
        transitions.record_g2g(GroupId::new(0), GroupId::new(0));
        let model = model_from(groups, transitions, &[1, 1], 3);
        let diags = verify_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::UnreachableGroup));
        assert!(!has_errors(&diags), "graph shape findings are warnings");
    }

    #[test]
    fn absorbing_group_is_warned() {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.observe(&BitSet::from_indices(2, [1]));
        let mut transitions = TransitionModel::new();
        transitions.record_g2g(GroupId::new(0), GroupId::new(1));
        transitions.record_g2g(GroupId::new(1), GroupId::new(1));
        let model = model_from(groups, transitions, &[1, 1], 2);
        let diags = verify_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::AbsorbingGroup));
    }

    #[test]
    fn candidate_distance_covering_all_bits_is_warned() {
        let mut groups = GroupTable::new(1);
        groups.observe(&BitSet::from_indices(1, [0]));
        let model = model_from(groups, TransitionModel::new(), &[1], 1);
        // One binary sensor: derived distance 1 == num_bits 1.
        let diags = verify_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::CandidateDistanceExceedsWidth));
    }

    #[test]
    fn report_sorts_errors_first() {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.observe(&BitSet::from_indices(2, [1]));
        let mut transitions = TransitionModel::new();
        transitions.record_g2g(GroupId::new(0), GroupId::new(9)); // dangling
        let model = model_from(groups, transitions, &[1, 1], 2);
        let diags = verify_model(&model);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].severity(), Severity::Error);
        let rendered = render_report(&diags);
        assert!(rendered.lines().next().unwrap().starts_with("error:"));
    }

    #[test]
    fn merge_conservation_checks_carry_stable_codes() {
        use dice_core::TransitionCounts;

        // A faithful merge is clean.
        let mut part = GroupTable::new(2);
        part.observe(&BitSet::from_indices(2, [0]));
        let mut merged = GroupTable::new(2);
        merged.merge(&part);
        assert!(check_group_merge(&merged, &[&part]).is_empty());

        // The same merged table against twice the parts: observations were
        // lost relative to what the parts claim (DV170).
        let diags = check_group_merge(&merged, &[&part, &part]);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::MergeGroupCountNotPreserved));
        assert!(has_errors(&diags));

        // A merged transition matrix that dropped a row (DV172).
        let mut part_counts = TransitionCounts::new();
        part_counts.record(0, 1);
        let empty = TransitionCounts::new();
        let diags = check_transition_merge(&empty, &[&part_counts]);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::MergeRowTotalMismatch));
    }

    #[test]
    fn unreadable_bytes_become_dv001() {
        let diags = verify_reader(&b"garbage"[..]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), DiagnosticCode::ContainerUnreadable);
        assert!(has_errors(&diags));
    }
}
