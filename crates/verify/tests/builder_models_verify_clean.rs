//! Property: every model the public [`ModelBuilder`] API can produce passes
//! verification with zero error-level findings, and the transition-graph
//! dataflow analysis never flags a group that occurred in the training
//! windows. Together with the corruption matrix this brackets the analyzer:
//! it accepts everything the builder emits and rejects every seeded
//! violation.
//!
//! The dataflow half rests on the single-walk shape argument (see
//! `check_graph_dataflow`): a contiguous training stream makes every group
//! reachable from the opening window's component and able to reach the
//! closing window's, so `DV180`/`DV181`/`DV182` can only fire on models
//! whose table and matrices drifted apart — never on builder output.

use dice_core::{DiceConfig, ModelBuilder, ThresholdTrainer};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
};
use dice_verify::{has_errors, render_report, verify_model, DiagnosticCode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn builder_models_verify_clean(
        num_binary in 1usize..4,
        num_numeric in 0usize..3,
        num_actuators in 0usize..3,
        windows in proptest::collection::vec(any::<u64>(), 1..60),
    ) {
        let mut reg = DeviceRegistry::new();
        let binaries: Vec<_> = (0..num_binary)
            .map(|i| reg.add_sensor(SensorKind::Motion, format!("m{i}"), Room::Kitchen))
            .collect();
        let numerics: Vec<_> = (0..num_numeric)
            .map(|i| reg.add_sensor(SensorKind::Temperature, format!("t{i}"), Room::Bedroom))
            .collect();
        let actuators: Vec<_> = (0..num_actuators)
            .map(|i| reg.add_actuator(ActuatorKind::SmartBulb, format!("a{i}"), Room::Kitchen))
            .collect();

        let mut trainer = ThresholdTrainer::new(&reg);
        for (i, &t) in numerics.iter().enumerate() {
            for sample in 0..5 {
                trainer.observe(&Event::from(SensorReading::new(
                    t,
                    Timestamp::from_secs(sample),
                    (15.0 + (i + sample as usize) as f64).into(),
                )));
            }
        }

        let mut builder =
            ModelBuilder::new(DiceConfig::default(), &reg, trainer.finish()).unwrap();
        for (minute, &mask) in windows.iter().enumerate() {
            let start = Timestamp::from_mins(minute as i64);
            let end = Timestamp::from_mins(minute as i64 + 1);
            let mut events: Vec<Event> = Vec::new();
            for (j, &s) in binaries.iter().enumerate() {
                if mask >> j & 1 == 1 {
                    events.push(SensorReading::new(s, start, true.into()).into());
                }
            }
            for (k, &t) in numerics.iter().enumerate() {
                // Skip some windows entirely so untrained/silent spans occur.
                if mask >> (8 + k) & 0b11 != 0 {
                    let v = (mask >> (16 + 4 * k) & 0xFF) as f64 / 8.0;
                    events.push(SensorReading::new(t, start, v.into()).into());
                }
            }
            for (l, &a) in actuators.iter().enumerate() {
                if mask >> (32 + l) & 1 == 1 {
                    events.push(ActuatorEvent::new(a, start, true).into());
                }
            }
            builder.observe_window(start, end, &events);
        }
        let model = builder.finish().unwrap();

        let findings = verify_model(&model);
        prop_assert!(
            !has_errors(&findings),
            "builder-produced model failed verification:\n{}",
            render_report(&findings)
        );

        // The single-walk shape argument: a model trained from one
        // contiguous stream has exactly one group source and one group sink
        // component and is weakly connected, so the dataflow pass must not
        // flag any group that actually occurred in training windows.
        let graph_shape = [
            DiagnosticCode::UnreachableFlowComponent,
            DiagnosticCode::AbsorbingSinkComponent,
            DiagnosticCode::DisconnectedComponent,
        ];
        let flagged: Vec<_> = findings
            .iter()
            .filter(|d| graph_shape.contains(&d.code()))
            .collect();
        prop_assert!(
            flagged.is_empty(),
            "dataflow analysis flagged trained groups:\n{:?}",
            flagged
        );
    }
}
