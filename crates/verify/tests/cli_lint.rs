//! End-to-end runs of the `dice-lint` binary: a clean model file exits 0,
//! and every seeded corruption — byte-level or semantic — exits non-zero
//! with the matching finding on stdout.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dice_core::{
    write_model, Binarizer, DiceConfig, DiceModel, ModelBuilder, ThresholdTrainer, Thresholds,
};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
};

fn trained_model() -> DiceModel {
    let mut reg = DeviceRegistry::new();
    let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
    let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
    let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
    let mut trainer = ThresholdTrainer::new(&reg);
    for i in 0..60 {
        trainer.observe(&Event::from(SensorReading::new(
            t,
            Timestamp::from_secs(i),
            (20.0 + (i % 7) as f64).into(),
        )));
    }
    let mut builder = ModelBuilder::new(DiceConfig::default(), &reg, trainer.finish()).unwrap();
    for minute in 0..90 {
        let start = Timestamp::from_mins(minute);
        let end = Timestamp::from_mins(minute + 1);
        let mut events: Vec<Event> = Vec::new();
        if minute % 3 == 0 {
            events.push(SensorReading::new(m, start, true.into()).into());
        }
        if minute % 5 == 0 {
            events.push(ActuatorEvent::new(b, start, true).into());
        }
        events.push(SensorReading::new(t, start, (17.0 + (minute % 9) as f64).into()).into());
        builder.observe_window(start, end, &events);
    }
    builder.finish().unwrap()
}

fn model_bytes(model: &DiceModel) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_model(model, &mut buffer).unwrap();
    buffer
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dice-lint-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str, bytes: &[u8]) -> PathBuf {
        let path = self.0.join(name);
        fs::write(&path, bytes).unwrap();
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_lint(path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .arg(path)
        .output()
        .expect("dice-lint binary runs")
}

#[test]
fn clean_model_exits_zero() {
    let dir = TempDir::new("clean");
    let path = dir.file("model.dice", &model_bytes(&trained_model()));
    let out = run_lint(&path);
    assert!(
        out.status.success(),
        "clean model must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn each_seeded_corruption_exits_nonzero() {
    let model = trained_model();
    let clean = model_bytes(&model);

    // Semantic corruptions built through the model API and re-serialized.
    let dangling_bytes = {
        let mut m = trained_model();
        m.transitions_mut().g2g_mut().record(0, 9_999);
        model_bytes(&m)
    };
    let drift_bytes = {
        let mut bytes = clean.clone();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&123_456u64.to_le_bytes()); // training_windows
        bytes
    };
    let nan_bytes = {
        let mut values = model.binarizer().thresholds().values().to_vec();
        let numeric = values
            .iter()
            .position(Option::is_some)
            .expect("model trains a numeric threshold");
        values[numeric] = Some(f64::NAN);
        let poisoned = DiceModel::from_parts(
            model.config().clone(),
            Binarizer::new(model.layout().clone(), Thresholds::from_values(values)),
            model.groups().clone(),
            model.transitions().clone(),
            model.num_actuators(),
            model.training_windows(),
        );
        model_bytes(&poisoned)
    };

    let mut corruptions: Vec<(&str, Vec<u8>, Option<&str>)> = vec![
        (
            "bad-magic",
            {
                let mut b = clean.clone();
                b[..4].copy_from_slice(b"NOPE");
                b
            },
            Some("DV001"),
        ),
        (
            "bad-version",
            {
                let mut b = clean.clone();
                b[4] = 0xFF;
                b
            },
            Some("DV001"),
        ),
        (
            "truncated",
            clean[..clean.len() / 2].to_vec(),
            Some("DV001"),
        ),
        ("nan-threshold", nan_bytes, Some("DV120")),
        ("dangling-group", dangling_bytes, Some("DV101")),
        ("window-drift", drift_bytes, Some("DV150")),
    ];

    let dir = TempDir::new("corrupt");
    for (name, bytes, expect_code) in corruptions.drain(..) {
        let path = dir.file(name, &bytes);
        let out = run_lint(&path);
        assert!(
            !out.status.success(),
            "corruption {name} must fail the lint"
        );
        if let Some(code) = expect_code {
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout.contains(code),
                "corruption {name}: expected {code} in output, got:\n{stdout}"
            );
        }
    }
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .output()
        .expect("dice-lint binary runs");
    assert_eq!(out.status.code(), Some(2));
    let missing = Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .arg("/nonexistent/model.dice")
        .output()
        .expect("dice-lint binary runs");
    assert_eq!(missing.status.code(), Some(2));
}
