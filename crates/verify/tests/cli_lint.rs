//! End-to-end runs of the `dice-lint` binary: a clean model file exits 0,
//! and every seeded corruption — byte-level or semantic — exits non-zero
//! with the matching finding on stdout.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dice_core::{
    write_model, Binarizer, DiceConfig, DiceModel, ModelBuilder, ThresholdTrainer, Thresholds,
};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
};

fn trained_model() -> DiceModel {
    let mut reg = DeviceRegistry::new();
    let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
    let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
    let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
    let mut trainer = ThresholdTrainer::new(&reg);
    for i in 0..60 {
        trainer.observe(&Event::from(SensorReading::new(
            t,
            Timestamp::from_secs(i),
            (20.0 + (i % 7) as f64).into(),
        )));
    }
    let mut builder = ModelBuilder::new(DiceConfig::default(), &reg, trainer.finish()).unwrap();
    for minute in 0..90 {
        let start = Timestamp::from_mins(minute);
        let end = Timestamp::from_mins(minute + 1);
        let mut events: Vec<Event> = Vec::new();
        if minute % 3 == 0 {
            events.push(SensorReading::new(m, start, true.into()).into());
        }
        if minute % 5 == 0 {
            events.push(ActuatorEvent::new(b, start, true).into());
        }
        events.push(SensorReading::new(t, start, (17.0 + (minute % 9) as f64).into()).into());
        builder.observe_window(start, end, &events);
    }
    builder.finish().unwrap()
}

fn model_bytes(model: &DiceModel) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_model(model, &mut buffer).unwrap();
    buffer
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dice-lint-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str, bytes: &[u8]) -> PathBuf {
        let path = self.0.join(name);
        fs::write(&path, bytes).unwrap();
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_lint(path: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .arg(path)
        .output()
        .expect("dice-lint binary runs")
}

#[test]
fn clean_model_exits_zero() {
    let dir = TempDir::new("clean");
    let path = dir.file("model.dice", &model_bytes(&trained_model()));
    let out = run_lint(&path);
    assert!(
        out.status.success(),
        "clean model must lint clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn each_seeded_corruption_exits_nonzero() {
    let model = trained_model();
    let clean = model_bytes(&model);

    // Semantic corruptions built through the model API and re-serialized.
    let dangling_bytes = {
        let mut m = trained_model();
        m.transitions_mut().g2g_mut().record(0, 9_999);
        model_bytes(&m)
    };
    let drift_bytes = {
        let mut bytes = clean.clone();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&123_456u64.to_le_bytes()); // training_windows
        bytes
    };
    let nan_bytes = {
        let mut values = model.binarizer().thresholds().values().to_vec();
        let numeric = values
            .iter()
            .position(Option::is_some)
            .expect("model trains a numeric threshold");
        values[numeric] = Some(f64::NAN);
        let poisoned = DiceModel::from_parts(
            model.config().clone(),
            Binarizer::new(model.layout().clone(), Thresholds::from_values(values)),
            model.groups().clone(),
            model.transitions().clone(),
            model.num_actuators(),
            model.training_windows(),
        );
        model_bytes(&poisoned)
    };

    let mut corruptions: Vec<(&str, Vec<u8>, Option<&str>)> = vec![
        // Foreign magic means the lint cannot even tell this was meant to
        // be a model: it reports the artifact-level DV193. Damage behind a
        // valid magic keeps the precise container diagnosis (DV001).
        (
            "bad-magic",
            {
                let mut b = clean.clone();
                b[..4].copy_from_slice(b"NOPE");
                b
            },
            Some("DV193"),
        ),
        (
            "bad-version",
            {
                let mut b = clean.clone();
                b[4] = 0xFF;
                b
            },
            Some("DV001"),
        ),
        (
            "truncated",
            clean[..clean.len() / 2].to_vec(),
            Some("DV001"),
        ),
        ("nan-threshold", nan_bytes, Some("DV120")),
        ("dangling-group", dangling_bytes, Some("DV101")),
        ("window-drift", drift_bytes, Some("DV150")),
    ];

    let dir = TempDir::new("corrupt");
    for (name, bytes, expect_code) in corruptions.drain(..) {
        let path = dir.file(name, &bytes);
        let out = run_lint(&path);
        assert!(
            !out.status.success(),
            "corruption {name} must fail the lint"
        );
        if let Some(code) = expect_code {
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout.contains(code),
                "corruption {name}: expected {code} in output, got:\n{stdout}"
            );
        }
    }
}

#[test]
fn usage_errors_exit_two_and_missing_files_are_dv193() {
    let out = Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .output()
        .expect("dice-lint binary runs");
    assert_eq!(out.status.code(), Some(2));
    // A missing file is an analysis finding (DV193), not a usage error.
    let missing = Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .arg("/nonexistent/model.dice")
        .output()
        .expect("dice-lint binary runs");
    assert_eq!(missing.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&missing.stdout);
    assert!(
        stdout.contains("DV193"),
        "missing file reports DV193:\n{stdout}"
    );
}

fn run_lint_args(args: &[&std::ffi::OsStr]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dice-lint"))
        .args(args)
        .output()
        .expect("dice-lint binary runs")
}

/// The artifact set a healthy deployment would carry: model binary, the
/// config it was trained under, and a trace header from its layout.
fn artifact_set(dir: &TempDir) -> (PathBuf, PathBuf, PathBuf) {
    let model = trained_model();
    let model_path = dir.file("model.dice", &model_bytes(&model));
    let config_path = dir.file(
        "gateway.conf",
        dice_verify::artifacts::write_config_text(model.config()).as_bytes(),
    );
    let mut header_line = String::new();
    dice_core::write_header_line(
        &mut header_line,
        &dice_core::TraceHeader::from_layout(model.layout()),
    );
    let trace_path = dir.file("run.jsonl", header_line.as_bytes());
    (model_path, config_path, trace_path)
}

#[test]
fn compatible_artifact_set_exits_zero_with_grepable_summary() {
    let dir = TempDir::new("compat");
    let (model_path, config_path, trace_path) = artifact_set(&dir);
    let out = run_lint_args(&[
        model_path.as_os_str(),
        config_path.as_os_str(),
        trace_path.as_os_str(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "compatible artifacts must lint clean:\n{}\n{stderr}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        stderr.contains("findings: E=0 W="),
        "summary must be machine-grepable:\n{stderr}"
    );
}

#[test]
fn mismatched_artifacts_are_flagged_pairwise() {
    let dir = TempDir::new("mismatch");
    let (model_path, _, _) = artifact_set(&dir);

    // A config that drifted from the model's: DV191.
    let drifted = dice_core::DiceConfig::builder().max_faults(3).build();
    let config_path = dir.file(
        "drifted.conf",
        dice_verify::artifacts::write_config_text(&drifted).as_bytes(),
    );
    let out = run_lint_args(&[model_path.as_os_str(), config_path.as_os_str()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DV191"), "config drift is DV191:\n{stdout}");

    // A trace whose header came from a different layout: DV190.
    let mut header_line = String::new();
    let foreign = dice_core::BitLayout::from_widths(&[1, 1, 1, 3]);
    dice_core::write_header_line(
        &mut header_line,
        &dice_core::TraceHeader::from_layout(&foreign),
    );
    let trace_path = dir.file("foreign.jsonl", header_line.as_bytes());
    let out = run_lint_args(&[model_path.as_os_str(), trace_path.as_os_str()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DV190"), "layout drift is DV190:\n{stdout}");

    // The model against a dataset it was not trained for: DV190.
    let out = run_lint_args(&[
        model_path.as_os_str(),
        std::ffi::OsStr::new("dataset:hh102"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("DV190"),
        "dataset mismatch is DV190:\n{stdout}"
    );
}

fn write_lint_src_tree(dir: &TempDir, line: &str) -> PathBuf {
    let src = dir.0.join("crates/demo/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("lib.rs"), format!("fn f() {{\n{line}\n}}\n")).unwrap();
    dir.0.clone()
}

#[test]
fn lint_src_gates_banned_patterns_and_honors_pragmas() {
    // A clean tree exits zero.
    let clean = TempDir::new("lint-src-clean");
    let root = write_lint_src_tree(&clean, "    let x = 1;");
    let out = run_lint_args(&[std::ffi::OsStr::new("lint-src"), root.as_os_str()]);
    assert!(out.status.success(), "clean tree must pass lint-src");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("findings: E=0 W=0"), "summary:\n{stderr}");

    // An injected banned construct is an error finding and a nonzero exit.
    let dirty = TempDir::new("lint-src-dirty");
    let root = write_lint_src_tree(&dirty, "    std::thread::spawn(|| {});");
    let out = run_lint_args(&[std::ffi::OsStr::new("lint-src"), root.as_os_str()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("thread-spawn"),
        "expected thread-spawn finding:\n{stdout}"
    );

    // Warnings pass by default but fail under --deny-warnings.
    let warn = TempDir::new("lint-src-warn");
    let root = write_lint_src_tree(&warn, "    let t = std::time::Instant::now();");
    let out = run_lint_args(&[std::ffi::OsStr::new("lint-src"), root.as_os_str()]);
    assert!(out.status.success(), "warnings alone pass without deny");
    let out = run_lint_args(&[
        std::ffi::OsStr::new("lint-src"),
        std::ffi::OsStr::new("--deny-warnings"),
        root.as_os_str(),
    ]);
    assert_eq!(out.status.code(), Some(1), "--deny-warnings gates warnings");

    // A pragma-audited site passes even under --deny-warnings.
    let audited = TempDir::new("lint-src-audited");
    let root = write_lint_src_tree(
        &audited,
        "    let t = std::time::Instant::now(); // lint-src: allow(wall-clock)",
    );
    let out = run_lint_args(&[
        std::ffi::OsStr::new("lint-src"),
        std::ffi::OsStr::new("--deny-warnings"),
        root.as_os_str(),
    ]);
    assert!(out.status.success(), "pragma suppresses the finding");
}
