//! The corruption matrix: every verified invariant gets exactly one seeded
//! violation, and the analyzer must answer with the matching diagnostic
//! code. This pins the code-to-invariant mapping — a refactor that silently
//! stops detecting one corruption class fails here, not in production.

use dice_core::{
    read_model, read_model_unverified, write_model, Binarizer, BitSet, DiceConfig, DiceModel,
    GroupTable, ModelBuilder, ModelIoError, ThresholdTrainer, Thresholds, TransitionCounts,
};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
};
use dice_verify::{has_errors, verify_model, DiagnosticCode};

/// A trained model with binary + numeric sensors and an actuator, so every
/// section of the model is populated.
fn trained_model() -> DiceModel {
    let mut reg = DeviceRegistry::new();
    let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
    let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
    let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
    let mut trainer = ThresholdTrainer::new(&reg);
    for i in 0..60 {
        trainer.observe(&Event::from(SensorReading::new(
            t,
            Timestamp::from_secs(i),
            (20.0 + (i % 7) as f64).into(),
        )));
    }
    let mut builder = ModelBuilder::new(DiceConfig::default(), &reg, trainer.finish()).unwrap();
    for minute in 0..120 {
        let start = Timestamp::from_mins(minute);
        let end = Timestamp::from_mins(minute + 1);
        let mut events: Vec<Event> = Vec::new();
        if minute % 3 == 0 {
            events.push(SensorReading::new(m, start, true.into()).into());
        }
        if minute % 5 == 0 {
            events.push(ActuatorEvent::new(b, start, true).into());
        }
        events.push(SensorReading::new(t, start, (17.0 + (minute % 9) as f64).into()).into());
        builder.observe_window(start, end, &events);
    }
    builder.finish().unwrap()
}

fn codes(model: &DiceModel) -> Vec<DiagnosticCode> {
    verify_model(model)
        .iter()
        .map(dice_core::Diagnostic::code)
        .collect()
}

#[test]
fn fresh_model_has_no_error_findings() {
    let model = trained_model();
    let findings = verify_model(&model);
    assert!(
        !has_errors(&findings),
        "fresh ModelBuilder output must verify clean, got:\n{}",
        dice_verify::render_report(&findings)
    );
}

#[test]
fn dropping_a_group_yields_dangling_transition() {
    let mut model = trained_model();
    let kept = model.groups().len() - 1;
    let num_bits = model.groups().num_bits();
    let mut smaller = GroupTable::new(num_bits);
    for (id, state, count) in model.groups().entries() {
        if id.index() < kept {
            smaller.insert_with_count(state.clone(), count);
        }
    }
    *model.groups_mut() = smaller;
    assert!(
        codes(&model).contains(&DiagnosticCode::DanglingGroupInG2g),
        "transitions into the dropped group must dangle"
    );
}

#[test]
fn zeroing_a_row_total_breaks_stochasticity() {
    let mut model = trained_model();
    let g2g = model.transitions().g2g();
    let entries = g2g.entries();
    let mut row_totals = g2g.row_totals();
    row_totals[0].1 = 0; // the row's entries still sum to a positive count
    *model.transitions_mut().g2g_mut() = TransitionCounts::from_raw_parts(entries, row_totals);
    assert!(codes(&model).contains(&DiagnosticCode::RowNotStochastic));
}

#[test]
fn widening_a_state_set_breaks_the_layout() {
    let mut model = trained_model();
    let num_bits = model.groups().num_bits();
    model
        .groups_mut()
        .insert_unchecked(BitSet::from_indices(num_bits + 3, [num_bits + 1]), 1);
    assert!(codes(&model).contains(&DiagnosticCode::GroupWidthMismatch));
}

#[test]
fn nan_threshold_is_detected() {
    let model = trained_model();
    let mut values = model.binarizer().thresholds().values().to_vec();
    let numeric = values
        .iter()
        .position(Option::is_some)
        .expect("model trains a numeric threshold");
    values[numeric] = Some(f64::NAN);
    let poisoned = DiceModel::from_parts(
        model.config().clone(),
        Binarizer::new(model.layout().clone(), Thresholds::from_values(values)),
        model.groups().clone(),
        model.transitions().clone(),
        model.num_actuators(),
        model.training_windows(),
    );
    assert!(codes(&poisoned).contains(&DiagnosticCode::NonFiniteThreshold));
}

#[test]
fn duplicate_group_state_is_detected() {
    let mut model = trained_model();
    let first = model.groups().state(dice_types::GroupId::new(0)).clone();
    model.groups_mut().insert_unchecked(first, 1);
    assert!(codes(&model).contains(&DiagnosticCode::DuplicateGroupState));
}

#[test]
fn zero_observation_count_is_detected() {
    let mut model = trained_model();
    let num_bits = model.groups().num_bits();
    // Find a state set the training data never produced.
    let unseen = (0u64..(1 << num_bits))
        .map(|mask| BitSet::from_indices(num_bits, (0..num_bits).filter(|&b| mask >> b & 1 == 1)))
        .find(|s| model.groups().lookup(s).is_none())
        .expect("training cannot have covered every state set");
    model.groups_mut().insert_unchecked(unseen, 0);
    assert!(codes(&model).contains(&DiagnosticCode::ZeroGroupCount));
}

#[test]
fn training_window_drift_is_detected() {
    let mut model = trained_model();
    *model.training_windows_mut() += 7;
    assert!(codes(&model).contains(&DiagnosticCode::TrainingWindowMismatch));
}

#[test]
fn dangling_actuator_ids_are_detected() {
    let mut model = trained_model();
    let bad_actuator = model.num_actuators() as u32 + 5;
    model.transitions_mut().g2a_mut().record(0, bad_actuator);
    assert!(codes(&model).contains(&DiagnosticCode::DanglingIdInG2a));

    let mut model = trained_model();
    model.transitions_mut().a2g_mut().record(bad_actuator, 0);
    assert!(codes(&model).contains(&DiagnosticCode::DanglingIdInA2g));
}

// ---------------------------------------------------------------------------
// DV18x: transition-graph dataflow. Models are hand-assembled so each shape
// defect exists in isolation from the structural invariants above.
// ---------------------------------------------------------------------------

/// A model from raw parts: `widths` gives the bit layout, `counts` the
/// per-group observation counts, `edges` the G2G transitions.
fn graph_model(
    widths: &[usize],
    counts: &[u64],
    edges: &[(u32, u32)],
    num_actuators: usize,
) -> DiceModel {
    let num_bits: usize = widths.iter().sum();
    let mut groups = GroupTable::new(num_bits);
    for (id, &count) in counts.iter().enumerate() {
        groups.insert_with_count(BitSet::from_indices(num_bits, [id % num_bits]), count);
    }
    let mut transitions = dice_core::TransitionModel::new();
    for &(from, to) in edges {
        transitions.record_g2g(dice_types::GroupId::new(from), dice_types::GroupId::new(to));
    }
    let layout = dice_core::BitLayout::from_widths(widths);
    let thresholds = Thresholds::from_values(vec![None; widths.len()]);
    DiceModel::from_parts(
        DiceConfig::default(),
        Binarizer::new(layout, thresholds),
        groups,
        transitions,
        num_actuators,
        counts.iter().sum(),
    )
}

#[test]
fn extra_source_component_is_dv180() {
    // 0 -> 1 <- 2: both 0 and 2 are sources; the less-observed one (2) is
    // the unreachable component.
    let model = graph_model(&[1, 1, 1], &[5, 3, 1], &[(0, 1), (2, 1)], 0);
    assert!(codes(&model).contains(&DiagnosticCode::UnreachableFlowComponent));
}

#[test]
fn extra_sink_component_is_dv181() {
    // 1 <- 0 -> 2: both 1 and 2 are sinks; the extra one absorbs the walk.
    let model = graph_model(&[1, 1, 1], &[5, 3, 1], &[(0, 1), (0, 2)], 0);
    assert!(codes(&model).contains(&DiagnosticCode::AbsorbingSinkComponent));
}

#[test]
fn split_graph_is_dv182() {
    // {0 -> 1} and {2 -> 3} never interact: the wrong-shard-merge signature.
    let model = graph_model(&[1, 1, 1, 1], &[4, 3, 2, 1], &[(0, 1), (2, 3)], 0);
    assert!(codes(&model).contains(&DiagnosticCode::DisconnectedComponent));
}

#[test]
fn unenterable_actuator_is_dv183() {
    // A2G leaves actuator 0, but no G2A transition ever enters it.
    let mut model = graph_model(&[1, 1], &[3, 2], &[(0, 1)], 1);
    model.transitions_mut().a2g_mut().record(0, 1);
    assert!(codes(&model).contains(&DiagnosticCode::UnenterableActuator));
}

#[test]
fn row_support_on_the_decision_boundary_is_dv184() {
    // Group 0's escape support is exactly min_row_support (default 10):
    // one lost observation silences its zero-probability violations.
    let min = DiceConfig::default().min_row_support() as usize;
    let edges: Vec<(u32, u32)> = vec![(0, 1); min];
    let model = graph_model(&[1, 1], &[11, 10], &edges, 0);
    let report = verify_model(&model);
    assert!(report
        .iter()
        .any(|d| d.code() == DiagnosticCode::FragileRowSupport));
    // Informational only: never part of the error/warning gate.
    assert!(report
        .iter()
        .filter(|d| d.code() == DiagnosticCode::FragileRowSupport)
        .all(|d| d.severity() == dice_verify::Severity::Info));
}

// ---------------------------------------------------------------------------
// DV19x: cross-artifact compatibility. Each mismatch class gets one seeded
// drift through the artifacts API.
// ---------------------------------------------------------------------------

fn artifact_of(bytes: &[u8]) -> dice_verify::artifacts::ArtifactInfo {
    let (info, findings) = dice_verify::artifacts::read_artifact_bytes("a", bytes);
    assert!(
        findings.is_empty(),
        "artifact must read clean: {findings:?}"
    );
    info.expect("artifact resolves")
}

#[test]
fn layout_drift_between_artifacts_is_dv190() {
    let model = trained_model();
    let mut header = String::new();
    dice_core::write_header_line(
        &mut header,
        &dice_core::TraceHeader::from_layout(&dice_core::BitLayout::from_widths(&[1, 1, 3])),
    );
    let mut bytes = Vec::new();
    write_model(&model, &mut bytes).unwrap();
    let findings = dice_verify::artifacts::check_artifacts(&[
        artifact_of(&bytes),
        artifact_of(header.as_bytes()),
    ]);
    assert!(findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactLayoutMismatch));
}

#[test]
fn config_drift_between_artifacts_is_dv191() {
    let model = trained_model();
    let drifted = DiceConfig::builder().num_thre(3).build();
    let mut bytes = Vec::new();
    write_model(&model, &mut bytes).unwrap();
    let findings = dice_verify::artifacts::check_artifacts(&[
        artifact_of(&bytes),
        artifact_of(dice_verify::artifacts::write_config_text(&drifted).as_bytes()),
    ]);
    assert!(findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactConfigMismatch));
}

#[test]
fn threshold_drift_between_models_is_dv192() {
    let model = trained_model();
    let mut values = model.binarizer().thresholds().values().to_vec();
    let numeric = values.iter().position(Option::is_some).unwrap();
    values[numeric] = values[numeric].map(|v| v + 1.0);
    let retrained = DiceModel::from_parts(
        model.config().clone(),
        Binarizer::new(model.layout().clone(), Thresholds::from_values(values)),
        model.groups().clone(),
        model.transitions().clone(),
        model.num_actuators(),
        model.training_windows(),
    );
    let mut a = Vec::new();
    write_model(&model, &mut a).unwrap();
    let mut b = Vec::new();
    write_model(&retrained, &mut b).unwrap();
    let findings = dice_verify::artifacts::check_artifacts(&[artifact_of(&a), artifact_of(&b)]);
    assert!(findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactThresholdMismatch));
    // Same layout and config: only the thresholds drifted.
    assert!(!findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactLayoutMismatch));
}

#[test]
fn unreadable_artifact_is_dv193() {
    let (info, findings) = dice_verify::artifacts::read_artifact_bytes("junk", b"\xff\xfe junk");
    assert!(info.is_none());
    assert!(findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactUnreadable));
}

#[test]
fn fingerprint_free_snapshot_is_dv194() {
    let telemetry = dice_telemetry::Telemetry::recording();
    let json = telemetry.snapshot().unwrap().to_json();
    let (info, findings) =
        dice_verify::artifacts::read_artifact_bytes("snap.json", json.as_bytes());
    assert!(info.is_some(), "snapshot still resolves as an artifact");
    assert!(findings
        .iter()
        .any(|d| d.code() == DiagnosticCode::ArtifactFingerprintUnavailable));
}

#[test]
fn read_model_rejects_corrupt_bytes_but_unverified_loads_them() {
    let mut model = trained_model();
    model.transitions_mut().g2g_mut().record(0, 9_999); // dangling group
    let mut buffer = Vec::new();
    write_model(&model, &mut buffer).unwrap();
    match read_model(buffer.as_slice()) {
        Err(ModelIoError::Invalid(diags)) => {
            assert!(diags
                .iter()
                .any(|d| d.code() == DiagnosticCode::DanglingGroupInG2g));
        }
        other => panic!("expected Invalid rejection, got {other:?}"),
    }
    let inspected = read_model_unverified(buffer.as_slice()).unwrap();
    assert!(has_errors(&verify_model(&inspected)));
}
