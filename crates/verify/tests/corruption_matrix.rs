//! The corruption matrix: every verified invariant gets exactly one seeded
//! violation, and the analyzer must answer with the matching diagnostic
//! code. This pins the code-to-invariant mapping — a refactor that silently
//! stops detecting one corruption class fails here, not in production.

use dice_core::{
    read_model, read_model_unverified, write_model, Binarizer, BitSet, DiceConfig, DiceModel,
    GroupTable, ModelBuilder, ModelIoError, ThresholdTrainer, Thresholds, TransitionCounts,
};
use dice_types::{
    ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
};
use dice_verify::{has_errors, verify_model, DiagnosticCode};

/// A trained model with binary + numeric sensors and an actuator, so every
/// section of the model is populated.
fn trained_model() -> DiceModel {
    let mut reg = DeviceRegistry::new();
    let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
    let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
    let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
    let mut trainer = ThresholdTrainer::new(&reg);
    for i in 0..60 {
        trainer.observe(&Event::from(SensorReading::new(
            t,
            Timestamp::from_secs(i),
            (20.0 + (i % 7) as f64).into(),
        )));
    }
    let mut builder = ModelBuilder::new(DiceConfig::default(), &reg, trainer.finish()).unwrap();
    for minute in 0..120 {
        let start = Timestamp::from_mins(minute);
        let end = Timestamp::from_mins(minute + 1);
        let mut events: Vec<Event> = Vec::new();
        if minute % 3 == 0 {
            events.push(SensorReading::new(m, start, true.into()).into());
        }
        if minute % 5 == 0 {
            events.push(ActuatorEvent::new(b, start, true).into());
        }
        events.push(SensorReading::new(t, start, (17.0 + (minute % 9) as f64).into()).into());
        builder.observe_window(start, end, &events);
    }
    builder.finish().unwrap()
}

fn codes(model: &DiceModel) -> Vec<DiagnosticCode> {
    verify_model(model)
        .iter()
        .map(dice_core::Diagnostic::code)
        .collect()
}

#[test]
fn fresh_model_has_no_error_findings() {
    let model = trained_model();
    let findings = verify_model(&model);
    assert!(
        !has_errors(&findings),
        "fresh ModelBuilder output must verify clean, got:\n{}",
        dice_verify::render_report(&findings)
    );
}

#[test]
fn dropping_a_group_yields_dangling_transition() {
    let mut model = trained_model();
    let kept = model.groups().len() - 1;
    let num_bits = model.groups().num_bits();
    let mut smaller = GroupTable::new(num_bits);
    for (id, state, count) in model.groups().entries() {
        if id.index() < kept {
            smaller.insert_with_count(state.clone(), count);
        }
    }
    *model.groups_mut() = smaller;
    assert!(
        codes(&model).contains(&DiagnosticCode::DanglingGroupInG2g),
        "transitions into the dropped group must dangle"
    );
}

#[test]
fn zeroing_a_row_total_breaks_stochasticity() {
    let mut model = trained_model();
    let g2g = model.transitions().g2g();
    let entries = g2g.entries();
    let mut row_totals = g2g.row_totals();
    row_totals[0].1 = 0; // the row's entries still sum to a positive count
    *model.transitions_mut().g2g_mut() = TransitionCounts::from_raw_parts(entries, row_totals);
    assert!(codes(&model).contains(&DiagnosticCode::RowNotStochastic));
}

#[test]
fn widening_a_state_set_breaks_the_layout() {
    let mut model = trained_model();
    let num_bits = model.groups().num_bits();
    model
        .groups_mut()
        .insert_unchecked(BitSet::from_indices(num_bits + 3, [num_bits + 1]), 1);
    assert!(codes(&model).contains(&DiagnosticCode::GroupWidthMismatch));
}

#[test]
fn nan_threshold_is_detected() {
    let model = trained_model();
    let mut values = model.binarizer().thresholds().values().to_vec();
    let numeric = values
        .iter()
        .position(Option::is_some)
        .expect("model trains a numeric threshold");
    values[numeric] = Some(f64::NAN);
    let poisoned = DiceModel::from_parts(
        model.config().clone(),
        Binarizer::new(model.layout().clone(), Thresholds::from_values(values)),
        model.groups().clone(),
        model.transitions().clone(),
        model.num_actuators(),
        model.training_windows(),
    );
    assert!(codes(&poisoned).contains(&DiagnosticCode::NonFiniteThreshold));
}

#[test]
fn duplicate_group_state_is_detected() {
    let mut model = trained_model();
    let first = model.groups().state(dice_types::GroupId::new(0)).clone();
    model.groups_mut().insert_unchecked(first, 1);
    assert!(codes(&model).contains(&DiagnosticCode::DuplicateGroupState));
}

#[test]
fn zero_observation_count_is_detected() {
    let mut model = trained_model();
    let num_bits = model.groups().num_bits();
    // Find a state set the training data never produced.
    let unseen = (0u64..(1 << num_bits))
        .map(|mask| BitSet::from_indices(num_bits, (0..num_bits).filter(|&b| mask >> b & 1 == 1)))
        .find(|s| model.groups().lookup(s).is_none())
        .expect("training cannot have covered every state set");
    model.groups_mut().insert_unchecked(unseen, 0);
    assert!(codes(&model).contains(&DiagnosticCode::ZeroGroupCount));
}

#[test]
fn training_window_drift_is_detected() {
    let mut model = trained_model();
    *model.training_windows_mut() += 7;
    assert!(codes(&model).contains(&DiagnosticCode::TrainingWindowMismatch));
}

#[test]
fn dangling_actuator_ids_are_detected() {
    let mut model = trained_model();
    let bad_actuator = model.num_actuators() as u32 + 5;
    model.transitions_mut().g2a_mut().record(0, bad_actuator);
    assert!(codes(&model).contains(&DiagnosticCode::DanglingIdInG2a));

    let mut model = trained_model();
    model.transitions_mut().a2g_mut().record(bad_actuator, 0);
    assert!(codes(&model).contains(&DiagnosticCode::DanglingIdInA2g));
}

#[test]
fn read_model_rejects_corrupt_bytes_but_unverified_loads_them() {
    let mut model = trained_model();
    model.transitions_mut().g2g_mut().record(0, 9_999); // dangling group
    let mut buffer = Vec::new();
    write_model(&model, &mut buffer).unwrap();
    match read_model(buffer.as_slice()) {
        Err(ModelIoError::Invalid(diags)) => {
            assert!(diags
                .iter()
                .any(|d| d.code() == DiagnosticCode::DanglingGroupInG2g));
        }
        other => panic!("expected Invalid rejection, got {other:?}"),
    }
    let inspected = read_model_unverified(buffer.as_slice()).unwrap();
    assert!(has_errors(&verify_model(&inspected)));
}
