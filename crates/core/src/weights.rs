//! Device criticality and failure weights (Section VI, "Weight of devices").
//!
//! DICE normally treats all devices as equally important and equally likely
//! to fail. The discussion section proposes two optional weights: a
//! *criticality weight* for devices whose failure is dangerous (gas, flame)
//! and a *failure weight* for devices that fail often. A device whose
//! combined weight crosses a threshold can be alarmed early, before the
//! probable set narrows below `numThre`.
//
// lint-src: allow-file(hash-container) — weights are point lookups keyed by
// device id; the one iteration (max-weight scan) folds with max, which is
// order-insensitive.

use std::collections::HashMap;

use dice_types::DeviceId;

/// Per-device criticality and failure weights.
///
/// Unset weights default to 1.0. The combined weight is the product of the
/// two, so a device with criticality 3 and failure likelihood 2 weighs 6.
///
/// # Example
///
/// ```
/// use dice_core::DeviceWeights;
/// use dice_types::{DeviceId, SensorId};
///
/// let gas = DeviceId::Sensor(SensorId::new(4));
/// let mut weights = DeviceWeights::new();
/// weights.set_criticality(gas, 5.0);
/// assert_eq!(weights.combined(gas), 5.0);
/// assert_eq!(weights.combined(DeviceId::Sensor(SensorId::new(0))), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceWeights {
    criticality: HashMap<DeviceId, f64>,
    failure: HashMap<DeviceId, f64>,
}

impl DeviceWeights {
    /// Creates an empty (all-ones) weight table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the criticality weight of a device.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not finite and positive.
    pub fn set_criticality(&mut self, device: DeviceId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be finite and positive"
        );
        self.criticality.insert(device, weight);
    }

    /// Sets the failure-likelihood weight of a device.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not finite and positive.
    pub fn set_failure(&mut self, device: DeviceId, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weights must be finite and positive"
        );
        self.failure.insert(device, weight);
    }

    /// The criticality weight (1.0 by default).
    pub fn criticality(&self, device: DeviceId) -> f64 {
        self.criticality.get(&device).copied().unwrap_or(1.0)
    }

    /// The failure-likelihood weight (1.0 by default).
    pub fn failure(&self, device: DeviceId) -> f64 {
        self.failure.get(&device).copied().unwrap_or(1.0)
    }

    /// The combined weight: criticality × failure.
    pub fn combined(&self, device: DeviceId) -> f64 {
        self.criticality(device) * self.failure(device)
    }

    /// Devices from `candidates` whose combined weight reaches `threshold`.
    pub fn over_threshold<'a>(
        &'a self,
        candidates: impl IntoIterator<Item = &'a DeviceId>,
        threshold: f64,
    ) -> Vec<DeviceId> {
        candidates
            .into_iter()
            .copied()
            .filter(|d| self.combined(*d) >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorId, SensorId};

    #[test]
    fn defaults_are_one() {
        let w = DeviceWeights::new();
        let d = DeviceId::Sensor(SensorId::new(0));
        assert_eq!(w.criticality(d), 1.0);
        assert_eq!(w.failure(d), 1.0);
        assert_eq!(w.combined(d), 1.0);
    }

    #[test]
    fn combined_multiplies() {
        let mut w = DeviceWeights::new();
        let d = DeviceId::Actuator(ActuatorId::new(1));
        w.set_criticality(d, 3.0);
        w.set_failure(d, 2.0);
        assert_eq!(w.combined(d), 6.0);
    }

    #[test]
    fn over_threshold_filters() {
        let mut w = DeviceWeights::new();
        let hot = DeviceId::Sensor(SensorId::new(1));
        let cold = DeviceId::Sensor(SensorId::new(2));
        w.set_criticality(hot, 10.0);
        let devices = [hot, cold];
        assert_eq!(w.over_threshold(devices.iter(), 5.0), vec![hot]);
        assert!(w.over_threshold(devices.iter(), 11.0).is_empty());
        assert_eq!(w.over_threshold(devices.iter(), 1.0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_non_positive_weight() {
        let mut w = DeviceWeights::new();
        w.set_criticality(DeviceId::Sensor(SensorId::new(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nan_weight() {
        let mut w = DeviceWeights::new();
        w.set_failure(DeviceId::Sensor(SensorId::new(0)), f64::NAN);
    }
}
