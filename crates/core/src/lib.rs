//! # DICE: Detection & Identification with Context Extraction
//!
//! A faithful implementation of DICE, the faulty-IoT-device detection and
//! identification system for smart homes (Choi, DSN 2018). DICE runs on the
//! home gateway in two phases:
//!
//! * **Precomputation phase** ([`ContextExtractor`] / [`ModelBuilder`]):
//!   fault-free sensor data is windowed into *sensor state sets* (one bit per
//!   binary sensor, three bits — skewness / trend / level — per numeric
//!   sensor). Every unique state set becomes a *group*, and three Markov
//!   transition matrices are learned: group→group, group→actuator, and
//!   actuator→group.
//! * **Real-time phase** ([`DiceEngine`]): each incoming window is checked
//!   for a *correlation violation* (no exact group match) and a *transition
//!   violation* (zero-probability transition). Violations trigger the
//!   identification step, which diffs the problematic state set against the
//!   probable groups and intersects per-window probable-fault sets until at
//!   most `numThre` devices remain.
//!
//! # Quickstart
//!
//! ```
//! use dice_core::{ContextExtractor, DiceConfig, DiceEngine};
//! use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
//!
//! # fn main() -> Result<(), dice_core::DiceError> {
//! // 1. Describe the deployment.
//! let mut registry = DeviceRegistry::new();
//! let motion = registry.add_sensor(SensorKind::Motion, "kitchen motion", Room::Kitchen);
//!
//! // 2. Precompute context from fault-free data.
//! let mut training = EventLog::new();
//! for minute in 0..240 {
//!     training.push_sensor(SensorReading::new(
//!         motion,
//!         Timestamp::from_mins(minute),
//!         (minute % 2 == 0).into(),
//!     ));
//! }
//! let model = ContextExtractor::new(DiceConfig::default()).extract(&registry, &mut training)?;
//!
//! // 3. Run the real-time phase.
//! let mut engine = DiceEngine::new(&model);
//! let mut live = EventLog::new();
//! for minute in 0..30 {
//!     live.push_sensor(SensorReading::new(
//!         motion,
//!         Timestamp::from_mins(minute),
//!         (minute % 2 == 0).into(),
//!     ));
//! }
//! let reports = engine.process_log(&mut live);
//! assert!(reports.is_empty(), "fault-free replay stays quiet");
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the bit-sliced scan kernels (`scan_sliced`)
// are the single sanctioned exception, opting in at module level for the
// runtime-dispatched `std::arch` SIMD intrinsics.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod attest;
mod binarize;
mod bitset;
mod config;
mod detect;
mod diag;
mod engine;
mod error;
mod extract;
pub mod fingerprint;
mod groups;
mod identify;
pub mod invariants;
mod layout;
mod model;
mod model_io;
mod partition;
mod scan;
mod scan_routed;
mod scan_sliced;
mod stats;
pub mod trace;
mod train_par;
mod transition;
mod weights;

pub use attest::{Attestation, Attestor};
pub use binarize::{BinarizeScratch, Binarizer, ThresholdTrainer, Thresholds, WindowObservation};
pub use bitset::BitSet;
pub use config::{DiceConfig, DiceConfigBuilder};
pub use detect::{CheckKind, CheckResult, Detector, PrevWindow, TransitionCase};
pub use diag::{has_errors, Diagnostic, DiagnosticCode, Severity};
pub use engine::{
    CostProfile, DetectionDetail, DiceEngine, EngineOptions, FaultReport, WindowPrescan,
};
pub use error::DiceError;
pub use extract::{ContextExtractor, ModelBuilder};
pub use groups::{Candidate, GroupTable};
pub use identify::{Identifier, IntersectionTracker, ProbableSet};
pub use layout::{BitLayout, BitRole, BitSpan, NUMERIC_SPAN_WIDTH};
pub use model::DiceModel;
pub use model_io::{
    read_model, read_model_unverified, write_model, ModelIoError, MODEL_FORMAT_VERSION, MODEL_MAGIC,
};
pub use partition::{Partition, PartitionedEngine, PartitionedModel};
pub use scan::{ScanIndex, ScanProfile};
pub use scan_routed::{RoutedScanIndex, SCAN_CROSSOVER_GROUPS};
pub use scan_sliced::{
    ScanBackend, SlicedScanIndex, BLOCK_LANES, MAX_SLICED_DISTANCE, SCAN_BACKEND_ENV,
};
pub use stats::{ExactSum, MeanAccumulator, RunningMean, WindowStats};
pub use trace::{
    parse_trace_jsonl, render_explain, write_header_line, write_trace_jsonl, write_trace_line,
    DecisionTrace, FlightRecorder, JsonlTraceWriter, LineageStamp, SharedTraceSink, TraceHeader,
    TraceLog, TraceOptions, TracePhase, TraceSink, TraceTransition, TraceVerdict,
    DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_SNAPSHOT_LAST, DEFAULT_TRACE_TOP_K, TRACE_KIND,
    TRACE_SCHEMA,
};
pub use train_par::{merge_partials, ChunkExtractor, ParallelTrainer, PartialModel};
pub use transition::{TransitionCounts, TransitionModel};
pub use weights::DeviceWeights;
