//! DICE configuration.

use serde::{Deserialize, Serialize};

use dice_types::TimeDelta;

/// Tunable parameters of the DICE pipeline.
///
/// Defaults follow the paper: one-minute state-set windows (the empirically
/// optimal duration, Section VI), single-fault operation (`max_faults = 1`,
/// `numThre = 1`), and a candidate-group distance derived from the fault
/// count and the widest sensor span.
///
/// # Example
///
/// ```
/// use dice_core::DiceConfig;
/// use dice_types::TimeDelta;
///
/// let config = DiceConfig::builder()
///     .window(TimeDelta::from_mins(1))
///     .max_faults(3)
///     .num_thre(3)
///     .build();
/// assert_eq!(config.max_faults(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiceConfig {
    window: TimeDelta,
    max_faults: usize,
    num_thre: usize,
    candidate_distance: Option<u32>,
    max_identification_windows: usize,
    nearest_only_identification: bool,
    min_row_support: u64,
    confirmation_violations: usize,
    confirmation_horizon_windows: usize,
}

impl DiceConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> DiceConfigBuilder {
        DiceConfigBuilder::default()
    }

    /// The sensor-state-set window duration `d` (default one minute).
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// Maximum number of simultaneous faults considered (default 1).
    pub fn max_faults(&self) -> usize {
        self.max_faults
    }

    /// The `numThre` identification threshold: identification repeats until
    /// the intersection of probable faulty devices is at most this size
    /// (default 1; the paper uses 3 for the multi-fault experiment).
    pub fn num_thre(&self) -> usize {
        self.num_thre
    }

    /// Maximum windows the identification step may consume before reporting
    /// the current intersection as inconclusive (default 240, i.e. 4 hours
    /// of one-minute windows).
    pub fn max_identification_windows(&self) -> usize {
        self.max_identification_windows
    }

    /// The candidate-group Hamming-distance threshold.
    ///
    /// If unset, it is derived as `max_faults * max_span_width`: a single
    /// faulty binary sensor can disturb one bit, a faulty numeric sensor up
    /// to three (its skewness/trend/level bits).
    pub fn candidate_distance(&self, max_span_width: usize) -> u32 {
        self.candidate_distance
            .unwrap_or((self.max_faults * max_span_width) as u32)
    }

    /// The explicitly configured candidate distance, if any.
    pub fn candidate_distance_override(&self) -> Option<u32> {
        self.candidate_distance
    }

    /// Number of violating windows required before a *transition-detected*
    /// fault is reported (default 2). Faults manifest repeatedly — "a
    /// problematic sensor is likely to generate faults continuously"
    /// (Section 3.4) — while a once-in-a-dataset legal-but-unseen transition
    /// violates exactly once, so requiring confirmation suppresses those
    /// blips without losing faults. Correlation violations are inherently
    /// high-precision (an unseen *state* is far stronger evidence than an
    /// unseen transition) and always report at the first violation.
    pub fn confirmation_violations(&self) -> usize {
        self.confirmation_violations
    }

    /// Window budget for gathering the confirming violations (default 60):
    /// a pending single-violation detection that stays quiet this long is
    /// discarded as a blip.
    pub fn confirmation_horizon_windows(&self) -> usize {
        self.confirmation_horizon_windows
    }

    /// Minimum number of observed outgoing transitions a row needs before a
    /// zero-probability transition from it counts as a violation
    /// (default 10). A Markov row seen only a handful of times asserts
    /// nothing about which successors are impossible; requiring support
    /// separates "never happens" from "insufficiently sampled".
    pub fn min_row_support(&self) -> u64 {
        self.min_row_support
    }

    /// Stable fingerprint of every tunable parameter.
    ///
    /// Two configs fingerprint equal exactly when every field matches, so
    /// a model trained under one parameterization is distinguishable from
    /// a config file that drifted (different window, thresholds, or
    /// identification limits).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.push_i64(self.window.as_secs());
        fp.push_u64(self.max_faults as u64);
        fp.push_u64(self.num_thre as u64);
        match self.candidate_distance {
            Some(d) => {
                fp.push_bool(true);
                fp.push_u64(u64::from(d));
            }
            None => fp.push_bool(false),
        }
        fp.push_u64(self.max_identification_windows as u64);
        fp.push_bool(self.nearest_only_identification);
        fp.push_u64(self.min_row_support);
        fp.push_u64(self.confirmation_violations as u64);
        fp.push_u64(self.confirmation_horizon_windows as u64);
        fp.finish()
    }

    /// Whether identification diffs only against the nearest probable
    /// groups (default `true`): the nearest groups explain the observation
    /// with the fewest faulty bits, which keeps probable-device sets small
    /// and the `numThre` intersection fast. Disable to diff against every
    /// candidate within the distance threshold (the paper's literal
    /// reading) — the `ablation_identification` bench compares both.
    pub fn nearest_only_identification(&self) -> bool {
        self.nearest_only_identification
    }
}

impl Default for DiceConfig {
    fn default() -> Self {
        DiceConfig {
            window: TimeDelta::from_mins(1),
            max_faults: 1,
            num_thre: 1,
            candidate_distance: None,
            max_identification_windows: 240,
            nearest_only_identification: true,
            min_row_support: 10,
            confirmation_violations: 2,
            confirmation_horizon_windows: 240,
        }
    }
}

/// Builder for [`DiceConfig`].
#[derive(Debug, Clone, Default)]
pub struct DiceConfigBuilder {
    config: DiceConfig,
}

impl DiceConfigBuilder {
    /// Sets the state-set window duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is non-positive.
    pub fn window(mut self, window: TimeDelta) -> Self {
        assert!(window.as_secs() > 0, "window duration must be positive");
        self.config.window = window;
        self
    }

    /// Sets the number of simultaneous faults to consider.
    ///
    /// # Panics
    ///
    /// Panics if `max_faults` is zero.
    pub fn max_faults(mut self, max_faults: usize) -> Self {
        assert!(max_faults > 0, "max_faults must be at least 1");
        self.config.max_faults = max_faults;
        self
    }

    /// Sets the `numThre` identification threshold.
    ///
    /// # Panics
    ///
    /// Panics if `num_thre` is zero.
    pub fn num_thre(mut self, num_thre: usize) -> Self {
        assert!(num_thre > 0, "num_thre must be at least 1");
        self.config.num_thre = num_thre;
        self
    }

    /// Overrides the derived candidate-group distance threshold.
    pub fn candidate_distance(mut self, distance: u32) -> Self {
        self.config.candidate_distance = Some(distance);
        self
    }

    /// Sets the identification window budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is zero.
    pub fn max_identification_windows(mut self, windows: usize) -> Self {
        assert!(windows > 0, "identification window budget must be positive");
        self.config.max_identification_windows = windows;
        self
    }

    /// Sets the number of violating windows required before reporting (see
    /// [`DiceConfig::confirmation_violations`]).
    ///
    /// # Panics
    ///
    /// Panics if `violations` is zero.
    pub fn confirmation_violations(mut self, violations: usize) -> Self {
        assert!(
            violations > 0,
            "confirmation requires at least one violation"
        );
        self.config.confirmation_violations = violations;
        self
    }

    /// Sets the confirmation horizon (see
    /// [`DiceConfig::confirmation_horizon_windows`]).
    pub fn confirmation_horizon_windows(mut self, windows: usize) -> Self {
        self.config.confirmation_horizon_windows = windows;
        self
    }

    /// Sets the minimum row support for transition violations (see
    /// [`DiceConfig::min_row_support`]).
    pub fn min_row_support(mut self, support: u64) -> Self {
        self.config.min_row_support = support;
        self
    }

    /// Sets whether identification diffs only against the nearest probable
    /// groups (see [`DiceConfig::nearest_only_identification`]).
    pub fn nearest_only_identification(mut self, nearest_only: bool) -> Self {
        self.config.nearest_only_identification = nearest_only;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> DiceConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DiceConfig::default();
        assert_eq!(c.window(), TimeDelta::from_mins(1));
        assert_eq!(c.max_faults(), 1);
        assert_eq!(c.num_thre(), 1);
        assert_eq!(c.candidate_distance_override(), None);
    }

    #[test]
    fn candidate_distance_derives_from_span_width() {
        let c = DiceConfig::default();
        assert_eq!(c.candidate_distance(1), 1); // binary-only home
        assert_eq!(c.candidate_distance(3), 3); // numeric sensors present
        let multi = DiceConfig::builder().max_faults(2).build();
        assert_eq!(multi.candidate_distance(3), 6);
    }

    #[test]
    fn explicit_candidate_distance_wins() {
        let c = DiceConfig::builder().candidate_distance(5).build();
        assert_eq!(c.candidate_distance(1), 5);
        assert_eq!(c.candidate_distance(3), 5);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = DiceConfig::builder()
            .window(TimeDelta::from_mins(2))
            .max_faults(3)
            .num_thre(3)
            .max_identification_windows(10)
            .build();
        assert_eq!(c.window(), TimeDelta::from_mins(2));
        assert_eq!(c.max_faults(), 3);
        assert_eq!(c.num_thre(), 3);
        assert_eq!(c.max_identification_windows(), 10);
    }

    #[test]
    #[should_panic(expected = "window duration must be positive")]
    fn builder_rejects_zero_window() {
        let _ = DiceConfig::builder().window(TimeDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "max_faults must be at least 1")]
    fn builder_rejects_zero_faults() {
        let _ = DiceConfig::builder().max_faults(0);
    }

    #[test]
    #[should_panic(expected = "num_thre must be at least 1")]
    fn builder_rejects_zero_num_thre() {
        let _ = DiceConfig::builder().num_thre(0);
    }
}
