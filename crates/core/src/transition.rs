//! Markov-chain transition tables: G2G, G2A, and A2G.
//!
//! Transition extraction (Section 3.2.2, Figure 3.4) records three transition
//! probability matrices: group-to-group, group-to-actuator, and
//! actuator-to-group. Actuator-to-actuator is deliberately omitted — actuators
//! already manifest in sensor readings, so A2A adds cost without information.
//!
//! Groups are numerous and transitions sparse, so the "matrices" are stored
//! as sparse count maps with per-row totals; probabilities are derived on
//! demand.
//
// lint-src: allow-file(hash-container) — the sparse count maps serve point
// lookups; `entries()` sorts before yielding, so no hash order escapes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dice_types::{ActuatorId, GroupId};

/// A sparse transition-count matrix over `u32`-indexed states.
///
/// Rows are `from` states, columns `to` states. `prob` is the
/// maximum-likelihood estimate `count(from, to) / count(from, *)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "TransitionCountsRepr", into = "TransitionCountsRepr")]
pub struct TransitionCounts {
    counts: HashMap<(u32, u32), u64>,
    row_totals: HashMap<u32, u64>,
}

impl TransitionCounts {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `from -> to` transition.
    pub fn record(&mut self, from: u32, to: u32) {
        *self.counts.entry((from, to)).or_insert(0) += 1;
        *self.row_totals.entry(from).or_insert(0) += 1;
        debug_assert!(
            self.counts[&(from, to)] <= self.row_totals[&from],
            "cell count exceeds its row total"
        );
    }

    /// The raw count of `from -> to`.
    pub fn count(&self, from: u32, to: u32) -> u64 {
        self.counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total outgoing transitions from `from`.
    pub fn row_total(&self, from: u32) -> u64 {
        self.row_totals.get(&from).copied().unwrap_or(0)
    }

    /// Whether `from -> to` was ever observed.
    pub fn observed(&self, from: u32, to: u32) -> bool {
        self.count(from, to) > 0
    }

    /// The transition probability `P(to | from)`.
    ///
    /// Zero when the row was never observed; this is what the transition
    /// check tests against (cases 1–3 of Section 3.3.2).
    pub fn prob(&self, from: u32, to: u32) -> f64 {
        let total = self.row_total(from);
        if total == 0 {
            0.0
        } else {
            self.count(from, to) as f64 / total as f64
        }
    }

    /// The observed successors of `from`, ascending by state index.
    pub fn successors(&self, from: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .counts
            .keys()
            .filter(|(f, _)| *f == from)
            .map(|&(_, t)| t)
            .collect();
        out.sort_unstable();
        out
    }

    /// Iterates over `(from, to, count)` entries in ascending order.
    pub fn entries(&self) -> Vec<(u32, u32, u64)> {
        let mut out: Vec<(u32, u32, u64)> =
            self.counts.iter().map(|(&(f, t), &n)| (f, t, n)).collect();
        out.sort_unstable();
        out
    }

    /// Records `n` occurrences of `from -> to` at once (model loading).
    pub fn record_n(&mut self, from: u32, to: u32, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry((from, to)).or_insert(0) += n;
        *self.row_totals.entry(from).or_insert(0) += n;
        debug_assert!(
            self.counts[&(from, to)] <= self.row_totals[&from],
            "cell count exceeds its row total"
        );
    }

    /// Iterates over `(from, row_total)` pairs in ascending row order.
    pub fn row_totals(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self.row_totals.iter().map(|(&f, &n)| (f, n)).collect();
        out.sort_unstable();
        out
    }

    /// Assembles a matrix from raw entries and row totals **without**
    /// validating that the totals match the entries.
    ///
    /// This exists so verifier tests can construct matrices that violate the
    /// row-stochasticity invariant; every supported loading path recomputes
    /// totals instead. Never feed the result to a live engine.
    #[doc(hidden)]
    pub fn from_raw_parts(entries: Vec<(u32, u32, u64)>, row_totals: Vec<(u32, u64)>) -> Self {
        TransitionCounts {
            counts: entries.into_iter().map(|(f, t, n)| ((f, t), n)).collect(),
            row_totals: row_totals.into_iter().collect(),
        }
    }

    /// Folds another matrix's counts into this one. Counts are additive, so
    /// the result is independent of merge order and grouping.
    pub fn merge(&mut self, other: &TransitionCounts) {
        for (&(from, to), &n) in &other.counts {
            self.record_n(from, to, n);
        }
    }

    /// Like [`TransitionCounts::merge`], but maps row and column indices
    /// through `map_from` / `map_to` first — used when folding a chunk-local
    /// matrix (group axes carry chunk-local ids) into the global one.
    pub fn merge_mapped(
        &mut self,
        other: &TransitionCounts,
        map_from: impl Fn(u32) -> u32,
        map_to: impl Fn(u32) -> u32,
    ) {
        for (&(from, to), &n) in &other.counts {
            self.record_n(map_from(from), map_to(to), n);
        }
    }

    /// Number of distinct `(from, to)` pairs observed.
    pub fn num_entries(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded transitions.
    pub fn total(&self) -> u64 {
        self.row_totals.values().sum()
    }
}

/// Serde-friendly representation of [`TransitionCounts`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TransitionCountsRepr {
    entries: Vec<(u32, u32, u64)>,
}

impl From<TransitionCountsRepr> for TransitionCounts {
    fn from(repr: TransitionCountsRepr) -> Self {
        let mut counts = TransitionCounts::new();
        for (from, to, n) in repr.entries {
            counts.counts.insert((from, to), n);
            *counts.row_totals.entry(from).or_insert(0) += n;
        }
        counts
    }
}

impl From<TransitionCounts> for TransitionCountsRepr {
    fn from(counts: TransitionCounts) -> Self {
        let mut entries: Vec<(u32, u32, u64)> = counts
            .counts
            .into_iter()
            .map(|((f, t), n)| (f, t, n))
            .collect();
        entries.sort_unstable();
        TransitionCountsRepr { entries }
    }
}

/// The three transition matrices DICE extracts (Figure 3.4).
///
/// # Example
///
/// ```
/// use dice_core::TransitionModel;
/// use dice_types::{ActuatorId, GroupId};
///
/// let mut model = TransitionModel::new();
/// model.record_g2g(GroupId::new(0), GroupId::new(1));
/// model.record_g2a(GroupId::new(0), ActuatorId::new(2));
/// model.record_a2g(ActuatorId::new(2), GroupId::new(1));
/// assert_eq!(model.g2g_prob(GroupId::new(0), GroupId::new(1)), 1.0);
/// assert!(model.g2a_observed(GroupId::new(0), ActuatorId::new(2)));
/// assert!(!model.a2g_observed(ActuatorId::new(2), GroupId::new(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    g2g: TransitionCounts,
    g2a: TransitionCounts,
    a2g: TransitionCounts,
}

impl TransitionModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a group-to-group transition between consecutive windows.
    pub fn record_g2g(&mut self, from: GroupId, to: GroupId) {
        self.g2g.record(from.index() as u32, to.index() as u32);
    }

    /// Records a group followed by an actuator activation.
    pub fn record_g2a(&mut self, from: GroupId, to: ActuatorId) {
        self.g2a.record(from.index() as u32, to.index() as u32);
    }

    /// Records an actuator activation followed by a group.
    pub fn record_a2g(&mut self, from: ActuatorId, to: GroupId) {
        self.a2g.record(from.index() as u32, to.index() as u32);
    }

    /// `P(to | from)` in the G2G matrix.
    pub fn g2g_prob(&self, from: GroupId, to: GroupId) -> f64 {
        self.g2g.prob(from.index() as u32, to.index() as u32)
    }

    /// `P(actuator | group)` in the G2A matrix.
    pub fn g2a_prob(&self, from: GroupId, to: ActuatorId) -> f64 {
        self.g2a.prob(from.index() as u32, to.index() as u32)
    }

    /// `P(group | actuator)` in the A2G matrix.
    pub fn a2g_prob(&self, from: ActuatorId, to: GroupId) -> f64 {
        self.a2g.prob(from.index() as u32, to.index() as u32)
    }

    /// Whether the G2G transition was ever observed (case 1 tests this).
    pub fn g2g_observed(&self, from: GroupId, to: GroupId) -> bool {
        self.g2g.observed(from.index() as u32, to.index() as u32)
    }

    /// Whether the G2A transition was ever observed (case 2 tests this).
    pub fn g2a_observed(&self, from: GroupId, to: ActuatorId) -> bool {
        self.g2a.observed(from.index() as u32, to.index() as u32)
    }

    /// Whether the A2G transition was ever observed (case 3 tests this).
    pub fn a2g_observed(&self, from: ActuatorId, to: GroupId) -> bool {
        self.a2g.observed(from.index() as u32, to.index() as u32)
    }

    /// Whether group `from` ever had an outgoing G2G transition.
    ///
    /// Used to distinguish "never-observed transition" (a violation) from
    /// "no information about this row" (e.g. the last training window).
    pub fn g2g_row_known(&self, from: GroupId) -> bool {
        self.g2g.row_total(from.index() as u32) > 0
    }

    /// Total observed outgoing G2G transitions from `from`.
    pub fn g2g_row_total(&self, from: GroupId) -> u64 {
        self.g2g.row_total(from.index() as u32)
    }

    /// Outgoing G2G transitions from `from`, excluding self-loops.
    ///
    /// This is the meaningful support for a zero-probability claim: a group
    /// that persisted for one long stretch has a large raw row total but has
    /// only ever been seen *leaving* once.
    pub fn g2g_row_support(&self, from: GroupId) -> u64 {
        let f = from.index() as u32;
        self.g2g.row_total(f) - self.g2g.count(f, f)
    }

    /// Total observed A2G transitions from `from`.
    pub fn a2g_row_total(&self, from: ActuatorId) -> u64 {
        self.a2g.row_total(from.index() as u32)
    }

    /// Whether actuator `from` was ever observed activating during training.
    pub fn a2g_row_known(&self, from: ActuatorId) -> bool {
        self.a2g.row_total(from.index() as u32) > 0
    }

    /// The groups observed to follow `from`, ascending by id.
    pub fn g2g_successors(&self, from: GroupId) -> Vec<GroupId> {
        self.g2g
            .successors(from.index() as u32)
            .into_iter()
            .map(GroupId::new)
            .collect()
    }

    /// Direct access to the raw G2G counts.
    pub fn g2g(&self) -> &TransitionCounts {
        &self.g2g
    }

    /// Mutable access to the raw G2G counts (model loading).
    pub fn g2g_mut(&mut self) -> &mut TransitionCounts {
        &mut self.g2g
    }

    /// Mutable access to the raw G2A counts (model loading).
    pub fn g2a_mut(&mut self) -> &mut TransitionCounts {
        &mut self.g2a
    }

    /// Mutable access to the raw A2G counts (model loading).
    pub fn a2g_mut(&mut self) -> &mut TransitionCounts {
        &mut self.a2g
    }

    /// Folds a chunk-local model into this one, mapping chunk-local group
    /// ids through `group_map` (see [`crate::GroupTable::merge`]). Actuator
    /// ids are global already and pass through unchanged: G2G maps both
    /// sides, G2A only the row, A2G only the column.
    ///
    /// # Panics
    ///
    /// Panics if `other` references a local group id not covered by
    /// `group_map`.
    pub fn merge_mapped(&mut self, other: &TransitionModel, group_map: &[GroupId]) {
        let group = |local: u32| group_map[local as usize].index() as u32;
        let actuator = |id: u32| id;
        self.g2g.merge_mapped(&other.g2g, group, group);
        self.g2a.merge_mapped(&other.g2a, group, actuator);
        self.a2g.merge_mapped(&other.a2g, actuator, group);
    }

    /// Direct access to the raw G2A counts.
    pub fn g2a(&self) -> &TransitionCounts {
        &self.g2a
    }

    /// Direct access to the raw A2G counts.
    pub fn a2g(&self) -> &TransitionCounts {
        &self.a2g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_normalize_per_row() {
        let mut t = TransitionCounts::new();
        t.record(0, 1);
        t.record(0, 1);
        t.record(0, 2);
        t.record(3, 0);
        assert!((t.prob(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.prob(0, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.prob(0, 3), 0.0);
        assert_eq!(t.prob(9, 0), 0.0);
        assert_eq!(t.prob(3, 0), 1.0);
    }

    #[test]
    fn observed_and_counts() {
        let mut t = TransitionCounts::new();
        t.record(5, 6);
        assert!(t.observed(5, 6));
        assert!(!t.observed(6, 5));
        assert_eq!(t.count(5, 6), 1);
        assert_eq!(t.row_total(5), 1);
        assert_eq!(t.num_entries(), 1);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn successors_sorted() {
        let mut t = TransitionCounts::new();
        t.record(0, 7);
        t.record(0, 2);
        t.record(0, 7);
        t.record(1, 3);
        assert_eq!(t.successors(0), vec![2, 7]);
        assert_eq!(t.successors(1), vec![3]);
        assert!(t.successors(2).is_empty());
    }

    #[test]
    fn paper_example_always_follows_means_prob_one() {
        // "If group 2 always appears after group 1, the transition
        // probability of group 1 to group 2 is 100%."
        let mut m = TransitionModel::new();
        for _ in 0..5 {
            m.record_g2g(GroupId::new(1), GroupId::new(2));
        }
        assert_eq!(m.g2g_prob(GroupId::new(1), GroupId::new(2)), 1.0);
        assert!(m.g2g_observed(GroupId::new(1), GroupId::new(2)));
        assert!(!m.g2g_observed(GroupId::new(2), GroupId::new(1)));
    }

    #[test]
    fn model_keeps_three_matrices_separate() {
        let mut m = TransitionModel::new();
        m.record_g2g(GroupId::new(0), GroupId::new(1));
        m.record_g2a(GroupId::new(0), ActuatorId::new(1));
        m.record_a2g(ActuatorId::new(0), GroupId::new(1));
        assert!(m.g2g_observed(GroupId::new(0), GroupId::new(1)));
        assert!(m.g2a_observed(GroupId::new(0), ActuatorId::new(1)));
        assert!(m.a2g_observed(ActuatorId::new(0), GroupId::new(1)));
        // Cross-matrix queries see nothing.
        assert!(!m.g2a_observed(GroupId::new(0), ActuatorId::new(0)));
        assert!(!m.a2g_observed(ActuatorId::new(1), GroupId::new(1)));
    }

    #[test]
    fn row_known_distinguishes_missing_rows() {
        let mut m = TransitionModel::new();
        m.record_g2g(GroupId::new(0), GroupId::new(1));
        assert!(m.g2g_row_known(GroupId::new(0)));
        assert!(!m.g2g_row_known(GroupId::new(1)));
        m.record_a2g(ActuatorId::new(2), GroupId::new(0));
        assert!(m.a2g_row_known(ActuatorId::new(2)));
        assert!(!m.a2g_row_known(ActuatorId::new(0)));
    }

    #[test]
    fn g2g_successors_map_to_group_ids() {
        let mut m = TransitionModel::new();
        m.record_g2g(GroupId::new(0), GroupId::new(3));
        m.record_g2g(GroupId::new(0), GroupId::new(1));
        assert_eq!(
            m.g2g_successors(GroupId::new(0)),
            vec![GroupId::new(1), GroupId::new(3)]
        );
    }

    #[test]
    fn merge_adds_counts_and_row_totals() {
        let mut a = TransitionCounts::new();
        a.record(0, 1);
        a.record(0, 1);
        a.record(2, 0);
        let mut b = TransitionCounts::new();
        b.record(0, 1);
        b.record(0, 3);
        a.merge(&b);
        assert_eq!(a.count(0, 1), 3);
        assert_eq!(a.count(0, 3), 1);
        assert_eq!(a.row_total(0), 4);
        assert_eq!(a.row_total(2), 1);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn merge_mapped_remaps_the_right_axes() {
        // Chunk-local ids: group 0 -> global 5, group 1 -> global 2.
        let map = [GroupId::new(5), GroupId::new(2)];
        let mut local = TransitionModel::new();
        local.record_g2g(GroupId::new(0), GroupId::new(1));
        local.record_g2a(GroupId::new(1), ActuatorId::new(7));
        local.record_a2g(ActuatorId::new(7), GroupId::new(0));

        let mut global = TransitionModel::new();
        global.record_g2a(GroupId::new(2), ActuatorId::new(7));
        global.merge_mapped(&local, &map);

        assert!(global.g2g_observed(GroupId::new(5), GroupId::new(2)));
        assert_eq!(global.g2a().count(2, 7), 2);
        assert!(global.a2g_observed(ActuatorId::new(7), GroupId::new(5)));
        assert!(!global.g2g_observed(GroupId::new(0), GroupId::new(1)));
    }

    #[test]
    fn serde_round_trip_preserves_probabilities() {
        let mut t = TransitionCounts::new();
        t.record(0, 1);
        t.record(0, 2);
        t.record(0, 2);
        let repr = TransitionCountsRepr::from(t.clone());
        let back = TransitionCounts::from(repr);
        assert_eq!(back, t);
        assert!((back.prob(0, 2) - 2.0 / 3.0).abs() < 1e-12);
    }
}
