//! Parallel map-reduce precomputation: chunked extraction with a
//! deterministic model merge.
//!
//! [`ParallelTrainer`] runs the same two-pass precomputation as
//! [`ContextExtractor`](crate::ContextExtractor), but splits the training
//! log into time-contiguous chunks and extracts them on worker threads:
//!
//! * **Pass one** accumulates per-chunk [`ThresholdTrainer`]s and folds them
//!   with [`ThresholdTrainer::merge`]. The per-sensor means are exact
//!   integer accumulators, so the merged `valueThre` thresholds are
//!   bit-for-bit the serial ones regardless of chunking.
//! * **Pass two** runs one [`ChunkExtractor`] per chunk of consecutive
//!   windows, producing a [`PartialModel`] with chunk-local group ids.
//!   [`merge_partials`] then replays the chunks in time order: group states
//!   are assigned global ids in first-seen-in-time order (exactly the serial
//!   assignment), transition counts are remapped through the local→global
//!   id map, and the one transition that crosses each chunk boundary — last
//!   window of chunk *k* to first window of chunk *k+1* — is stitched in
//!   explicitly.
//!
//! The result is **bit-identical** to the serial extractor: same group ids,
//! same counts, same serialized bytes (`tests/properties.rs` proves this
//! property over random logs and chunkings).
//
// lint-src: allow-file(wall-clock) — the Instant reads time chunk/merge
// phases for telemetry only; the trained model is clock-independent.

use std::time::Instant;

use dice_telemetry::{saturating_ns, Telemetry};
use dice_types::{ActuatorId, DeviceRegistry, Event, EventLog, GroupId, TimeDelta, Timestamp};
use rayon::prelude::*;

use crate::binarize::{BinarizeScratch, Binarizer, ThresholdTrainer, WindowObservation};
use crate::config::DiceConfig;
use crate::error::DiceError;
use crate::groups::GroupTable;
use crate::layout::BitLayout;
use crate::model::DiceModel;
use crate::transition::TransitionModel;

/// The window tiling a training run extracts: `count` windows of `duration`
/// starting at `origin`, optionally clipped to end no later than `clip`.
#[derive(Debug, Clone, Copy)]
struct WindowPlan {
    origin: Timestamp,
    duration: TimeDelta,
    count: u64,
    clip: Option<Timestamp>,
}

impl WindowPlan {
    /// Start and (exclusive) end of window `index`.
    fn bounds(&self, index: u64) -> (Timestamp, Timestamp) {
        let start =
            Timestamp::from_secs(self.origin.as_secs() + index as i64 * self.duration.as_secs());
        let mut end = start + self.duration;
        if let Some(clip) = self.clip {
            if clip < end {
                end = clip;
            }
        }
        (start, end)
    }
}

/// The extraction of one chunk of consecutive windows, with chunk-local
/// group ids. Produced by [`ChunkExtractor::finish`], consumed by
/// [`merge_partials`].
#[derive(Debug, Clone)]
pub struct PartialModel {
    groups: GroupTable,
    transitions: TransitionModel,
    first: Option<(GroupId, Vec<ActuatorId>)>,
    last: Option<(GroupId, Vec<ActuatorId>)>,
    windows: u64,
}

impl PartialModel {
    /// The chunk-local group table (ids dense in first-seen-in-chunk order).
    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// The chunk-local transition matrices (group ids are chunk-local).
    pub fn transitions(&self) -> &TransitionModel {
        &self.transitions
    }

    /// Number of windows this chunk observed.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

/// Extracts one time-contiguous chunk of windows into a [`PartialModel`].
///
/// Feed the chunk's windows in time order via
/// [`ChunkExtractor::observe_window`] — the observation logic mirrors
/// [`ModelBuilder::observe_binarized`](crate::ModelBuilder) exactly, except
/// that group ids are chunk-local and the boundary windows are remembered so
/// [`merge_partials`] can stitch the cross-chunk transitions.
#[derive(Debug, Clone)]
pub struct ChunkExtractor<'a> {
    binarizer: &'a Binarizer,
    scratch: BinarizeScratch,
    obs: WindowObservation,
    partial: PartialModel,
}

impl<'a> ChunkExtractor<'a> {
    /// Creates an extractor binarizing against `binarizer`.
    pub fn new(binarizer: &'a Binarizer) -> Self {
        let num_bits = binarizer.layout().num_bits();
        ChunkExtractor {
            binarizer,
            scratch: BinarizeScratch::default(),
            obs: WindowObservation::default(),
            partial: PartialModel {
                groups: GroupTable::new(num_bits),
                transitions: TransitionModel::new(),
                first: None,
                last: None,
                windows: 0,
            },
        }
    }

    /// Observes one window of raw events (must be fed in time order).
    pub fn observe_window(&mut self, start: Timestamp, end: Timestamp, events: &[Event]) {
        let ChunkExtractor {
            binarizer,
            scratch,
            obs,
            partial,
        } = self;
        binarizer.binarize_into(start, end, events, scratch, obs);
        let group = partial.groups.observe(&obs.state);
        if let Some((prev_group, prev_actuators)) = &partial.last {
            partial.transitions.record_g2g(*prev_group, group);
            for &a in &obs.activated_actuators {
                partial.transitions.record_g2a(*prev_group, a);
            }
            for &a in prev_actuators {
                partial.transitions.record_a2g(a, group);
            }
        }
        if partial.first.is_none() {
            partial.first = Some((group, obs.activated_actuators.clone()));
        }
        partial.last = Some((group, obs.activated_actuators.clone()));
        partial.windows += 1;
    }

    /// Finalizes the chunk.
    pub fn finish(self) -> PartialModel {
        self.partial
    }
}

/// Merges per-chunk [`PartialModel`]s (in time order) into one
/// [`DiceModel`], bit-identical to a serial extraction over the same
/// windows.
///
/// Group states are inserted into the global table chunk by chunk, in each
/// chunk's local-id order; because local ids are first-occurrence order
/// *within* the chunk, this reproduces the serial first-occurrence-in-time
/// assignment. Transition counts are remapped through the local→global map,
/// and the transition across each chunk boundary (last window of one chunk
/// to first window of the next) is stitched in the same way
/// [`ModelBuilder`](crate::ModelBuilder) records consecutive windows.
/// Chunks that observed no window are skipped, carrying the previous
/// chunk's boundary across.
///
/// # Errors
///
/// Returns [`DiceError::EmptyTrainingData`] if no chunk observed a window.
pub fn merge_partials(
    config: DiceConfig,
    binarizer: Binarizer,
    num_actuators: usize,
    partials: &[PartialModel],
) -> Result<DiceModel, DiceError> {
    merge_partials_inner(
        config,
        binarizer,
        num_actuators,
        partials,
        &Telemetry::global(),
    )
}

fn merge_partials_inner(
    config: DiceConfig,
    binarizer: Binarizer,
    num_actuators: usize,
    partials: &[PartialModel],
    telemetry: &Telemetry,
) -> Result<DiceModel, DiceError> {
    let merge_started = Instant::now();
    let mut groups = GroupTable::new(binarizer.layout().num_bits());
    let mut transitions = TransitionModel::new();
    let mut windows = 0u64;
    let mut prev: Option<(GroupId, &[ActuatorId])> = None;
    for partial in partials {
        if partial.windows == 0 {
            continue;
        }
        let map = groups.merge(&partial.groups);
        transitions.merge_mapped(&partial.transitions, &map);
        let (first_group, first_actuators) = partial
            .first
            .as_ref()
            .expect("a chunk with windows has a first window");
        let mapped_first = map[first_group.index()];
        if let Some((prev_group, prev_actuators)) = prev {
            transitions.record_g2g(prev_group, mapped_first);
            for &a in first_actuators {
                transitions.record_g2a(prev_group, a);
            }
            for &a in prev_actuators {
                transitions.record_a2g(a, mapped_first);
            }
        }
        let (last_group, last_actuators) = partial
            .last
            .as_ref()
            .expect("a chunk with windows has a last window");
        prev = Some((map[last_group.index()], last_actuators));
        windows += partial.windows;
    }
    if windows == 0 {
        return Err(DiceError::EmptyTrainingData);
    }
    #[cfg(debug_assertions)]
    {
        let parts: Vec<&GroupTable> = partials.iter().map(PartialModel::groups).collect();
        let findings = crate::invariants::check_group_merge(&groups, &parts);
        debug_assert!(
            findings.is_empty(),
            "merge broke conservation: {findings:?}"
        );
    }
    if let Some(recorder) = telemetry.recorder() {
        recorder
            .metrics
            .train
            .merge_ns
            .record(saturating_ns(merge_started.elapsed().as_nanos()));
    }
    Ok(DiceModel::from_parts(
        config,
        binarizer,
        groups,
        transitions,
        num_actuators,
        windows,
    ))
}

/// Splits `n` items into `chunks` contiguous `(lo, hi)` ranges in order;
/// the first `n % chunks` ranges take the remainder. Ranges may be empty
/// when `n < chunks`.
fn split_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut lo = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Deterministic parallel context extraction.
///
/// A drop-in for [`ContextExtractor`](crate::ContextExtractor) that chunks
/// both precomputation passes across worker threads and merges the partial
/// results into a model that is bit-identical to the serial one.
///
/// # Example
///
/// ```
/// use dice_core::{ContextExtractor, DiceConfig, ParallelTrainer};
/// use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
///
/// # fn main() -> Result<(), dice_core::DiceError> {
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let mut log = EventLog::new();
/// for minute in 0..60 {
///     log.push_sensor(SensorReading::new(
///         motion,
///         Timestamp::from_mins(minute),
///         (minute % 2 == 0).into(),
///     ));
/// }
/// let config = DiceConfig::default();
/// let parallel = ParallelTrainer::new(config.clone())
///     .with_chunks(4)
///     .extract(&reg, &mut log.clone())?;
/// let serial = ContextExtractor::new(config).extract(&reg, &mut log)?;
/// assert_eq!(parallel, serial);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTrainer {
    config: DiceConfig,
    chunks: Option<usize>,
    telemetry: Telemetry,
}

impl ParallelTrainer {
    /// Creates a trainer with the given configuration. The chunk count
    /// defaults to the worker-thread count, and telemetry to
    /// [`Telemetry::global`].
    pub fn new(config: DiceConfig) -> Self {
        ParallelTrainer {
            config,
            chunks: None,
            telemetry: Telemetry::global(),
        }
    }

    /// Overrides the number of chunks the log is split into. Any positive
    /// count yields the same model; more chunks than windows leaves the
    /// excess chunks empty.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is zero.
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        assert!(chunks > 0, "chunk count must be positive");
        self.chunks = Some(chunks);
        self
    }

    /// Routes training telemetry to `telemetry` instead of the global sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn chunk_count(&self) -> usize {
        self.chunks
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }

    /// Runs the full precomputation over `log`, tiling windows exactly like
    /// [`ContextExtractor::extract`](crate::ContextExtractor::extract):
    /// windows of `config.window()` from the first event's aligned-down
    /// timestamp through the last event.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::NoSensors`] for an empty registry and
    /// [`DiceError::EmptyTrainingData`] for an empty log.
    pub fn extract(
        &self,
        registry: &DeviceRegistry,
        log: &mut EventLog,
    ) -> Result<DiceModel, DiceError> {
        if registry.num_sensors() == 0 {
            return Err(DiceError::NoSensors);
        }
        let (Some(first), Some(last)) = (log.start(), log.end()) else {
            return Err(DiceError::EmptyTrainingData);
        };
        let duration = self.config.window();
        let origin = first.align_down(duration);
        let count = (last - origin).as_secs().div_euclid(duration.as_secs()) as u64 + 1;
        let plan = WindowPlan {
            origin,
            duration,
            count,
            clip: None,
        };
        self.run(registry, log.events(), plan)
    }

    /// Runs the full precomputation over the windows tiling `[from, to)`,
    /// exactly like feeding `log.windows_between(from, to, window)` to a
    /// [`ModelBuilder`](crate::ModelBuilder). Unlike
    /// [`ParallelTrainer::extract`], an empty log is allowed: every window
    /// is observed as the all-quiet state (the partitioned trainer relies
    /// on this so silent partitions still learn their silent context).
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::NoSensors`] for an empty registry.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    pub fn extract_between(
        &self,
        registry: &DeviceRegistry,
        log: &mut EventLog,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<DiceModel, DiceError> {
        if registry.num_sensors() == 0 {
            return Err(DiceError::NoSensors);
        }
        assert!(from < to, "window range must be non-empty");
        let duration = self.config.window();
        let span = (to - from).as_secs();
        let count = span.div_euclid(duration.as_secs()) as u64
            + u64::from(span.rem_euclid(duration.as_secs()) != 0);
        let plan = WindowPlan {
            origin: from,
            duration,
            count,
            clip: Some(to),
        };
        self.run(registry, log.events(), plan)
    }

    fn run(
        &self,
        registry: &DeviceRegistry,
        events: &[Event],
        plan: WindowPlan,
    ) -> Result<DiceModel, DiceError> {
        let wall_started = Instant::now();
        let chunks = self.chunk_count();

        // Pass 1: per-chunk threshold accumulation, merged exactly.
        let trained: Vec<(ThresholdTrainer, u64)> = split_ranges(events.len(), chunks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let chunk_started = Instant::now();
                let mut trainer = ThresholdTrainer::new(registry);
                for event in &events[lo..hi] {
                    trainer.observe(event);
                }
                (trainer, saturating_ns(chunk_started.elapsed().as_nanos()))
            })
            .collect();
        let mut busy_ns = 0u64;
        let mut trainer = ThresholdTrainer::new(registry);
        for (partial, ns) in &trained {
            trainer.merge(partial);
            busy_ns += ns;
        }
        let binarizer = Binarizer::new(BitLayout::for_registry(registry), trainer.finish());

        // Pass 2: per-chunk window extraction with chunk-local group ids.
        let extracted: Vec<(PartialModel, u64)> = split_ranges(plan.count as usize, chunks)
            .into_par_iter()
            .map(|(lo, hi)| {
                let chunk_started = Instant::now();
                let mut extractor = ChunkExtractor::new(&binarizer);
                if lo < hi {
                    let (chunk_start, _) = plan.bounds(lo as u64);
                    let mut cursor = events.partition_point(|e| e.at() < chunk_start);
                    for index in lo..hi {
                        let (start, end) = plan.bounds(index as u64);
                        let begin = cursor;
                        while cursor < events.len() && events[cursor].at() < end {
                            cursor += 1;
                        }
                        extractor.observe_window(start, end, &events[begin..cursor]);
                    }
                }
                (
                    extractor.finish(),
                    saturating_ns(chunk_started.elapsed().as_nanos()),
                )
            })
            .collect();
        let mut partials = Vec::with_capacity(extracted.len());
        for (partial, ns) in extracted {
            busy_ns += ns;
            partials.push(partial);
        }

        let model = merge_partials_inner(
            self.config.clone(),
            binarizer,
            registry.num_actuators(),
            &partials,
            &self.telemetry,
        )?;
        if let Some(recorder) = self.telemetry.recorder() {
            let train = &recorder.metrics.train;
            train.windows_total.add(model.training_windows());
            train.chunks_total.add(chunks as u64);
            train.worker_busy_ns.add(busy_ns);
            train
                .wall_ns
                .add(saturating_ns(wall_started.elapsed().as_nanos()));
            train.workers.set_max(rayon::current_num_threads() as i64);
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{ContextExtractor, ModelBuilder};
    use dice_types::{ActuatorEvent, ActuatorKind, Room, SensorKind, SensorReading};

    fn mixed_home() -> (
        DeviceRegistry,
        dice_types::SensorId,
        dice_types::SensorId,
        dice_types::ActuatorId,
    ) {
        let mut reg = DeviceRegistry::new();
        let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let temp = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let bulb = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        (reg, motion, temp, bulb)
    }

    fn mixed_log(
        motion: dice_types::SensorId,
        temp: dice_types::SensorId,
        bulb: dice_types::ActuatorId,
        minutes: i64,
    ) -> EventLog {
        let mut log = EventLog::new();
        for minute in 0..minutes {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(7);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(motion, at, true.into()));
            }
            if minute % 3 != 0 {
                let v = 18.0 + (minute % 7) as f64 + 0.1 * (minute % 13) as f64;
                log.push_sensor(SensorReading::new(temp, at, v.into()));
                log.push_sensor(SensorReading::new(
                    temp,
                    at + TimeDelta::from_secs(20),
                    (v + 0.3).into(),
                ));
            }
            if minute % 5 == 0 {
                log.push_actuator(ActuatorEvent::new(bulb, at, true));
            }
        }
        log
    }

    #[test]
    fn parallel_extract_matches_serial_for_any_chunking() {
        let (reg, motion, temp, bulb) = mixed_home();
        let log = mixed_log(motion, temp, bulb, 40);
        let serial = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log.clone())
            .unwrap();
        for chunks in [1, 2, 3, 4, 7, 40, 60] {
            let parallel = ParallelTrainer::new(DiceConfig::default())
                .with_chunks(chunks)
                .extract(&reg, &mut log.clone())
                .unwrap();
            assert_eq!(parallel, serial, "chunks={chunks}");
        }
    }

    #[test]
    fn extract_between_matches_the_serial_builder() {
        let (reg, motion, temp, bulb) = mixed_home();
        let config = DiceConfig::default();
        let mut log = mixed_log(motion, temp, bulb, 30);
        let from = Timestamp::ZERO;
        let to = Timestamp::from_mins(30) + TimeDelta::from_secs(30); // forces a clipped last window
        let mut trainer = ThresholdTrainer::new(&reg);
        for event in log.events() {
            trainer.observe(event);
        }
        let mut builder = ModelBuilder::new(config.clone(), &reg, trainer.finish()).unwrap();
        for window in log.windows_between(from, to, config.window()) {
            builder.observe_window(window.start, window.end, window.events);
        }
        let serial = builder.finish().unwrap();
        for chunks in [1, 3, 8] {
            let parallel = ParallelTrainer::new(config.clone())
                .with_chunks(chunks)
                .extract_between(&reg, &mut log, from, to)
                .unwrap();
            assert_eq!(parallel, serial, "chunks={chunks}");
        }
    }

    #[test]
    fn extract_between_trains_silent_context_from_an_empty_log() {
        let (reg, ..) = mixed_home();
        let mut log = EventLog::new();
        let model = ParallelTrainer::new(DiceConfig::default())
            .with_chunks(2)
            .extract_between(&reg, &mut log, Timestamp::ZERO, Timestamp::from_mins(5))
            .unwrap();
        assert_eq!(model.training_windows(), 5);
        assert_eq!(model.groups().len(), 1, "only the all-quiet state");
    }

    #[test]
    fn extract_rejects_empty_inputs_like_the_serial_extractor() {
        let (reg, ..) = mixed_home();
        let trainer = ParallelTrainer::new(DiceConfig::default());
        assert_eq!(
            trainer.extract(&reg, &mut EventLog::new()).unwrap_err(),
            DiceError::EmptyTrainingData
        );
        let empty_reg = DeviceRegistry::new();
        assert_eq!(
            trainer
                .extract(&empty_reg, &mut EventLog::new())
                .unwrap_err(),
            DiceError::NoSensors
        );
    }

    #[test]
    fn merge_partials_rejects_all_empty_chunks() {
        let (reg, ..) = mixed_home();
        let binarizer = Binarizer::new(
            BitLayout::for_registry(&reg),
            ThresholdTrainer::new(&reg).finish(),
        );
        let partials = vec![
            ChunkExtractor::new(&binarizer).finish(),
            ChunkExtractor::new(&binarizer).finish(),
        ];
        let err = merge_partials(DiceConfig::default(), binarizer, 1, &partials);
        assert_eq!(err.unwrap_err(), DiceError::EmptyTrainingData);
    }

    #[test]
    fn split_ranges_tiles_exactly_and_allows_empty_chunks() {
        assert_eq!(split_ranges(5, 2), vec![(0, 3), (3, 5)]);
        assert_eq!(split_ranges(2, 4), vec![(0, 1), (1, 2), (2, 2), (2, 2)]);
        assert_eq!(split_ranges(0, 3), vec![(0, 0), (0, 0), (0, 0)]);
        let ranges = split_ranges(103, 7);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 103);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "ranges must tile contiguously");
        }
    }

    #[test]
    fn training_telemetry_counts_windows_chunks_and_merge() {
        let (reg, motion, temp, bulb) = mixed_home();
        let mut log = mixed_log(motion, temp, bulb, 20);
        let telemetry = Telemetry::recording();
        let model = ParallelTrainer::new(DiceConfig::default())
            .with_chunks(4)
            .with_telemetry(telemetry.clone())
            .extract(&reg, &mut log)
            .unwrap();
        let snapshot = telemetry.snapshot().unwrap();
        assert_eq!(
            snapshot.counter("dice_train_windows_total"),
            Some(model.training_windows())
        );
        assert_eq!(snapshot.counter("dice_train_chunks_total"), Some(4));
        let (merges, _) = snapshot.histogram("dice_train_merge_ns").unwrap();
        assert_eq!(merges, 1);
        let recorder = telemetry.recorder().unwrap();
        assert!(recorder.metrics.train.workers.get() >= 1);
        let utilization = recorder.metrics.train.worker_utilization();
        assert!((0.0..=1.0).contains(&utilization), "got {utilization}");
    }
}
