//! The online DICE engine: the real-time phase as a window-at-a-time state
//! machine.
//!
//! The engine glues the pieces of Figure 3.2's right half together: each
//! window is binarized, checked (correlation then transition), and — once a
//! violation is detected — the identification step repeats over subsequent
//! windows, intersecting probable-fault sets until at most `numThre` devices
//! remain (Section 3.4).
//
// lint-src: allow-file(wall-clock) — the Instant reads here feed only the
// CostProfile and telemetry span timings; no detection or identification
// decision depends on them.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use dice_telemetry::{saturating_ns, Counter, EngineMetrics, LocalHistogram, Telemetry};
use dice_types::{DeviceId, Event, GroupId, TimeDelta, Timestamp};

use crate::binarize::{BinarizeScratch, WindowObservation};
use crate::detect::{CheckKind, CheckResult, Detector, PrevWindow, TransitionCase};
use crate::groups::Candidate;
use crate::identify::{Identifier, IntersectionTracker};
use crate::model::DiceModel;
use crate::scan::ScanProfile;
use crate::trace::{
    DecisionTrace, FlightRecorder, LineageStamp, SharedTraceSink, TraceOptions, TracePhase,
    TraceTransition, TraceVerdict,
};
use crate::weights::DeviceWeights;

/// The numeric evidence behind a detection: what the triggering check
/// actually measured. Captured on the first violating window regardless of
/// whether tracing is enabled, so it is deterministic engine output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectionDetail {
    /// A correlation violation: no exact group match; the nearest group and
    /// its Hamming distance from the observed state set.
    Correlation {
        /// The nearest candidate group.
        nearest: GroupId,
        /// Hamming distance between the observed state set and `nearest`.
        distance: u32,
    },
    /// A transition violation: the first flagged transition triple with the
    /// probability the model assigned to it and the violation threshold
    /// (flagged because `observed <= threshold`).
    Transition {
        /// The transition triple that was checked.
        case: TransitionCase,
        /// The probability the model assigns to this transition.
        observed: f64,
        /// The violation threshold (the paper's zero-probability rule).
        threshold: f64,
    },
}

/// A completed fault report.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// End of the window in which the first violation was detected.
    pub detected_at: Timestamp,
    /// End of the window in which identification converged.
    pub identified_at: Timestamp,
    /// Which check detected the fault.
    pub detected_by: CheckKind,
    /// The identified faulty devices (at most `numThre` when conclusive).
    pub devices: Vec<DeviceId>,
    /// Whether identification converged below `numThre` (vs hitting the
    /// window budget or firing early on device weights).
    pub conclusive: bool,
    /// Number of windows consumed from detection through identification.
    pub windows_examined: usize,
    /// What the triggering check measured (always captured; deterministic).
    pub detail: Option<DetectionDetail>,
    /// The flight recorder's most recent traces at report time. Empty
    /// unless tracing is enabled; diagnostic provenance, not part of the
    /// report's semantic identity (excluded from `PartialEq`).
    pub evidence: Vec<DecisionTrace>,
    /// Pipeline latency attribution stamped by a fleet shard (where the
    /// wall-clock went from ingest to this verdict). `None` outside the
    /// fleet service; diagnostic provenance like `evidence`, excluded
    /// from `PartialEq`.
    pub lineage: Option<LineageStamp>,
}

/// Equality ignores `evidence` and `lineage`: both are diagnostic
/// provenance, and trace- or stamp-enabled engines must produce equal
/// report streams on identical input.
impl PartialEq for FaultReport {
    fn eq(&self, other: &Self) -> bool {
        self.detected_at == other.detected_at
            && self.identified_at == other.identified_at
            && self.detected_by == other.detected_by
            && self.devices == other.devices
            && self.conclusive == other.conclusive
            && self.windows_examined == other.windows_examined
            && self.detail == other.detail
    }
}

impl FaultReport {
    /// Identification latency: `identified_at - detected_at`.
    pub fn identification_lag(&self) -> TimeDelta {
        self.identified_at - self.detected_at
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault detected at {} by {} check; identified at {}: ",
            self.detected_at, self.detected_by, self.identified_at
        )?;
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        match &self.detail {
            Some(DetectionDetail::Correlation { nearest, distance }) => {
                write!(f, " (nearest group {nearest} at distance {distance})")?;
            }
            Some(DetectionDetail::Transition {
                case,
                observed,
                threshold,
            }) => {
                write!(f, " ({case} = {observed}, threshold {threshold})")?;
            }
            None => {}
        }
        if !self.conclusive {
            write!(f, " (inconclusive)")?;
        }
        Ok(())
    }
}

/// Wall-clock cost accounting for Figure 5.3: time spent in the correlation
/// check (including binarization), the transition check, and identification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostProfile {
    /// Nanoseconds in binarization + correlation check.
    pub correlation_ns: u128,
    /// Nanoseconds in the transition check.
    pub transition_ns: u128,
    /// Nanoseconds in identification.
    pub identification_ns: u128,
    /// Windows processed.
    pub windows: u64,
}

impl CostProfile {
    /// Mean correlation-check time per window, in milliseconds.
    pub fn correlation_ms_per_window(&self) -> f64 {
        self.per_window_ms(self.correlation_ns)
    }

    /// Mean transition-check time per window, in milliseconds.
    pub fn transition_ms_per_window(&self) -> f64 {
        self.per_window_ms(self.transition_ns)
    }

    /// Mean identification time per window, in milliseconds.
    pub fn identification_ms_per_window(&self) -> f64 {
        self.per_window_ms(self.identification_ns)
    }

    /// Mean total time per window, in milliseconds.
    pub fn total_ms_per_window(&self) -> f64 {
        self.per_window_ms(self.correlation_ns + self.transition_ns + self.identification_ns)
    }

    fn per_window_ms(&self, ns: u128) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            ns as f64 / self.windows as f64 / 1e6
        }
    }

    /// Total nanoseconds across all three steps.
    pub fn total_ns(&self) -> u128 {
        self.correlation_ns + self.transition_ns + self.identification_ns
    }

    /// Correlation-check time in whole milliseconds, saturating to `u64`.
    pub fn correlation_millis(&self) -> u64 {
        saturating_millis(self.correlation_ns)
    }

    /// Transition-check time in whole milliseconds, saturating to `u64`.
    pub fn transition_millis(&self) -> u64 {
        saturating_millis(self.transition_ns)
    }

    /// Identification time in whole milliseconds, saturating to `u64`.
    pub fn identification_millis(&self) -> u64 {
        saturating_millis(self.identification_ns)
    }

    /// Total time in whole milliseconds, saturating to `u64`.
    pub fn total_millis(&self) -> u64 {
        saturating_millis(self.total_ns())
    }

    /// Mean total nanoseconds per window, or 0 before any window.
    pub fn mean_ns_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.total_ns() as f64 / self.windows as f64
        }
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &CostProfile) {
        self.correlation_ns += other.correlation_ns;
        self.transition_ns += other.transition_ns;
        self.identification_ns += other.identification_ns;
        self.windows += other.windows;
    }
}

/// What the triggering check measured, for [`FaultReport::detail`]. Cheap
/// (two table lookups at most) and deterministic, so it is computed on
/// every first violation regardless of tracing.
fn detection_detail(model: &DiceModel, result: &CheckResult) -> Option<DetectionDetail> {
    match result {
        CheckResult::Normal { .. } => None,
        CheckResult::CorrelationViolation { candidates } => {
            // `candidates_into` sorts ascending by distance.
            candidates.first().map(|c| DetectionDetail::Correlation {
                nearest: c.group,
                distance: c.distance,
            })
        }
        CheckResult::TransitionViolation { cases, .. } => cases.first().map(|case| {
            let transitions = model.transitions();
            let observed = match *case {
                TransitionCase::G2G { from, to } => transitions.g2g_prob(from, to),
                TransitionCase::G2A { from, actuator } => transitions.g2a_prob(from, actuator),
                TransitionCase::A2G { actuator, to } => transitions.a2g_prob(actuator, to),
            };
            DetectionDetail::Transition {
                case: *case,
                observed,
                threshold: 0.0,
            }
        }),
    }
}

/// Converts a `u128` nanosecond total into whole milliseconds, saturating
/// to `u64` (585 million years of headroom — effectively "never wrong, and
/// never a silent truncation").
fn saturating_millis(ns: u128) -> u64 {
    u64::try_from(ns / 1_000_000).unwrap_or(u64::MAX)
}

/// Optional engine behaviors beyond the paper's defaults.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Device weights for early alarming (Section VI).
    pub weights: DeviceWeights,
    /// If set, a device in the current probable set whose combined weight
    /// reaches this threshold is alarmed immediately.
    pub early_fire_threshold: Option<f64>,
    /// Telemetry sink for per-window counters, latency histograms, and
    /// fault-report events. Defaults to [`Telemetry::global`] (a no-op sink
    /// unless `Telemetry::install_global` ran), so engines constructed
    /// anywhere in the stack report to the process-wide recorder when one
    /// is installed. Never affects detection or identification output.
    pub telemetry: Telemetry,
    /// Decision tracing (flight recorder + optional streaming sink).
    /// Defaults to [`TraceOptions::global`] (disabled unless
    /// `TraceOptions::install_global` ran), mirroring `telemetry`. Never
    /// affects detection or identification output.
    pub trace: TraceOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            weights: DeviceWeights::default(),
            early_fire_threshold: None,
            telemetry: Telemetry::global(),
            trace: TraceOptions::global(),
        }
    }
}

/// Candidate-scan results computed outside the engine for one window, the
/// input to [`DiceEngine::process_window_prescanned`].
///
/// The contract mirrors what the engine's own scan produces: `candidates`
/// must hold every group within the model's candidate distance of the
/// window's state set sorted by `(distance, group)`, or — when none is
/// within the threshold — the nearest group(s). A fleet shard computes this
/// for many homes' ready windows in one batched sweep.
#[derive(Debug, Clone, Copy)]
pub struct WindowPrescan<'a> {
    /// The resolved candidate list for this window's state set.
    pub candidates: &'a [Candidate],
    /// Scan work to attribute to this window in telemetry. Batched callers
    /// typically attribute the whole batch's profile to one window of the
    /// batch and [`ScanProfile::default`] to the rest, keeping process
    /// totals accurate.
    pub profile: ScanProfile,
}

#[derive(Debug, Clone)]
enum Phase {
    Monitoring,
    Identifying {
        detected_at: Timestamp,
        detected_by: CheckKind,
        detail: Option<DetectionDetail>,
        tracker: IntersectionTracker,
        windows_since_detection: usize,
        violations_seen: usize,
    },
}

/// The online detection & identification engine.
///
/// Generic over any handle to a [`DiceModel`] (`&DiceModel`,
/// `Arc<DiceModel>`, `Box<DiceModel>`, ...).
///
/// # Example
///
/// ```
/// use dice_core::{ContextExtractor, DiceConfig, DiceEngine};
/// use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
///
/// # fn main() -> Result<(), dice_core::DiceError> {
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let mut training = EventLog::new();
/// for minute in 0..60 {
///     training.push_sensor(SensorReading::new(
///         motion,
///         Timestamp::from_mins(minute),
///         (minute % 2 == 0).into(),
///     ));
/// }
/// let model = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut training)?;
/// let mut engine = DiceEngine::new(&model);
/// // feed real-time windows with engine.process_window(...)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiceEngine<M: Borrow<DiceModel>> {
    model: M,
    options: EngineOptions,
    phase: Phase,
    prev: Option<PrevWindow>,
    cost: CostProfile,
    /// An unconfirmed detection whose confirmation horizon expired: the
    /// suspected devices and when/how they were first implicated. A later
    /// violation implicating one of the same devices confirms it — slow
    /// faults (a stuck sensor noticed only at context changes) violate
    /// hours apart but always point at the same device, while unrelated
    /// context blips implicate unrelated devices.
    stale: Option<StaleSuspects>,
    /// Reusable window-observation buffer; with `bin_scratch` and
    /// `cand_scratch` it makes the steady-state window path allocation-free.
    obs_scratch: WindowObservation,
    bin_scratch: BinarizeScratch,
    cand_scratch: Vec<Candidate>,
    /// Local batching buffers for the every-window metrics; `None` when
    /// telemetry is disabled.
    tel_batch: Option<TelBatch>,
    /// Flight recorder + sink; `None` when tracing is disabled, making the
    /// disabled path a single branch per window.
    tracer: Option<Tracer>,
}

/// Engine-local telemetry buffers for the metrics touched on every window
/// (the three latency histograms plus the windows / main-group-hit
/// counters): the hot path does plain integer bumps, published every
/// [`TelBatch::FLUSH_EVERY`] windows, at stream boundaries, and on drop.
/// Rare-path metrics (violations, scan stats, reports) stay immediate.
#[derive(Debug)]
struct TelBatch {
    corr_ns: LocalHistogram,
    trans_ns: LocalHistogram,
    ident_ns: LocalHistogram,
    /// Per-check latency quantile sketch, buffered like the histograms —
    /// four direct sketch records per window measured as ~5% of replay
    /// time on hosts with slow atomic read-modify-writes.
    check_ns: dice_telemetry::LocalSketch,
    /// Whole-window detection latency quantile sketch, buffered.
    detection_ns: dice_telemetry::LocalSketch,
    windows_total: Arc<dice_telemetry::Counter>,
    main_group_hits_total: Arc<dice_telemetry::Counter>,
    windows_n: u64,
    main_hits_n: u64,
    since_flush: u32,
}

impl TelBatch {
    const FLUSH_EVERY: u32 = 1024;

    fn new(metrics: &EngineMetrics) -> Self {
        TelBatch {
            corr_ns: LocalHistogram::new(Arc::clone(&metrics.correlation_check_ns)),
            trans_ns: LocalHistogram::new(Arc::clone(&metrics.transition_check_ns)),
            ident_ns: LocalHistogram::new(Arc::clone(&metrics.identification_ns)),
            check_ns: dice_telemetry::LocalSketch::new(Arc::clone(&metrics.check_ns)),
            detection_ns: dice_telemetry::LocalSketch::new(Arc::clone(&metrics.detection_ns)),
            windows_total: Arc::clone(&metrics.windows_total),
            main_group_hits_total: Arc::clone(&metrics.main_group_hits_total),
            windows_n: 0,
            main_hits_n: 0,
            since_flush: 0,
        }
    }

    fn flush(&mut self) {
        self.corr_ns.flush();
        self.trans_ns.flush();
        self.ident_ns.flush();
        self.check_ns.flush();
        self.detection_ns.flush();
        if self.windows_n > 0 {
            self.windows_total.add(self.windows_n);
            self.windows_n = 0;
        }
        if self.main_hits_n > 0 {
            self.main_group_hits_total.add(self.main_hits_n);
            self.main_hits_n = 0;
        }
        self.since_flush = 0;
    }
}

impl Clone for TelBatch {
    /// A clone starts with empty buffers against the same shared metrics:
    /// buffered samples belong to the engine that measured them.
    fn clone(&self) -> Self {
        TelBatch {
            corr_ns: LocalHistogram::new(Arc::clone(self.corr_ns.shared())),
            trans_ns: LocalHistogram::new(Arc::clone(self.trans_ns.shared())),
            ident_ns: LocalHistogram::new(Arc::clone(self.ident_ns.shared())),
            check_ns: dice_telemetry::LocalSketch::new(Arc::clone(self.check_ns.shared())),
            detection_ns: dice_telemetry::LocalSketch::new(Arc::clone(self.detection_ns.shared())),
            windows_total: Arc::clone(&self.windows_total),
            main_group_hits_total: Arc::clone(&self.main_group_hits_total),
            windows_n: 0,
            main_hits_n: 0,
            since_flush: 0,
        }
    }
}

impl Drop for TelBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

#[derive(Debug, Clone)]
struct StaleSuspects {
    detected_at: Timestamp,
    detected_by: CheckKind,
    detail: Option<DetectionDetail>,
    devices: std::collections::BTreeSet<DeviceId>,
}

/// Per-engine tracing state: the flight recorder plus the knobs and sinks
/// from [`TraceOptions`]. `None` on the engine when tracing is disabled, so
/// the steady-state cost of "off" is one `Option` discriminant check.
struct Tracer {
    recorder: FlightRecorder,
    top_k: usize,
    snapshot_last: usize,
    sink: Option<SharedTraceSink>,
    records_total: Option<Arc<Counter>>,
    ring_dropped_total: Option<Arc<Counter>>,
}

impl Tracer {
    fn new(options: &TraceOptions, telemetry: &Telemetry) -> Self {
        let trace_metrics = telemetry.recorder().map(|r| &r.metrics.trace);
        Tracer {
            recorder: FlightRecorder::new(options.capacity),
            top_k: options.top_k,
            snapshot_last: options.snapshot_last,
            sink: options.sink.clone(),
            records_total: trace_metrics.map(|m| Arc::clone(&m.records_total)),
            ring_dropped_total: trace_metrics.map(|m| Arc::clone(&m.ring_dropped_total)),
        }
    }

    /// Records one window's decision into a (recycled) ring slot; on the
    /// rare report path, additionally snapshots the newest traces into the
    /// report as evidence. Allocation-free at steady state: the slot's
    /// buffers are reused and every probability below is a table lookup.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        model: &DiceModel,
        prev: Option<&PrevWindow>,
        obs: &WindowObservation,
        result: &CheckResult,
        start: Timestamp,
        end: Timestamp,
        phase_before: TracePhase,
        phase_after: TracePhase,
        report: Option<&mut FaultReport>,
    ) {
        let transitions = model.transitions();
        let min_support = model.config().min_row_support().max(1);
        let top_k = self.top_k;
        let dropped_before = self.recorder.dropped();
        let (reported, conclusive) = report
            .as_ref()
            .map_or((false, false), |r| (true, r.conclusive));
        self.recorder.record_with(|seq, slot| {
            slot.reset();
            slot.window = seq;
            slot.start = start;
            slot.end = end;
            slot.bits = obs.state.len();
            slot.ones = obs.state.count_ones();
            slot.state_words.extend_from_slice(obs.state.as_words());
            match result {
                CheckResult::Normal { group } => {
                    slot.main_group = Some(*group);
                    slot.verdict = TraceVerdict::Normal;
                    // Context: the G2G row the transition check consulted.
                    if let Some(prev) = prev.filter(|p| p.exact) {
                        slot.transitions.push(TraceTransition {
                            case: TransitionCase::G2G {
                                from: prev.group,
                                to: *group,
                            },
                            observed: transitions.g2g_prob(prev.group, *group),
                            threshold: 0.0,
                            support: transitions.g2g_row_support(prev.group),
                            min_support,
                        });
                    }
                }
                CheckResult::CorrelationViolation { candidates } => {
                    slot.verdict = TraceVerdict::Correlation;
                    for c in candidates.iter().take(top_k) {
                        slot.candidates.push((c.group, c.distance));
                    }
                    // `candidates_into` sorts ascending by distance, so the
                    // first candidate is the nearest group.
                    if let Some(c) = candidates.first() {
                        slot.nearest = Some((c.group, c.distance));
                        slot.nearest_state
                            .extend_from_slice(model.groups().state(c.group).as_words());
                    }
                }
                CheckResult::TransitionViolation { group, cases } => {
                    slot.main_group = Some(*group);
                    slot.verdict = TraceVerdict::Transition;
                    for case in cases {
                        let (observed, support) = match *case {
                            TransitionCase::G2G { from, to } => (
                                transitions.g2g_prob(from, to),
                                transitions.g2g_row_support(from),
                            ),
                            TransitionCase::G2A { from, actuator } => (
                                transitions.g2a_prob(from, actuator),
                                transitions.g2g_row_support(from),
                            ),
                            TransitionCase::A2G { actuator, to } => (
                                transitions.a2g_prob(actuator, to),
                                transitions.a2g_row_total(actuator),
                            ),
                        };
                        slot.transitions.push(TraceTransition {
                            case: *case,
                            observed,
                            threshold: 0.0,
                            support,
                            min_support,
                        });
                    }
                }
            }
            slot.phase_before = phase_before;
            slot.phase_after = phase_after;
            slot.reported = reported;
            slot.conclusive = conclusive;
        });
        if let Some(counter) = &self.records_total {
            counter.inc();
        }
        if self.recorder.dropped() > dropped_before {
            if let Some(counter) = &self.ring_dropped_total {
                counter.inc();
            }
        }
        if let Some(sink) = &self.sink {
            if let (Some(trace), Ok(mut guard)) = (self.recorder.latest(), sink.lock()) {
                guard.record(model.layout(), trace);
            }
        }
        if let Some(report) = report {
            report.evidence = self.recorder.last_n(self.snapshot_last);
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("recorder", &self.recorder)
            .field("top_k", &self.top_k)
            .field("snapshot_last", &self.snapshot_last)
            .field("sink", &self.sink.as_ref().map(|_| "..."))
            .finish_non_exhaustive()
    }
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            recorder: self.recorder.clone(),
            top_k: self.top_k,
            snapshot_last: self.snapshot_last,
            sink: self.sink.clone(),
            records_total: self.records_total.clone(),
            ring_dropped_total: self.ring_dropped_total.clone(),
        }
    }
}

impl<M: Borrow<DiceModel>> DiceEngine<M> {
    /// Creates an engine with default options.
    pub fn new(model: M) -> Self {
        Self::with_options(model, EngineOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(model: M, options: EngineOptions) -> Self {
        if let Some(recorder) = options.telemetry.recorder() {
            // Publish the model's layout fingerprint so telemetry snapshots
            // are checkable against the model/trace artifacts they were
            // recorded with (dice-lint's cross-artifact mode).
            recorder
                .metrics
                .engine
                .model_layout_fingerprint
                .set(crate::fingerprint::gauge_value(
                    model.borrow().layout().fingerprint(),
                ));
            // And which SIMD kernel the scan index dispatched to, so a
            // snapshot records the hardware path its scan counters came from.
            recorder
                .metrics
                .engine
                .scan_backend
                .set(model.borrow().scan().backend().gauge_value());
        }
        let tel_batch = options
            .telemetry
            .recorder()
            .map(|r| TelBatch::new(&r.metrics.engine));
        let tracer = options
            .trace
            .enabled
            .then(|| Tracer::new(&options.trace, &options.telemetry));
        DiceEngine {
            model,
            options,
            phase: Phase::Monitoring,
            prev: None,
            cost: CostProfile::default(),
            stale: None,
            obs_scratch: WindowObservation::default(),
            bin_scratch: BinarizeScratch::default(),
            cand_scratch: Vec::new(),
            tel_batch,
            tracer,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &DiceModel {
        self.model.borrow()
    }

    /// The SIMD backend the model's candidate-scan index dispatches to.
    pub fn scan_backend(&self) -> crate::ScanBackend {
        self.model.borrow().scan().backend()
    }

    /// Accumulated wall-clock cost profile.
    pub fn cost_profile(&self) -> CostProfile {
        self.cost
    }

    /// Resets phase, previous-window context, and cost accounting.
    pub fn reset(&mut self) {
        self.phase = Phase::Monitoring;
        self.prev = None;
        self.cost = CostProfile::default();
        self.stale = None;
    }

    /// Whether the engine is currently narrowing down a detected fault.
    pub fn is_identifying(&self) -> bool {
        matches!(self.phase, Phase::Identifying { .. })
    }

    /// Flushes a pending identification, e.g. at the end of a replayed
    /// segment: if a violation was detected but the probable-device
    /// intersection has not narrowed below `numThre` yet, the current
    /// intersection is reported as inconclusive.
    pub fn flush(&mut self) -> Option<FaultReport> {
        if let Some(batch) = self.tel_batch.as_mut() {
            batch.flush();
        }
        let confirm = self.model.borrow().config().confirmation_violations();
        let phase = std::mem::replace(&mut self.phase, Phase::Monitoring);
        match phase {
            Phase::Monitoring => None,
            Phase::Identifying {
                detected_at,
                detected_by,
                detail,
                tracker,
                windows_since_detection,
                violations_seen,
            } => {
                if violations_seen < confirm {
                    return None; // unconfirmed blip
                }
                let devices = tracker.current().cloned().unwrap_or_default();
                let mut report = FaultReport {
                    detected_at,
                    identified_at: detected_at,
                    detected_by,
                    devices: devices.into_iter().collect(),
                    conclusive: false,
                    windows_examined: windows_since_detection,
                    detail,
                    evidence: Vec::new(),
                    lineage: None,
                };
                if let Some(tracer) = self.tracer.as_ref() {
                    report.evidence = tracer.recorder.last_n(tracer.snapshot_last);
                }
                Some(report)
            }
        }
    }

    /// Processes one window of raw events; returns a report when
    /// identification completes in this window.
    pub fn process_window(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
    ) -> Option<FaultReport> {
        self.process_window_impl(start, end, events, None)
    }

    /// [`DiceEngine::process_window`] with the candidate scan already
    /// resolved: the caller ran this window's state set through a batched
    /// scan (see [`RoutedScanIndex::candidates_batch_into`]
    /// (crate::RoutedScanIndex::candidates_batch_into)) and hands the result
    /// in, so the engine skips its own per-window scan. Everything else —
    /// binarization, the checks, identification — is bit-identical to the
    /// unbatched path.
    ///
    /// The prescan is consulted only when the window fails the correlation
    /// check; for an exact-match window it is ignored, so a caller may
    /// prescan conservatively.
    pub fn process_window_prescanned(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
        prescan: WindowPrescan<'_>,
    ) -> Option<FaultReport> {
        self.process_window_impl(start, end, events, Some(prescan))
    }

    fn process_window_impl(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
        prescan: Option<WindowPrescan<'_>>,
    ) -> Option<FaultReport> {
        let model = self.model.borrow();

        // Binarization + correlation check, both into engine-owned scratch:
        // a steady-state window touches no allocator.
        let t0 = Instant::now();
        let mut obs = std::mem::take(&mut self.obs_scratch);
        model
            .binarizer()
            .binarize_into(start, end, events, &mut self.bin_scratch, &mut obs);
        let detector = Detector::new(model);
        let mut scan_profile = ScanProfile::default();
        let result = match detector.correlation_check(&obs) {
            None => {
                let mut candidates = std::mem::take(&mut self.cand_scratch);
                if let Some(pre) = prescan {
                    candidates.clear();
                    candidates.extend_from_slice(pre.candidates);
                    scan_profile = pre.profile;
                } else {
                    scan_profile = model.scan().candidates_into(
                        &obs.state,
                        model.candidate_distance(),
                        &mut candidates,
                    );
                    if candidates.is_empty() {
                        // Nothing within the threshold: substitute the
                        // nearest group(s) once, here. Identification and
                        // the previous-window summary both consume this
                        // list, where each used to rescan the whole table
                        // on its own.
                        let fallback = model.scan().nearest_into(&obs.state, &mut candidates);
                        scan_profile.absorb(fallback);
                    }
                }
                CheckResult::CorrelationViolation { candidates }
            }
            Some(group) => {
                let cases = match self.prev.as_ref() {
                    Some(prev) => detector.transition_check(prev, group, &obs),
                    None => Vec::new(),
                };
                if cases.is_empty() {
                    CheckResult::Normal { group }
                } else {
                    CheckResult::TransitionViolation { group, cases }
                }
            }
        };
        let t1 = Instant::now();

        // Cost attribution: a `Normal`/`TransitionViolation` outcome passed
        // through the transition check; a correlation violation never got
        // there. The split is approximate (the two checks share one call)
        // but the correlation check dominates by orders of magnitude.
        let corr_ns: u128;
        let mut trans_ns: u128 = 0;
        let mut transition_checked = false;
        match &result {
            CheckResult::CorrelationViolation { .. } => {
                corr_ns = t0.elapsed().as_nanos();
            }
            _ => {
                // Re-measure the transition part alone for attribution.
                let t_trans = Instant::now();
                if let (Some(prev), CheckResult::Normal { group })
                | (Some(prev), CheckResult::TransitionViolation { group, .. }) =
                    (self.prev.as_ref(), &result)
                {
                    let _ = detector.transition_check(prev, *group, &obs);
                    transition_checked = true;
                }
                trans_ns = t_trans.elapsed().as_nanos();
                corr_ns = (t1 - t0).as_nanos();
            }
        }
        self.cost.correlation_ns += corr_ns;
        self.cost.transition_ns += trans_ns;
        self.cost.windows += 1;

        // Identification.
        let phase_before = self.trace_phase();
        let t2 = Instant::now();
        let mut report = self.advance_phase(&obs, &result, end);
        let ident_ns = t2.elapsed().as_nanos();
        self.cost.identification_ns += ident_ns;

        // Decision tracing. Disabled (the default) costs this one branch;
        // enabled refills a recycled ring slot — before `update_prev` so the
        // trace can name the G2G row the transition check consulted.
        if self.tracer.is_some() {
            let phase_after = self.trace_phase();
            let DiceEngine {
                model,
                tracer,
                prev,
                ..
            } = self;
            if let Some(tracer) = tracer.as_mut() {
                tracer.record(
                    (*model).borrow(),
                    prev.as_ref(),
                    &obs,
                    &result,
                    start,
                    end,
                    phase_before,
                    phase_after,
                    report.as_mut(),
                );
            }
        }

        // Update previous-window context for the next round.
        self.update_prev(&obs, &result);

        // Telemetry: pure observation of already-computed values — the
        // nanosecond figures are the same ones `CostProfile` accumulates
        // (one clock, two consumers), and nothing here feeds back into
        // detection or identification.
        if let Some(recorder) = self.options.telemetry.recorder() {
            let m = &recorder.metrics.engine;
            if let Some(batch) = self.tel_batch.as_mut() {
                batch.windows_n += 1;
                batch.corr_ns.record(saturating_ns(corr_ns));
                batch.check_ns.record(saturating_ns(corr_ns));
                if transition_checked {
                    batch.trans_ns.record(saturating_ns(trans_ns));
                    batch.check_ns.record(saturating_ns(trans_ns));
                }
                batch.ident_ns.record(saturating_ns(ident_ns));
                batch.check_ns.record(saturating_ns(ident_ns));
                batch
                    .detection_ns
                    .record(saturating_ns(corr_ns + trans_ns + ident_ns));
                match &result {
                    CheckResult::Normal { .. } => batch.main_hits_n += 1,
                    CheckResult::CorrelationViolation { candidates } => {
                        m.correlation_violations_total.inc();
                        m.scan_rows_total.add(u64::from(scan_profile.rows));
                        m.scan_rows_pruned_total.add(u64::from(scan_profile.pruned));
                        m.scan_blocks_total.add(u64::from(scan_profile.blocks));
                        m.scan_early_stops_total
                            .add(u64::from(scan_profile.early_stops));
                        m.scan_candidates_total.add(candidates.len() as u64);
                    }
                    CheckResult::TransitionViolation { cases, .. } => {
                        batch.main_hits_n += 1;
                        m.transition_violations_total.inc();
                        for case in cases {
                            match case {
                                TransitionCase::G2G { .. } => m.transition_cases_g2g_total.inc(),
                                TransitionCase::G2A { .. } => m.transition_cases_g2a_total.inc(),
                                TransitionCase::A2G { .. } => m.transition_cases_a2g_total.inc(),
                            }
                        }
                    }
                }
                batch.since_flush += 1;
                if batch.since_flush >= TelBatch::FLUSH_EVERY {
                    batch.flush();
                }
            }
            if let Some(report) = &report {
                m.reports_total.inc();
                if report.conclusive {
                    m.reports_conclusive_total.inc();
                }
                m.identification_windows
                    .record(report.windows_examined as u64);
                recorder.events.push("fault_report", report.to_string());
            }
        }

        // Reclaim the scratch buffers (capacity survives for the next
        // window).
        self.obs_scratch = obs;
        if let CheckResult::CorrelationViolation { candidates } = result {
            self.cand_scratch = candidates;
        }

        report
    }

    /// The identification phase as a trace discriminant.
    fn trace_phase(&self) -> TracePhase {
        match self.phase {
            Phase::Monitoring => TracePhase::Monitoring,
            Phase::Identifying { .. } => TracePhase::Identifying,
        }
    }

    /// Runs the phase state machine for one checked window.
    fn advance_phase(
        &mut self,
        obs: &WindowObservation,
        result: &CheckResult,
        window_end: Timestamp,
    ) -> Option<FaultReport> {
        let model = self.model.borrow();
        let identifier = Identifier::new(model);
        let num_thre = model.config().num_thre();
        let budget = model.config().max_identification_windows();
        let confirm = model.config().confirmation_violations();
        let horizon = model.config().confirmation_horizon_windows();

        let phase = std::mem::replace(&mut self.phase, Phase::Monitoring);
        match phase {
            Phase::Monitoring => {
                let kind = result.violated_check()?;
                let detail = detection_detail(model, result);
                let probable = identifier.probable_devices(self.prev.as_ref(), obs, result);

                // A fresh violation implicating a stale suspect confirms it.
                if let Some(stale) = &self.stale {
                    let overlap: std::collections::BTreeSet<DeviceId> = stale
                        .devices
                        .intersection(&probable.devices)
                        .copied()
                        .collect();
                    if !overlap.is_empty() {
                        // Report evidence credits the original detection.
                        let (detected_at, detected_by, detail) =
                            (stale.detected_at, stale.detected_by, stale.detail);
                        self.stale = None;
                        let mut tracker = IntersectionTracker::new();
                        tracker.feed(&overlap);
                        if tracker.converged(num_thre) {
                            let devices = tracker.current().cloned().unwrap_or_default();
                            return Some(FaultReport {
                                detected_at,
                                identified_at: window_end,
                                detected_by,
                                devices: devices.into_iter().collect(),
                                conclusive: true,
                                windows_examined: 2,
                                detail,
                                evidence: Vec::new(),
                                lineage: None,
                            });
                        }
                        self.phase = Phase::Identifying {
                            detected_at,
                            detected_by,
                            detail,
                            tracker,
                            windows_since_detection: 2,
                            violations_seen: confirm.max(2),
                        };
                        return None;
                    }
                }

                let mut tracker = IntersectionTracker::new();
                tracker.feed(&probable.devices);
                if confirm <= 1 && tracker.converged(num_thre) {
                    // "When there is only one probable group, DICE ends the
                    // identification step" — immediate identification.
                    let devices = tracker.current().cloned().unwrap_or_default();
                    return Some(FaultReport {
                        detected_at: window_end,
                        identified_at: window_end,
                        detected_by: kind,
                        devices: devices.into_iter().collect(),
                        conclusive: true,
                        windows_examined: 1,
                        detail,
                        evidence: Vec::new(),
                        lineage: None,
                    });
                }
                self.phase = Phase::Identifying {
                    detected_at: window_end,
                    detected_by: kind,
                    detail,
                    tracker,
                    windows_since_detection: 1,
                    violations_seen: 1,
                };
                None
            }
            Phase::Identifying {
                detected_at,
                detected_by,
                detail,
                mut tracker,
                mut windows_since_detection,
                mut violations_seen,
            } => {
                windows_since_detection += 1;
                if result.is_violation() {
                    violations_seen += 1;
                    let probable = identifier.probable_devices(self.prev.as_ref(), obs, result);
                    tracker.feed(&probable.devices);
                }

                // An unconfirmed violation that stays quiet for the whole
                // confirmation horizon is stashed: if it was a context blip
                // nothing more happens, but a slow fault will implicate the
                // same devices again later.
                if violations_seen < confirm {
                    if windows_since_detection >= horizon {
                        if let Some(devices) = tracker.current() {
                            self.stale = Some(StaleSuspects {
                                detected_at,
                                detected_by,
                                detail,
                                devices: devices.clone(),
                            });
                        }
                        return None; // back to Monitoring
                    }
                    self.phase = Phase::Identifying {
                        detected_at,
                        detected_by,
                        detail,
                        tracker,
                        windows_since_detection,
                        violations_seen,
                    };
                    return None;
                }

                // Early fire on weighted devices (Section VI).
                if let (Some(threshold), Some(current)) =
                    (self.options.early_fire_threshold, tracker.current())
                {
                    let heavy = self
                        .options
                        .weights
                        .over_threshold(current.iter(), threshold);
                    if !heavy.is_empty() {
                        return Some(FaultReport {
                            detected_at,
                            identified_at: window_end,
                            detected_by,
                            devices: heavy,
                            conclusive: false,
                            windows_examined: windows_since_detection,
                            detail,
                            evidence: Vec::new(),
                            lineage: None,
                        });
                    }
                }

                if tracker.converged(num_thre) {
                    let devices = tracker.current().cloned().unwrap_or_default();
                    return Some(FaultReport {
                        detected_at,
                        identified_at: window_end,
                        detected_by,
                        devices: devices.into_iter().collect(),
                        conclusive: true,
                        windows_examined: windows_since_detection,
                        detail,
                        evidence: Vec::new(),
                        lineage: None,
                    });
                }

                if windows_since_detection >= budget {
                    let devices = tracker.current().cloned().unwrap_or_default();
                    return Some(FaultReport {
                        detected_at,
                        identified_at: window_end,
                        detected_by,
                        devices: devices.into_iter().collect(),
                        conclusive: false,
                        windows_examined: windows_since_detection,
                        detail,
                        evidence: Vec::new(),
                        lineage: None,
                    });
                }

                self.phase = Phase::Identifying {
                    detected_at,
                    detected_by,
                    detail,
                    tracker,
                    windows_since_detection,
                    violations_seen,
                };
                None
            }
        }
    }

    /// Updates the previous-window summary in place: the main group when
    /// matched, else the best candidate as an inexact stand-in. The engine
    /// guarantees a correlation violation's candidate list already contains
    /// the nearest group(s) when the threshold admitted none, so no rescan
    /// happens here.
    fn update_prev(&mut self, obs: &WindowObservation, result: &CheckResult) {
        let (group, exact) = match result {
            CheckResult::Normal { group } | CheckResult::TransitionViolation { group, .. } => {
                (*group, true)
            }
            CheckResult::CorrelationViolation { candidates } => (
                candidates.first().map_or(GroupId::new(0), |c| c.group),
                false,
            ),
        };
        match &mut self.prev {
            Some(prev) => {
                prev.group = group;
                prev.exact = exact;
                prev.activated_actuators.clear();
                prev.activated_actuators
                    .extend_from_slice(&obs.activated_actuators);
            }
            None => {
                self.prev = Some(PrevWindow {
                    group,
                    exact,
                    activated_actuators: obs.activated_actuators.clone(),
                });
            }
        }
    }

    /// Convenience: processes every `config.window()`-sized window of a log,
    /// collecting all reports. Windows are aligned to the log's first event.
    pub fn process_log(&mut self, log: &mut dice_types::EventLog) -> Vec<FaultReport> {
        let duration = self.model.borrow().config().window();
        // Collect windows eagerly to avoid borrowing `log` across `self`.
        let windows: Vec<(Timestamp, Timestamp, Vec<Event>)> = log
            .windows(duration)
            .map(|w| (w.start, w.end, w.events.to_vec()))
            .collect();
        self.process_collected(windows)
    }

    /// Processes every window tiling exactly `[from, to)`, including silent
    /// windows with no events — a quiet home is itself a context, so gaps
    /// must be checked too.
    pub fn process_range(
        &mut self,
        log: &mut dice_types::EventLog,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<FaultReport> {
        let duration = self.model.borrow().config().window();
        let windows: Vec<(Timestamp, Timestamp, Vec<Event>)> = log
            .windows_between(from, to, duration)
            .map(|w| (w.start, w.end, w.events.to_vec()))
            .collect();
        self.process_collected(windows)
    }

    fn process_collected(
        &mut self,
        windows: Vec<(Timestamp, Timestamp, Vec<Event>)>,
    ) -> Vec<FaultReport> {
        let mut reports = Vec::new();
        for (start, end, events) in windows {
            if let Some(report) = self.process_window(start, end, &events) {
                reports.push(report);
            }
        }
        // Publish batched samples at the stream boundary so a snapshot
        // taken right after a replay sees every window.
        if let Some(batch) = self.tel_batch.as_mut() {
            batch.flush();
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiceConfig;
    use crate::extract::ContextExtractor;
    use dice_types::{DeviceRegistry, EventLog, Room, SensorId, SensorKind, SensorReading};

    /// Build a home with three motion sensors where s0+s1 always fire
    /// together every other minute and s2 fires in the off minutes.
    fn training_registry() -> (DeviceRegistry, Vec<SensorId>) {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
        let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
        (reg, vec![s0, s1, s2])
    }

    fn training_log(sensors: &[SensorId], minutes: i64) -> EventLog {
        let mut log = EventLog::new();
        for minute in 0..minutes {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
                log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
            } else {
                log.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        log
    }

    fn trained_model() -> (DiceModel, Vec<SensorId>) {
        let (reg, sensors) = training_registry();
        let mut log = training_log(&sensors, 120);
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        (model, sensors)
    }

    /// Real-time log where s1 fail-stops: s0 fires alone on even minutes.
    fn faulty_log(sensors: &[SensorId], minutes: i64) -> EventLog {
        let mut log = EventLog::new();
        for minute in 0..minutes {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            } else {
                log.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        log
    }

    #[test]
    fn faultless_replay_raises_no_reports() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let mut log = training_log(&sensors, 60);
        let reports = engine.process_log(&mut log);
        assert!(reports.is_empty(), "unexpected reports: {reports:?}");
        assert_eq!(engine.cost_profile().windows, 60);
    }

    #[test]
    fn fail_stop_is_detected_and_identified() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let mut log = faulty_log(&sensors, 30);
        let reports = engine.process_log(&mut log);
        assert!(!reports.is_empty());
        let report = &reports[0];
        assert_eq!(report.detected_by, CheckKind::Correlation);
        assert!(report.conclusive);
        assert_eq!(report.devices, vec![DeviceId::Sensor(sensors[1])]);
        assert!(report.identified_at >= report.detected_at);
    }

    #[test]
    fn detection_happens_within_first_faulty_windows() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let mut log = faulty_log(&sensors, 30);
        let reports = engine.process_log(&mut log);
        // s0-alone appears in the very first window; the correlation check
        // should fire there (detected_at = first window end = 1 min).
        assert_eq!(reports[0].detected_at, Timestamp::from_mins(1));
    }

    #[test]
    fn engine_reset_clears_state() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let mut log = faulty_log(&sensors, 4);
        let _ = engine.process_log(&mut log);
        engine.reset();
        assert!(!engine.is_identifying());
        assert_eq!(engine.cost_profile().windows, 0);
    }

    #[test]
    fn engine_works_with_owned_model_handles() {
        let (model, sensors) = trained_model();
        let arc = std::sync::Arc::new(model);
        let mut engine = DiceEngine::new(std::sync::Arc::clone(&arc));
        let mut log = training_log(&sensors, 10);
        assert!(engine.process_log(&mut log).is_empty());
    }

    #[test]
    fn early_fire_on_heavy_device() {
        let (model, sensors) = trained_model();
        let mut weights = DeviceWeights::new();
        weights.set_criticality(DeviceId::Sensor(sensors[1]), 100.0);
        let options = EngineOptions {
            weights,
            early_fire_threshold: Some(50.0),
            ..EngineOptions::default()
        };
        let mut engine = DiceEngine::with_options(&model, options);
        let mut log = faulty_log(&sensors, 30);
        let reports = engine.process_log(&mut log);
        assert!(!reports.is_empty());
        // The heavy device must appear in the first report.
        assert!(reports[0].devices.contains(&DeviceId::Sensor(sensors[1])));
    }

    #[test]
    fn window_budget_produces_inconclusive_report() {
        let (reg, sensors) = training_registry();
        let mut log = training_log(&sensors, 120);
        let config = DiceConfig::builder().max_identification_windows(3).build();
        let model = ContextExtractor::new(config)
            .extract(&reg, &mut log)
            .unwrap();
        let mut engine = DiceEngine::new(&model);
        // A bizarre state (all three sensors at once) repeats; candidates
        // stay ambiguous, so the budget should force a report.
        let mut weird = EventLog::new();
        for minute in 0..10 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            for &s in &sensors {
                weird.push_sensor(SensorReading::new(s, at, true.into()));
            }
        }
        let reports = engine.process_log(&mut weird);
        assert!(!reports.is_empty());
        assert!(reports.iter().any(|r| !r.conclusive) || reports[0].conclusive);
    }

    #[test]
    fn cost_profile_accumulates_and_averages() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let mut log = training_log(&sensors, 20);
        let _ = engine.process_log(&mut log);
        let cost = engine.cost_profile();
        assert_eq!(cost.windows, 20);
        assert!(cost.correlation_ns > 0);
        assert!(cost.total_ms_per_window() >= cost.correlation_ms_per_window());
        let mut merged = CostProfile::default();
        merged.merge(&cost);
        merged.merge(&cost);
        assert_eq!(merged.windows, 40);
    }

    #[test]
    fn flush_emits_pending_confirmed_identification() {
        let (reg, sensors) = training_registry();
        let mut log = training_log(&sensors, 120);
        // Large numThre never converges -> identification stays pending.
        let config = DiceConfig::builder()
            .num_thre(1)
            .candidate_distance(1)
            .max_identification_windows(10_000)
            .build();
        let model = ContextExtractor::new(config)
            .extract(&reg, &mut log)
            .unwrap();
        let mut engine = DiceEngine::new(&model);
        // Two violating windows (all sensors on) confirm a detection, then
        // quiet known windows keep identification pending.
        let mut live = EventLog::new();
        for minute in 0..2 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            for &s in &sensors {
                live.push_sensor(SensorReading::new(s, at, true.into()));
            }
        }
        let reports = engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(2));
        if reports.is_empty() {
            let flushed = engine.flush().expect("pending identification must flush");
            assert!(!flushed.conclusive);
            assert!(!flushed.devices.is_empty());
        }
        // Flushing twice yields nothing.
        assert!(engine.flush().is_none());
    }

    #[test]
    fn unconfirmed_blip_is_not_flushed() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        // One anomalous window, then normal data for under the horizon.
        let mut live = EventLog::new();
        let at = Timestamp::from_secs(5);
        for &s in &sensors {
            live.push_sensor(SensorReading::new(s, at, true.into()));
        }
        for minute in 1..5 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                live.push_sensor(SensorReading::new(sensors[0], at, true.into()));
                live.push_sensor(SensorReading::new(sensors[1], at, true.into()));
            } else {
                live.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        let reports = engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(5));
        assert!(
            reports.is_empty(),
            "single blip must not report: {reports:?}"
        );
        assert!(engine.flush().is_none(), "unconfirmed blip must not flush");
    }

    #[test]
    fn stale_suspect_is_revived_by_a_later_violation() {
        let (reg, sensors) = training_registry();
        let mut log = training_log(&sensors, 240);
        // Short horizon so the first violation expires quickly.
        let config = DiceConfig::builder()
            .confirmation_horizon_windows(3)
            .build();
        let model = ContextExtractor::new(config)
            .extract(&reg, &mut log)
            .unwrap();
        let mut engine = DiceEngine::new(&model);

        let anomalous = |live: &mut EventLog, minute: i64| {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            // s0 fires alone on an even minute: fail-stop-of-s1 signature.
            live.push_sensor(SensorReading::new(sensors[0], at, true.into()));
        };
        let normal = |live: &mut EventLog, minute: i64| {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                live.push_sensor(SensorReading::new(sensors[0], at, true.into()));
                live.push_sensor(SensorReading::new(sensors[1], at, true.into()));
            } else {
                live.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        };

        let mut live = EventLog::new();
        anomalous(&mut live, 0); // first violation
        for minute in 1..8 {
            normal(&mut live, minute); // horizon (3 windows) expires
        }
        anomalous(&mut live, 8); // same suspect violates again
        for minute in 9..12 {
            normal(&mut live, minute);
        }
        let mut reports =
            engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(12));
        reports.extend(engine.flush());
        assert!(!reports.is_empty(), "stale suspect must confirm on revival");
        let report = &reports[0];
        assert_eq!(report.devices, vec![DeviceId::Sensor(sensors[1])]);
        // Detection credits the original violation.
        assert_eq!(report.detected_at, Timestamp::from_mins(1));
    }

    #[test]
    fn engine_recovers_after_reporting_and_detects_again() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        // First fault, then healthy data, then a second fault.
        let mut live = faulty_log(&sensors, 10);
        let first = engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(10));
        assert!(!first.is_empty());
        let mut healthy = training_log(&sensors, 10);
        // Shift healthy data to minutes 10..20.
        let mut shifted = EventLog::new();
        for e in healthy.events() {
            if let Some(r) = e.as_sensor() {
                shifted.push_sensor(SensorReading::new(
                    r.sensor,
                    r.at + TimeDelta::from_mins(10),
                    r.value,
                ));
            }
        }
        let quiet = engine.process_range(
            &mut shifted,
            Timestamp::from_mins(10),
            Timestamp::from_mins(20),
        );
        assert!(
            quiet.is_empty(),
            "healthy data after a report stays quiet: {quiet:?}"
        );
    }

    #[test]
    fn report_display_mentions_devices() {
        let report = FaultReport {
            detected_at: Timestamp::from_mins(1),
            identified_at: Timestamp::from_mins(3),
            detected_by: CheckKind::Correlation,
            devices: vec![DeviceId::Sensor(SensorId::new(1))],
            conclusive: true,
            windows_examined: 3,
            detail: None,
            evidence: Vec::new(),
            lineage: None,
        };
        let text = report.to_string();
        assert!(text.contains("S1"));
        assert!(text.contains("correlation"));
        assert_eq!(report.identification_lag(), TimeDelta::from_mins(2));
    }

    #[test]
    fn report_display_includes_numeric_evidence() {
        let base = FaultReport {
            detected_at: Timestamp::from_mins(1),
            identified_at: Timestamp::from_mins(3),
            detected_by: CheckKind::Correlation,
            devices: vec![DeviceId::Sensor(SensorId::new(1))],
            conclusive: false,
            windows_examined: 3,
            detail: Some(DetectionDetail::Correlation {
                nearest: GroupId::new(4),
                distance: 2,
            }),
            evidence: Vec::new(),
            lineage: None,
        };
        let text = base.to_string();
        assert!(
            text.contains("nearest group G4 at distance 2"),
            "correlation detail missing: {text}"
        );
        assert!(text.contains("(inconclusive)"), "{text}");

        let transition = FaultReport {
            detected_by: CheckKind::Transition,
            detail: Some(DetectionDetail::Transition {
                case: TransitionCase::G2G {
                    from: GroupId::new(1),
                    to: GroupId::new(4),
                },
                observed: 0.0,
                threshold: 0.0,
            }),
            conclusive: true,
            ..base
        };
        let text = transition.to_string();
        assert!(
            text.contains("P(G4 | G1) = 0, threshold 0"),
            "transition detail missing: {text}"
        );
    }

    #[test]
    fn reports_carry_detail_and_equality_ignores_evidence() {
        let (model, sensors) = trained_model();
        let mut engine = DiceEngine::new(&model);
        let reports = engine.process_log(&mut faulty_log(&sensors, 30));
        assert!(!reports.is_empty());
        let report = &reports[0];
        assert!(
            matches!(
                report.detail,
                Some(DetectionDetail::Correlation { distance, .. }) if distance > 0
            ),
            "correlation-detected report must carry nearest-group detail: {report:?}"
        );
        // Evidence is provenance, not identity.
        let mut with_evidence = report.clone();
        with_evidence.evidence.push(DecisionTrace::default());
        assert_eq!(&with_evidence, report);
    }

    #[test]
    fn tracing_records_windows_and_snapshots_evidence() {
        let (model, sensors) = trained_model();
        let options = EngineOptions {
            trace: TraceOptions::recording(),
            ..EngineOptions::default()
        };
        let mut engine = DiceEngine::with_options(&model, options);
        let reports = engine.process_log(&mut faulty_log(&sensors, 30));
        assert!(!reports.is_empty());
        let report = &reports[0];
        assert!(
            !report.evidence.is_empty(),
            "traced engine must attach evidence"
        );
        // The newest evidence trace is the reporting window itself.
        let last = report.evidence.last().unwrap();
        assert!(last.reported);
        assert_eq!(last.conclusive, report.conclusive);
        assert!(report.evidence.iter().any(|t| t.nearest.is_some()));

        // Disabled tracing produces the same report stream.
        let mut plain = DiceEngine::new(&model);
        let plain_reports = plain.process_log(&mut faulty_log(&sensors, 30));
        assert_eq!(reports, plain_reports);
        assert!(plain_reports.iter().all(|r| r.evidence.is_empty()));
    }

    #[test]
    fn telemetry_observes_outcomes_without_changing_reports() {
        let (model, sensors) = trained_model();
        let telemetry = Telemetry::recording();
        let mut engine = DiceEngine::with_options(
            &model,
            EngineOptions {
                telemetry: telemetry.clone(),
                ..EngineOptions::default()
            },
        );
        let reports = engine.process_log(&mut faulty_log(&sensors, 30));

        let mut baseline = DiceEngine::with_options(
            &model,
            EngineOptions {
                telemetry: Telemetry::noop(),
                ..EngineOptions::default()
            },
        );
        let baseline_reports = baseline.process_log(&mut faulty_log(&sensors, 30));
        assert_eq!(reports, baseline_reports, "telemetry must not alter output");

        let snapshot = telemetry.snapshot().unwrap();
        assert_eq!(
            snapshot.counter("dice_engine_windows_total"),
            Some(engine.cost_profile().windows)
        );
        assert!(
            snapshot
                .counter("dice_engine_correlation_violations_total")
                .unwrap()
                > 0
        );
        assert_eq!(
            snapshot.counter("dice_engine_reports_total"),
            Some(reports.len() as u64)
        );
        // Scan stats: every correlation violation scanned rows (this small
        // model routes row-major, so block counters stay zero), and the
        // snapshot names the dispatched backend.
        assert!(snapshot.counter("dice_engine_scan_rows_total").unwrap() > 0);
        assert_eq!(snapshot.counter("dice_engine_scan_blocks_total"), Some(0));
        assert!(snapshot
            .counter("dice_engine_scan_early_stops_total")
            .is_some());
        assert_eq!(
            snapshot.gauge("dice_engine_scan_backend"),
            Some(engine.scan_backend().gauge_value())
        );
        // The latency histograms see the same windows CostProfile does.
        let (corr_count, corr_sum) = snapshot
            .histogram("dice_engine_correlation_check_ns")
            .unwrap();
        assert_eq!(corr_count, engine.cost_profile().windows);
        assert_eq!(u128::from(corr_sum), engine.cost_profile().correlation_ns);
        // Each report surfaced as a ring event.
        let recorder = telemetry.recorder().unwrap();
        let events = recorder.events.snapshot();
        assert_eq!(events.len(), reports.len());
        assert!(events.iter().all(|e| e.kind == "fault_report"));
    }

    #[test]
    fn cost_profile_saturating_helpers() {
        let cost = CostProfile {
            correlation_ns: 2_500_000,
            transition_ns: 1_000_000,
            identification_ns: u128::from(u64::MAX) * 1_000_000 + 999_999,
            windows: 2,
        };
        assert_eq!(cost.correlation_millis(), 2);
        assert_eq!(cost.transition_millis(), 1);
        assert_eq!(cost.identification_millis(), u64::MAX);
        assert_eq!(cost.total_millis(), u64::MAX);
        let sane = CostProfile {
            correlation_ns: 3_000,
            transition_ns: 1_000,
            identification_ns: 2_000,
            windows: 2,
        };
        assert_eq!(sane.total_ns(), 6_000);
        assert!((sane.mean_ns_per_window() - 3_000.0).abs() < f64::EPSILON);
        assert_eq!(CostProfile::default().mean_ns_per_window(), 0.0);
    }
}
