//! Room-partitioned DICE (Section VI, multi-user cases).
//!
//! "A user may group the sensors that are spatially closely located and
//! connect each group to DICE individually to restrain the growing number of
//! combinations." This module implements that: the deployment is split into
//! device partitions (by room, or any custom grouping), each partition runs
//! its own context extraction and real-time engine over only its devices,
//! and reports are mapped back to the global device ids.
//
// lint-src: allow-file(hash-container) — the local-id remapping tables are
// point lookups only; nothing iterates them, so hash order never surfaces.

use std::collections::HashMap;

use dice_types::{
    ActuatorId, DeviceId, DeviceRegistry, Event, EventLog, Room, SensorId, Timestamp,
};

use crate::config::DiceConfig;
use crate::engine::{DiceEngine, FaultReport};
use crate::error::DiceError;
use crate::model::DiceModel;
use crate::train_par::ParallelTrainer;

/// One partition of the deployment: a named sub-registry plus the id maps
/// between the global deployment and the partition-local dense ids.
#[derive(Debug, Clone)]
pub struct Partition {
    name: String,
    registry: DeviceRegistry,
    sensor_to_local: HashMap<SensorId, SensorId>,
    actuator_to_local: HashMap<ActuatorId, ActuatorId>,
    sensor_to_global: Vec<SensorId>,
    actuator_to_global: Vec<ActuatorId>,
}

impl Partition {
    /// Builds a partition from global device ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is not registered in `registry` or appears twice.
    pub fn new(
        name: impl Into<String>,
        registry: &DeviceRegistry,
        sensors: &[SensorId],
        actuators: &[ActuatorId],
    ) -> Self {
        let mut local = DeviceRegistry::new();
        let mut sensor_to_local = HashMap::new();
        let mut sensor_to_global = Vec::new();
        for &sensor in sensors {
            let spec = registry.sensor(sensor);
            let local_id = local.add_sensor(spec.kind(), spec.name(), spec.room());
            assert!(
                sensor_to_local.insert(sensor, local_id).is_none(),
                "duplicate sensor {sensor} in partition"
            );
            sensor_to_global.push(sensor);
        }
        let mut actuator_to_local = HashMap::new();
        let mut actuator_to_global = Vec::new();
        for &actuator in actuators {
            let spec = registry.actuator(actuator);
            let local_id = local.add_actuator(spec.kind(), spec.name(), spec.room());
            assert!(
                actuator_to_local.insert(actuator, local_id).is_none(),
                "duplicate actuator {actuator} in partition"
            );
            actuator_to_global.push(actuator);
        }
        Partition {
            name: name.into(),
            registry: local,
            sensor_to_local,
            actuator_to_local,
            sensor_to_global,
            actuator_to_global,
        }
    }

    /// The partition's name (e.g. its room).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition-local registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// Projects a global event into the partition, remapping ids; `None` if
    /// the event's device is not part of this partition.
    pub fn project(&self, event: &Event) -> Option<Event> {
        match event {
            Event::Sensor(r) => self
                .sensor_to_local
                .get(&r.sensor)
                .map(|&local| Event::Sensor(dice_types::SensorReading::new(local, r.at, r.value))),
            Event::Actuator(a) => self.actuator_to_local.get(&a.actuator).map(|&local| {
                Event::Actuator(dice_types::ActuatorEvent::new(local, a.at, a.active))
            }),
        }
    }

    /// Maps a partition-local device id back to the global deployment.
    ///
    /// # Panics
    ///
    /// Panics if the local id was not issued by this partition.
    pub fn unproject(&self, device: DeviceId) -> DeviceId {
        match device {
            DeviceId::Sensor(s) => DeviceId::Sensor(self.sensor_to_global[s.index()]),
            DeviceId::Actuator(a) => DeviceId::Actuator(self.actuator_to_global[a.index()]),
        }
    }

    /// Partitions a deployment by room: every room with at least one sensor
    /// becomes one partition holding its sensors and actuators.
    pub fn by_room(registry: &DeviceRegistry) -> Vec<Partition> {
        Room::all()
            .iter()
            .filter_map(|&room| {
                let sensors: Vec<SensorId> = registry
                    .sensors()
                    .filter(|s| s.room() == room)
                    .map(dice_types::SensorSpec::id)
                    .collect();
                if sensors.is_empty() {
                    return None;
                }
                let actuators: Vec<ActuatorId> = registry
                    .actuators()
                    .filter(|a| a.room() == room)
                    .map(dice_types::ActuatorSpec::id)
                    .collect();
                Some(Partition::new(
                    room.to_string(),
                    registry,
                    &sensors,
                    &actuators,
                ))
            })
            .collect()
    }
}

/// Per-partition trained models, ready to drive a [`PartitionedEngine`].
#[derive(Debug, Clone)]
pub struct PartitionedModel {
    parts: Vec<(Partition, DiceModel)>,
}

impl PartitionedModel {
    /// Trains one DICE model per partition over the same training log.
    ///
    /// Each partition runs the chunked [`ParallelTrainer`], whose merged
    /// model is bit-identical to the serial two-pass extraction; windows
    /// tile the *global* training range so quiet partitions still learn
    /// their silent context.
    ///
    /// # Errors
    ///
    /// Returns the first extraction error (e.g. an empty training range).
    pub fn train(
        config: &DiceConfig,
        partitions: Vec<Partition>,
        training: &mut EventLog,
    ) -> Result<Self, DiceError> {
        let (from, to) = match (training.start(), training.end()) {
            (Some(s), Some(e)) => (s.align_down(config.window()), e),
            _ => return Err(DiceError::EmptyTrainingData),
        };
        let trainer = ParallelTrainer::new(config.clone());
        let mut parts = Vec::with_capacity(partitions.len());
        for partition in partitions {
            // Project the training log into the partition.
            let mut local = EventLog::new();
            for event in training.events() {
                if let Some(projected) = partition.project(event) {
                    local.push(projected);
                }
            }
            let model = trainer.extract_between(
                partition.registry(),
                &mut local,
                from,
                to + config.window(),
            )?;
            parts.push((partition, model));
        }
        Ok(PartitionedModel { parts })
    }

    /// The partitions and their models.
    pub fn parts(&self) -> &[(Partition, DiceModel)] {
        &self.parts
    }

    /// Total groups across all partitions — the quantity the paper's
    /// discussion expects to shrink versus whole-home DICE in multi-user
    /// homes.
    pub fn total_groups(&self) -> usize {
        self.parts.iter().map(|(_, m)| m.groups().len()).sum()
    }
}

/// One DICE engine per partition, with reports mapped back to global ids.
#[derive(Debug)]
pub struct PartitionedEngine<'m> {
    engines: Vec<(&'m Partition, DiceEngine<&'m DiceModel>)>,
    /// Projected-events buffer, reused across partitions and windows so the
    /// steady-state window path allocates nothing.
    projected: Vec<Event>,
}

impl<'m> PartitionedEngine<'m> {
    /// Creates engines over a trained partitioned model.
    pub fn new(model: &'m PartitionedModel) -> Self {
        PartitionedEngine {
            engines: model
                .parts
                .iter()
                .map(|(partition, model)| (partition, DiceEngine::new(model)))
                .collect(),
            projected: Vec::new(),
        }
    }

    /// Creates engines with explicit options (cloned per partition). Each
    /// partition gets its own flight recorder, but a shared trace sink in
    /// the options is shared by every partition engine.
    pub fn with_options(model: &'m PartitionedModel, options: &crate::EngineOptions) -> Self {
        PartitionedEngine {
            engines: model
                .parts
                .iter()
                .map(|(partition, model)| {
                    (partition, DiceEngine::with_options(model, options.clone()))
                })
                .collect(),
            projected: Vec::new(),
        }
    }

    /// The SIMD backend the partition engines' scan indexes dispatch to.
    /// Dispatch is per-process (one CPU, one detection), so every partition
    /// shares one backend.
    pub fn scan_backend(&self) -> crate::ScanBackend {
        self.engines
            .first()
            .map_or_else(crate::ScanBackend::detect, |(_, e)| e.scan_backend())
    }

    /// Processes one window across all partitions; returns every report
    /// (device ids global) raised in this window.
    pub fn process_window(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
    ) -> Vec<FaultReport> {
        let mut reports = Vec::new();
        let PartitionedEngine { engines, projected } = self;
        for (partition, engine) in engines {
            projected.clear();
            projected.extend(events.iter().filter_map(|e| partition.project(e)));
            if let Some(mut report) = engine.process_window(start, end, projected) {
                report.devices = report
                    .devices
                    .iter()
                    .map(|&d| partition.unproject(d))
                    .collect();
                reports.push(report);
            }
        }
        reports
    }

    /// Flushes all partitions' pending identifications.
    pub fn flush(&mut self) -> Vec<FaultReport> {
        let mut reports = Vec::new();
        for (partition, engine) in &mut self.engines {
            if let Some(mut report) = engine.flush() {
                report.devices = report
                    .devices
                    .iter()
                    .map(|&d| partition.unproject(d))
                    .collect();
                reports.push(report);
            }
        }
        reports
    }

    /// Processes every window tiling `[from, to)` of a log.
    pub fn process_range(
        &mut self,
        log: &mut EventLog,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<FaultReport> {
        let window = self.engines.first().map_or_else(
            || dice_types::TimeDelta::from_mins(1),
            |(_, e)| e.model().config().window(),
        );
        let windows: Vec<(Timestamp, Timestamp, Vec<Event>)> = log
            .windows_between(from, to, window)
            .map(|w| (w.start, w.end, w.events.to_vec()))
            .collect();
        let mut reports = Vec::new();
        for (start, end, events) in windows {
            reports.extend(self.process_window(start, end, &events));
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{SensorKind, SensorReading, TimeDelta};

    fn two_room_home() -> (DeviceRegistry, Vec<SensorId>) {
        let mut reg = DeviceRegistry::new();
        let k0 = reg.add_sensor(SensorKind::Motion, "k0", Room::Kitchen);
        let k1 = reg.add_sensor(SensorKind::Motion, "k1", Room::Kitchen);
        let b0 = reg.add_sensor(SensorKind::Motion, "b0", Room::Bedroom);
        (reg, vec![k0, k1, b0])
    }

    fn training_log(sensors: &[SensorId], minutes: i64) -> EventLog {
        let mut log = EventLog::new();
        for minute in 0..minutes {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
                log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
            } else {
                log.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        log
    }

    #[test]
    fn by_room_covers_all_sensors_once() {
        let (reg, _) = two_room_home();
        let partitions = Partition::by_room(&reg);
        assert_eq!(partitions.len(), 2);
        let total: usize = partitions.iter().map(|p| p.registry().num_sensors()).sum();
        assert_eq!(total, reg.num_sensors());
        assert_eq!(partitions[0].name(), "kitchen");
        assert_eq!(partitions[1].name(), "bedroom");
    }

    #[test]
    fn projection_remaps_ids_and_unprojection_inverts() {
        let (reg, sensors) = two_room_home();
        let partitions = Partition::by_room(&reg);
        let bedroom = &partitions[1];
        let event = Event::Sensor(SensorReading::new(
            sensors[2],
            Timestamp::from_secs(5),
            true.into(),
        ));
        let local = bedroom
            .project(&event)
            .expect("b0 is in the bedroom partition");
        let local_id = local.as_sensor().unwrap().sensor;
        assert_eq!(local_id, SensorId::new(0), "local ids are dense");
        assert_eq!(
            bedroom.unproject(DeviceId::Sensor(local_id)),
            DeviceId::Sensor(sensors[2])
        );
        // Kitchen events do not project into the bedroom.
        let kitchen_event = Event::Sensor(SensorReading::new(
            sensors[0],
            Timestamp::from_secs(5),
            true.into(),
        ));
        assert!(bedroom.project(&kitchen_event).is_none());
    }

    #[test]
    fn partitioned_training_and_detection_work() {
        let (reg, sensors) = two_room_home();
        let config = DiceConfig::builder().min_row_support(1).build();
        let mut training = training_log(&sensors, 240);
        let model =
            PartitionedModel::train(&config, Partition::by_room(&reg), &mut training).unwrap();
        assert_eq!(model.parts().len(), 2);
        assert!(model.total_groups() >= 4); // {k0,k1}/{} and {b0}/{} at least

        // Healthy replay is quiet.
        let mut engine = PartitionedEngine::new(&model);
        let mut live = training_log(&sensors, 40);
        let mut reports =
            engine.process_range(&mut live, Timestamp::ZERO, Timestamp::from_mins(40));
        reports.extend(engine.flush());
        assert!(reports.is_empty(), "unexpected: {reports:?}");

        // Fail-stop k1: only the kitchen partition fires, and the report
        // names the *global* sensor id.
        let mut faulty = EventLog::new();
        for minute in 0..40 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                faulty.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            } else {
                faulty.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        let mut engine = PartitionedEngine::new(&model);
        let mut reports =
            engine.process_range(&mut faulty, Timestamp::ZERO, Timestamp::from_mins(40));
        reports.extend(engine.flush());
        assert!(!reports.is_empty());
        assert!(reports[0].devices.contains(&DeviceId::Sensor(sensors[1])));
    }

    #[test]
    fn with_options_wires_tracing_through_partitions() {
        let (reg, sensors) = two_room_home();
        let config = DiceConfig::builder().min_row_support(1).build();
        let mut training = training_log(&sensors, 240);
        let model =
            PartitionedModel::train(&config, Partition::by_room(&reg), &mut training).unwrap();
        let options = crate::EngineOptions {
            trace: crate::TraceOptions::recording(),
            ..crate::EngineOptions::default()
        };
        let mut engine = PartitionedEngine::with_options(&model, &options);
        // Fail-stop k1: k0 fires alone on even minutes.
        let mut faulty = EventLog::new();
        for minute in 0..40 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                faulty.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            } else {
                faulty.push_sensor(SensorReading::new(sensors[2], at, true.into()));
            }
        }
        let mut reports =
            engine.process_range(&mut faulty, Timestamp::ZERO, Timestamp::from_mins(40));
        reports.extend(engine.flush());
        assert!(!reports.is_empty());
        assert!(reports[0].devices.contains(&DeviceId::Sensor(sensors[1])));
        assert!(
            !reports[0].evidence.is_empty(),
            "partition engines built with tracing options attach evidence"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate sensor")]
    fn duplicate_sensor_in_partition_panics() {
        let (reg, sensors) = two_room_home();
        let _ = Partition::new("bad", &reg, &[sensors[0], sensors[0]], &[]);
    }
}
