//! Mapping between sensors and sensor-state-set bit positions.
//!
//! A binary sensor owns one bit (Eq. 3.1). A numeric sensor owns three bits
//! (Eqs. 3.2–3.4): skewness, trend, and level. The layout assigns spans in
//! sensor-id order so the mapping is deterministic for a given registry, and
//! provides the reverse map used during identification ("for a numeric sensor
//! three bits constitute for a single numeric sensor", Section 3.4).

use serde::{Deserialize, Serialize};

use dice_types::{DeviceRegistry, SensorClass, SensorId};

/// The role of one bit inside a sensor's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitRole {
    /// The single bit of a binary sensor (Eq. 3.1).
    Activation,
    /// Skewness of the window's samples exceeds zero (Eq. 3.2).
    Skewness,
    /// Increasing trend over the window (Eq. 3.3).
    Trend,
    /// Window mean exceeds the sensor's `valueThre` (Eq. 3.4).
    Level,
}

/// The contiguous bit span owned by one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSpan {
    /// First bit index of the span.
    pub start: usize,
    /// Number of bits (1 for binary sensors, 3 for numeric sensors).
    pub width: usize,
}

impl BitSpan {
    /// Iterates over the bit indices in this span.
    pub fn indices(self) -> impl Iterator<Item = usize> {
        self.start..self.start + self.width
    }
}

/// Assignment of state-set bits to sensors.
///
/// # Example
///
/// ```
/// use dice_core::BitLayout;
/// use dice_types::{DeviceRegistry, Room, SensorKind};
///
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let temp = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
/// let layout = BitLayout::for_registry(&reg);
/// assert_eq!(layout.num_bits(), 4); // 1 binary bit + 3 numeric bits
/// assert_eq!(layout.span(motion).width, 1);
/// assert_eq!(layout.span(temp).width, 3);
/// assert_eq!(layout.sensor_of_bit(2), temp);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitLayout {
    spans: Vec<BitSpan>,
    owner: Vec<u32>,
    num_numeric: usize,
}

/// Width of a numeric sensor's span (skewness, trend, level).
pub const NUMERIC_SPAN_WIDTH: usize = 3;

impl BitLayout {
    /// Builds the layout for a registry, in sensor-id order.
    pub fn for_registry(registry: &DeviceRegistry) -> Self {
        let mut spans = Vec::with_capacity(registry.num_sensors());
        let mut owner = Vec::new();
        let mut cursor = 0usize;
        let mut num_numeric = 0usize;
        for spec in registry.sensors() {
            let width = match spec.class() {
                SensorClass::Binary => 1,
                SensorClass::Numeric => {
                    num_numeric += 1;
                    NUMERIC_SPAN_WIDTH
                }
            };
            spans.push(BitSpan {
                start: cursor,
                width,
            });
            for _ in 0..width {
                owner.push(spec.id().index() as u32);
            }
            cursor += width;
        }
        BitLayout {
            spans,
            owner,
            num_numeric,
        }
    }

    /// Rebuilds a layout from per-sensor span widths (1 = binary,
    /// 3 = numeric), e.g. when loading a persisted model.
    ///
    /// # Panics
    ///
    /// Panics if any width is not 1 or the numeric span width.
    pub fn from_widths(widths: &[usize]) -> Self {
        let mut spans = Vec::with_capacity(widths.len());
        let mut owner = Vec::new();
        let mut cursor = 0usize;
        let mut num_numeric = 0usize;
        for (sensor, &width) in widths.iter().enumerate() {
            assert!(
                width == 1 || width == NUMERIC_SPAN_WIDTH,
                "span width must be 1 or {NUMERIC_SPAN_WIDTH}"
            );
            if width == NUMERIC_SPAN_WIDTH {
                num_numeric += 1;
            }
            spans.push(BitSpan {
                start: cursor,
                width,
            });
            for _ in 0..width {
                owner.push(sensor as u32);
            }
            cursor += width;
        }
        BitLayout {
            spans,
            owner,
            num_numeric,
        }
    }

    /// Total number of bits in a state set.
    pub fn num_bits(&self) -> usize {
        self.owner.len()
    }

    /// Number of sensors covered by the layout.
    pub fn num_sensors(&self) -> usize {
        self.spans.len()
    }

    /// Number of numeric sensors (those with three-bit spans).
    pub fn num_numeric_sensors(&self) -> usize {
        self.num_numeric
    }

    /// The bit span owned by `sensor`.
    ///
    /// # Panics
    ///
    /// Panics if the sensor is not covered by this layout.
    pub fn span(&self, sensor: SensorId) -> BitSpan {
        self.spans[sensor.index()]
    }

    /// Iterates over every sensor's span in sensor-id order.
    pub fn spans(&self) -> impl Iterator<Item = (SensorId, BitSpan)> + '_ {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, &span)| (SensorId::new(i as u32), span))
    }

    /// Total number of bits in a state set (alias of
    /// [`BitLayout::num_bits`], named for symmetry with analyzer code).
    pub fn total_bits(&self) -> usize {
        self.num_bits()
    }

    /// The sensor owning `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= num_bits()`.
    pub fn sensor_of_bit(&self, bit: usize) -> SensorId {
        SensorId::new(self.owner[bit])
    }

    /// The role of `bit` within its owner's span.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= num_bits()`.
    pub fn role_of_bit(&self, bit: usize) -> BitRole {
        let span = self.span(self.sensor_of_bit(bit));
        if span.width == 1 {
            BitRole::Activation
        } else {
            match bit - span.start {
                0 => BitRole::Skewness,
                1 => BitRole::Trend,
                _ => BitRole::Level,
            }
        }
    }

    /// Folds a set of bit indices into the owning sensors, deduplicated and
    /// in ascending id order.
    pub fn sensors_of_bits(&self, bits: impl IntoIterator<Item = usize>) -> Vec<SensorId> {
        let mut sensors: Vec<SensorId> = bits.into_iter().map(|b| self.sensor_of_bit(b)).collect();
        sensors.sort_unstable();
        sensors.dedup();
        sensors
    }

    /// Stable fingerprint of the layout shape: total bits, sensor count,
    /// and every span's position and width.
    ///
    /// Two layouts fingerprint equal exactly when every sensor owns the
    /// same bits, so artifacts produced against different registries (or a
    /// registry that gained/lost a sensor) are distinguishable without
    /// comparing the full structures. [`crate::TraceHeader`] computes the
    /// same value from a trace file's header line.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.push_u64(self.num_bits() as u64);
        fp.push_u64(self.spans.len() as u64);
        for span in &self.spans {
            fp.push_u64(span.start as u64);
            fp.push_u64(span.width as u64);
        }
        fp.finish()
    }

    /// The widest span in the layout (3 if any numeric sensor, else 1).
    ///
    /// This bounds how many bits a single faulty device can disturb, which
    /// sets the default candidate-group distance threshold.
    pub fn max_span_width(&self) -> usize {
        if self.num_numeric > 0 {
            NUMERIC_SPAN_WIDTH
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{Room, SensorKind};

    fn layout3() -> (BitLayout, SensorId, SensorId, SensorId) {
        let mut reg = DeviceRegistry::new();
        let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let d = reg.add_sensor(SensorKind::Contact, "d", Room::Hallway);
        (BitLayout::for_registry(&reg), m, t, d)
    }

    #[test]
    fn spans_are_contiguous_in_id_order() {
        let (layout, m, t, d) = layout3();
        assert_eq!(layout.span(m), BitSpan { start: 0, width: 1 });
        assert_eq!(layout.span(t), BitSpan { start: 1, width: 3 });
        assert_eq!(layout.span(d), BitSpan { start: 4, width: 1 });
        assert_eq!(layout.num_bits(), 5);
        assert_eq!(layout.num_sensors(), 3);
        assert_eq!(layout.num_numeric_sensors(), 1);
    }

    #[test]
    fn reverse_map_recovers_owner() {
        let (layout, m, t, d) = layout3();
        assert_eq!(layout.sensor_of_bit(0), m);
        assert_eq!(layout.sensor_of_bit(1), t);
        assert_eq!(layout.sensor_of_bit(2), t);
        assert_eq!(layout.sensor_of_bit(3), t);
        assert_eq!(layout.sensor_of_bit(4), d);
    }

    #[test]
    fn roles_follow_span_offsets() {
        let (layout, ..) = layout3();
        assert_eq!(layout.role_of_bit(0), BitRole::Activation);
        assert_eq!(layout.role_of_bit(1), BitRole::Skewness);
        assert_eq!(layout.role_of_bit(2), BitRole::Trend);
        assert_eq!(layout.role_of_bit(3), BitRole::Level);
        assert_eq!(layout.role_of_bit(4), BitRole::Activation);
    }

    #[test]
    fn sensors_of_bits_dedups_numeric_span() {
        let (layout, _, t, d) = layout3();
        // Three differing bits of one numeric sensor fold to a single sensor.
        let sensors = layout.sensors_of_bits([1, 2, 3]);
        assert_eq!(sensors, vec![t]);
        let sensors = layout.sensors_of_bits([4, 2]);
        assert_eq!(sensors, vec![t, d]);
    }

    #[test]
    fn span_indices_iterate_bits() {
        let (layout, _, t, _) = layout3();
        let bits: Vec<usize> = layout.span(t).indices().collect();
        assert_eq!(bits, vec![1, 2, 3]);
    }

    #[test]
    fn max_span_width_reflects_numeric_presence() {
        let (layout, ..) = layout3();
        assert_eq!(layout.max_span_width(), 3);

        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let binary_only = BitLayout::for_registry(&reg);
        assert_eq!(binary_only.max_span_width(), 1);
    }

    #[test]
    fn empty_registry_layout() {
        let layout = BitLayout::for_registry(&DeviceRegistry::new());
        assert_eq!(layout.num_bits(), 0);
        assert_eq!(layout.num_sensors(), 0);
    }
}
