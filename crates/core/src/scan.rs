//! A packed candidate-scan index over the group table.
//!
//! The correlation check is DICE's per-window hot path: every window without
//! an exact group match is compared against *all* groups by Hamming distance
//! (Figure 3.5). [`GroupTable`] stores each group as its own heap-allocated
//! [`BitSet`], so the naive scan chases one pointer per group. [`ScanIndex`]
//! is a structure-of-arrays mirror of the table built for that scan:
//!
//! * all group state sets live in one contiguous `Vec<u64>` with a fixed row
//!   stride (`words_per_row`), so the scan is a linear walk over memory the
//!   prefetcher can follow;
//! * each group's popcount is cached, and `|popcount(q) − popcount(g)|` is a
//!   lower bound on `hamming(q, g)`, so rows outside the distance threshold
//!   are pruned with one integer compare before any XOR work;
//! * [`ScanIndex::candidates_into`] / [`ScanIndex::nearest_into`] fill a
//!   caller-owned scratch buffer, so a steady-state engine performs zero
//!   allocations per window.
//!
//! The index is derived state: it returns exactly what the naive
//! [`GroupTable::candidates`] / [`GroupTable::nearest`] scans return (a
//! property-tested equivalence), and is rebuilt whenever the model's group
//! table changes — see [`DiceModel::rebuild_index`](crate::DiceModel).

use crate::bitset::BitSet;
use crate::groups::{Candidate, GroupTable};

use dice_types::GroupId;

const WORD_BITS: usize = u64::BITS as usize;

/// What one candidate scan did: how many group rows it visited and how many
/// the popcount prefilter rejected before any XOR work.
///
/// Returned by [`ScanIndex::candidates_into`] / [`ScanIndex::nearest_into`]
/// so the engine can report prefilter effectiveness as telemetry;
/// `pruned / rows` is the prefilter hit rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanProfile {
    /// Group rows considered (the whole index, for a full scan).
    pub rows: u32,
    /// Rows rejected by the popcount lower bound alone — per-row for this
    /// index, whole bucket ranges for
    /// [`SlicedScanIndex`](crate::SlicedScanIndex).
    pub pruned: u32,
    /// Bit-sliced blocks visited (always 0 for this row-major index).
    pub blocks: u32,
    /// Blocks abandoned early once every lane saturated past the threshold
    /// (always 0 for this row-major index).
    pub early_stops: u32,
}

impl ScanProfile {
    /// Adds another profile's counts into this one (element-wise), for
    /// callers that merge the work of several scans into one report.
    pub fn absorb(&mut self, other: ScanProfile) {
        self.rows += other.rows;
        self.pruned += other.pruned;
        self.blocks += other.blocks;
        self.early_stops += other.early_stops;
    }
}

/// A packed, popcount-prefiltered mirror of a [`GroupTable`] for candidate
/// scans.
///
/// Row `i` of the index is group `i` of the table it was built from.
///
/// # Example
///
/// ```
/// use dice_core::{BitSet, GroupTable, ScanIndex};
///
/// let mut table = GroupTable::new(5);
/// table.observe(&BitSet::from_indices(5, [0, 1]));
/// table.observe(&BitSet::from_indices(5, [3, 4]));
/// let index = ScanIndex::build(&table);
///
/// let query = BitSet::from_indices(5, [0]);
/// let hits = index.candidates(&query, 1);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].distance, 1);
/// assert_eq!(index.candidates(&query, 1), table.candidates(&query, 1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanIndex {
    num_bits: usize,
    words_per_row: usize,
    /// All group state sets, row-major: row `i` occupies
    /// `words[i * words_per_row .. (i + 1) * words_per_row]`.
    words: Vec<u64>,
    /// `popcounts[i]` = number of set bits of group `i`.
    popcounts: Vec<u32>,
}

impl ScanIndex {
    /// Builds the index from a group table. Row `i` mirrors group `i`.
    pub fn build(table: &GroupTable) -> Self {
        let num_bits = table.num_bits();
        let words_per_row = num_bits.div_ceil(WORD_BITS);
        let mut words = Vec::with_capacity(table.len() * words_per_row);
        let mut popcounts = Vec::with_capacity(table.len());
        for (_, state) in table.iter() {
            words.extend_from_slice(state.as_words());
            popcounts.push(state.count_ones());
        }
        ScanIndex {
            num_bits,
            words_per_row,
            words,
            popcounts,
        }
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        self.popcounts.len()
    }

    /// Whether the index holds no groups.
    pub fn is_empty(&self) -> bool {
        self.popcounts.is_empty()
    }

    /// Width of the indexed state sets, in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Fills `out` with every group within Hamming distance `max_distance`
    /// of `state` (inclusive), sorted by ascending distance then group id —
    /// exactly [`GroupTable::candidates`], without allocating when `out` has
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn candidates_into(
        &self,
        state: &BitSet,
        max_distance: u32,
        out: &mut Vec<Candidate>,
    ) -> ScanProfile {
        assert_eq!(state.len(), self.num_bits, "query width mismatch");
        out.clear();
        let query = state.as_words();
        let query_pc = state.count_ones();
        let mut pruned = 0u32;
        for (i, &pc) in self.popcounts.iter().enumerate() {
            // |popcount(q) - popcount(g)| lower-bounds hamming(q, g): prune
            // before touching the row's words.
            if query_pc.abs_diff(pc) > max_distance {
                pruned += 1;
                continue;
            }
            let row = &self.words[i * self.words_per_row..(i + 1) * self.words_per_row];
            let mut distance = 0u32;
            let mut within = true;
            for (a, b) in query.iter().zip(row) {
                distance += (a ^ b).count_ones();
                if distance > max_distance {
                    within = false;
                    break;
                }
            }
            if within {
                out.push(Candidate {
                    group: GroupId::new(i as u32),
                    distance,
                });
            }
        }
        // (distance, group) keys are unique, so unstable sorting yields the
        // same order as the table's stable sort.
        out.sort_unstable_by_key(|c| (c.distance, c.group));
        ScanProfile {
            rows: self.popcounts.len() as u32,
            pruned,
            ..ScanProfile::default()
        }
    }

    /// Fills `out` with the nearest group(s) to `state`: minimal distance,
    /// all ties, ascending by group id — exactly [`GroupTable::nearest`],
    /// without allocating when `out` has capacity.
    ///
    /// Leaves `out` empty only for an empty index.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn nearest_into(&self, state: &BitSet, out: &mut Vec<Candidate>) -> ScanProfile {
        assert_eq!(state.len(), self.num_bits, "query width mismatch");
        out.clear();
        let query = state.as_words();
        let query_pc = state.count_ones();
        let mut best = u32::MAX;
        let mut pruned = 0u32;
        for (i, &pc) in self.popcounts.iter().enumerate() {
            // A row whose popcount gap already exceeds the current best
            // cannot even tie it.
            if query_pc.abs_diff(pc) > best {
                pruned += 1;
                continue;
            }
            let row = &self.words[i * self.words_per_row..(i + 1) * self.words_per_row];
            let mut distance = 0u32;
            let mut beaten = false;
            for (a, b) in query.iter().zip(row) {
                distance += (a ^ b).count_ones();
                if distance > best {
                    beaten = true;
                    break;
                }
            }
            if beaten {
                continue;
            }
            if distance < best {
                best = distance;
                out.clear();
            }
            out.push(Candidate {
                group: GroupId::new(i as u32),
                distance,
            });
        }
        ScanProfile {
            rows: self.popcounts.len() as u32,
            pruned,
            ..ScanProfile::default()
        }
    }

    /// Allocating convenience wrapper over [`ScanIndex::candidates_into`].
    pub fn candidates(&self, state: &BitSet, max_distance: u32) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.candidates_into(state, max_distance, &mut out);
        out
    }

    /// Allocating convenience wrapper over [`ScanIndex::nearest_into`].
    pub fn nearest(&self, state: &BitSet) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.nearest_into(state, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> GroupTable {
        let mut t = GroupTable::new(5);
        t.observe(&BitSet::from_indices(5, [0, 1])); // G0
        t.observe(&BitSet::from_indices(5, [3, 4])); // G1
        t.observe(&BitSet::from_indices(5, [0, 1, 2])); // G2
        t
    }

    #[test]
    fn build_mirrors_table_rows() {
        let t = table();
        let idx = ScanIndex::build(&t);
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert_eq!(idx.num_bits(), 5);
    }

    #[test]
    fn candidates_match_naive_scan() {
        let t = table();
        let idx = ScanIndex::build(&t);
        for max in 0..=5 {
            for query in [
                BitSet::from_indices(5, [0, 1, 3]),
                BitSet::from_indices(5, []),
                BitSet::from_indices(5, [0, 1, 2, 3, 4]),
            ] {
                assert_eq!(
                    idx.candidates(&query, max),
                    t.candidates(&query, max),
                    "max_distance={max}, query={query}"
                );
            }
        }
    }

    #[test]
    fn nearest_matches_naive_scan_including_ties() {
        let mut t = GroupTable::new(3);
        t.observe(&BitSet::from_indices(3, [0]));
        t.observe(&BitSet::from_indices(3, [1]));
        let idx = ScanIndex::build(&t);
        // Query {2}: both groups tie at distance 2.
        let q = BitSet::from_indices(3, [2]);
        assert_eq!(idx.nearest(&q), t.nearest(&q));
        assert_eq!(idx.nearest(&q).len(), 2);
    }

    #[test]
    fn empty_index_yields_empty_results() {
        let idx = ScanIndex::build(&GroupTable::new(4));
        assert!(idx.is_empty());
        assert!(idx.candidates(&BitSet::new(4), 4).is_empty());
        assert!(idx.nearest(&BitSet::new(4)).is_empty());
    }

    #[test]
    fn scratch_buffers_are_reused_without_reallocation() {
        let t = table();
        let idx = ScanIndex::build(&t);
        let mut out = Vec::with_capacity(t.len());
        let cap = out.capacity();
        let queries = [
            BitSet::from_indices(5, [0, 1]),
            BitSet::from_indices(5, [3]),
            BitSet::from_indices(5, [0, 2, 4]),
        ];
        for q in &queries {
            let _ = idx.candidates_into(q, 5, &mut out);
            assert_eq!(out.capacity(), cap, "candidates_into must not grow");
            let _ = idx.nearest_into(q, &mut out);
            assert_eq!(out.capacity(), cap, "nearest_into must not grow");
        }
    }

    #[test]
    fn scan_profile_counts_visited_and_pruned_rows() {
        // Popcounts 0 and 5 against a 2-bit query: with threshold 1 the
        // prefilter rejects both rows (gaps 2 and 3) before any XOR work.
        let mut t = GroupTable::new(5);
        t.observe(&BitSet::from_indices(5, []));
        t.observe(&BitSet::from_indices(5, [0, 1, 2, 3, 4]));
        let idx = ScanIndex::build(&t);
        let q = BitSet::from_indices(5, [0, 1]);
        let mut out = Vec::new();
        let profile = idx.candidates_into(&q, 1, &mut out);
        assert_eq!(
            profile,
            ScanProfile {
                rows: 2,
                pruned: 2,
                ..ScanProfile::default()
            }
        );
        assert!(out.is_empty());
        // Threshold 2 admits the popcount-0 row past the prefilter.
        let profile = idx.candidates_into(&q, 2, &mut out);
        assert_eq!(
            profile,
            ScanProfile {
                rows: 2,
                pruned: 1,
                ..ScanProfile::default()
            }
        );
        // nearest_into visits every row until a best distance is set; the
        // empty-set row (distance 2) then prunes nothing further here.
        let profile = idx.nearest_into(&q, &mut out);
        assert_eq!(profile.rows, 2);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn popcount_prefilter_does_not_drop_true_candidates() {
        // Groups engineered so the prefilter fires: popcounts 0 and 5.
        let mut t = GroupTable::new(5);
        t.observe(&BitSet::from_indices(5, []));
        t.observe(&BitSet::from_indices(5, [0, 1, 2, 3, 4]));
        let idx = ScanIndex::build(&t);
        let q = BitSet::from_indices(5, [0, 1]);
        // d(G0)=2, d(G1)=3; threshold 2 keeps only G0.
        let c = idx.candidates(&q, 2);
        assert_eq!(c, t.candidates(&q, 2));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].group, GroupId::new(0));
    }

    #[test]
    fn multiword_rows_scan_correctly() {
        let mut t = GroupTable::new(130);
        t.observe(&BitSet::from_indices(130, [0, 64, 129]));
        t.observe(&BitSet::from_indices(130, [1, 65]));
        let idx = ScanIndex::build(&t);
        let q = BitSet::from_indices(130, [0, 64]);
        assert_eq!(idx.candidates(&q, 130), t.candidates(&q, 130));
        assert_eq!(idx.nearest(&q), t.nearest(&q));
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn width_mismatch_panics() {
        let idx = ScanIndex::build(&table());
        let _ = idx.candidates(&BitSet::new(4), 1);
    }
}
