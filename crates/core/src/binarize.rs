//! Conversion of raw window events into sensor state sets.
//!
//! This implements the construction of Figure 3.3a: every window of duration
//! `d` becomes one bit vector. Binary sensors contribute a single OR-ed
//! activation bit (Eq. 3.1). Numeric sensors contribute three bits computed
//! from the window's samples: skewness > 0 (Eq. 3.2), increasing trend
//! (Eq. 3.3), and mean above the sensor's `valueThre` (Eq. 3.4). `valueThre`
//! is the sensor's mean over the precomputation data, learned by
//! [`ThresholdTrainer`].

use serde::{Deserialize, Serialize};

use dice_types::{ActuatorId, DeviceRegistry, Event, SensorClass, SensorValue, Timestamp};

use crate::bitset::BitSet;
use crate::layout::BitLayout;
use crate::stats::{MeanAccumulator, WindowStats};

/// Per-sensor `valueThre` thresholds (Eq. 3.4), learned from fault-free data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    value_thre: Vec<Option<f64>>,
}

impl Thresholds {
    /// Rebuilds thresholds from per-sensor values, e.g. when loading a
    /// persisted model.
    pub fn from_values(value_thre: Vec<Option<f64>>) -> Self {
        Thresholds { value_thre }
    }

    /// The per-sensor threshold values in sensor-id order.
    pub fn values(&self) -> &[Option<f64>] {
        &self.value_thre
    }

    /// The threshold for `sensor`, if it is a numeric sensor that produced
    /// at least one training sample.
    pub fn value_thre(&self, sensor: dice_types::SensorId) -> Option<f64> {
        self.value_thre.get(sensor.index()).copied().flatten()
    }

    /// Stable fingerprint of the trained threshold table: sensor count,
    /// per-sensor presence, and exact `valueThre` bit patterns.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.push_u64(self.value_thre.len() as u64);
        for &value in &self.value_thre {
            fp.push_opt_f64(value);
        }
        fp.finish()
    }

    /// Number of sensors covered.
    pub fn len(&self) -> usize {
        self.value_thre.len()
    }

    /// Whether no sensors are covered.
    pub fn is_empty(&self) -> bool {
        self.value_thre.is_empty()
    }
}

/// Streaming trainer for [`Thresholds`].
///
/// Feed it every sensor reading of the precomputation period, then call
/// [`ThresholdTrainer::finish`]. Internally each sensor's mean is an exact
/// [`MeanAccumulator`], so trainers over disjoint chunks of the period can
/// be [`ThresholdTrainer::merge`]d into bit-for-bit the same thresholds as
/// one serial pass — the pass-one half of the parallel trainer
/// (see [`crate::train_par`]).
#[derive(Debug, Clone)]
pub struct ThresholdTrainer {
    means: Vec<MeanAccumulator>,
    numeric: Vec<bool>,
}

impl ThresholdTrainer {
    /// Creates a trainer sized for `registry`.
    pub fn new(registry: &DeviceRegistry) -> Self {
        ThresholdTrainer {
            means: vec![MeanAccumulator::new(); registry.num_sensors()],
            numeric: registry
                .sensors()
                .map(|s| s.class() == SensorClass::Numeric)
                .collect(),
        }
    }

    /// Observes one event. Non-numeric readings and actuator events are
    /// ignored.
    pub fn observe(&mut self, event: &Event) {
        if let Event::Sensor(r) = event {
            if let SensorValue::Numeric(v) = r.value {
                if let Some(m) = self.means.get_mut(r.sensor.index()) {
                    m.push(v);
                }
            }
        }
    }

    /// Folds another trainer's samples into this one. Exact: merging
    /// per-chunk trainers in any order reproduces the serial pass bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the trainers were built for different registries.
    pub fn merge(&mut self, other: &ThresholdTrainer) {
        assert_eq!(
            self.means.len(),
            other.means.len(),
            "merged trainers must cover the same sensors"
        );
        for (a, b) in self.means.iter_mut().zip(&other.means) {
            a.merge(b);
        }
    }

    /// Finalizes the thresholds.
    pub fn finish(self) -> Thresholds {
        let value_thre = self
            .means
            .into_iter()
            .zip(self.numeric)
            .map(|(m, is_numeric)| if is_numeric { m.mean() } else { None })
            .collect();
        Thresholds { value_thre }
    }
}

/// The binarized content of one window: the sensor state set plus the
/// actuators that switched on during the window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObservation {
    /// Window start time.
    pub start: Timestamp,
    /// Window end time (exclusive).
    pub end: Timestamp,
    /// The sensor state set.
    pub state: BitSet,
    /// Actuators with an `on` event inside the window, deduplicated,
    /// ascending by id.
    pub activated_actuators: Vec<ActuatorId>,
}

impl Default for WindowObservation {
    fn default() -> Self {
        WindowObservation {
            start: Timestamp::ZERO,
            end: Timestamp::ZERO,
            state: BitSet::new(0),
            activated_actuators: Vec::new(),
        }
    }
}

/// Reusable scratch for allocation-free binarization; see
/// [`Binarizer::binarize_into`].
#[derive(Debug, Clone, Default)]
pub struct BinarizeScratch {
    numeric: Vec<Option<WindowStats>>,
}

/// Relative margin of the Eq. 3.4 level comparison (see
/// [`Binarizer::binarize`]).
const LEVEL_EPSILON: f64 = 1e-6;

/// Converts raw window events into [`WindowObservation`]s.
///
/// # Example
///
/// ```
/// use dice_core::{Binarizer, BitLayout, ThresholdTrainer};
/// use dice_types::{
///     DeviceRegistry, Event, Room, SensorKind, SensorReading, Timestamp,
/// };
///
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let trainer = ThresholdTrainer::new(&reg);
/// let binarizer = Binarizer::new(BitLayout::for_registry(&reg), trainer.finish());
///
/// let events = [Event::from(SensorReading::new(
///     motion,
///     Timestamp::from_secs(5),
///     true.into(),
/// ))];
/// let obs = binarizer.binarize(Timestamp::ZERO, Timestamp::from_mins(1), &events);
/// assert!(obs.state.get(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binarizer {
    layout: BitLayout,
    thresholds: Thresholds,
}

impl Binarizer {
    /// Creates a binarizer from a layout and trained thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds cover a different number of sensors than the
    /// layout.
    pub fn new(layout: BitLayout, thresholds: Thresholds) -> Self {
        assert_eq!(
            layout.num_sensors(),
            thresholds.len(),
            "thresholds must cover exactly the layout's sensors"
        );
        Binarizer { layout, thresholds }
    }

    /// The bit layout in use.
    pub fn layout(&self) -> &BitLayout {
        &self.layout
    }

    /// The trained thresholds.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// Binarizes the events of one window into a state set.
    ///
    /// Missing data naturally maps to zero bits: a silent binary sensor
    /// contributes 0, and a numeric sensor with no samples in the window
    /// contributes three 0 bits (this is what lets the correlation check see
    /// fail-stop faults).
    pub fn binarize(
        &self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
    ) -> WindowObservation {
        let mut scratch = BinarizeScratch::default();
        let mut out = WindowObservation::default();
        self.binarize_into(start, end, events, &mut scratch, &mut out);
        out
    }

    /// Like [`Binarizer::binarize`], but reuses caller-owned buffers: after
    /// the first call with the same `scratch`/`out`, a window binarizes with
    /// zero allocations (the engine's steady-state hot path).
    pub fn binarize_into(
        &self,
        start: Timestamp,
        end: Timestamp,
        events: &[Event],
        scratch: &mut BinarizeScratch,
        out: &mut WindowObservation,
    ) {
        out.start = start;
        out.end = end;
        if out.state.len() == self.layout.num_bits() {
            out.state.clear();
        } else {
            out.state = BitSet::new(self.layout.num_bits());
        }
        out.activated_actuators.clear();

        let state = &mut out.state;
        let actuators = &mut out.activated_actuators;
        let numeric = &mut scratch.numeric;
        if numeric.len() == self.layout.num_sensors() {
            numeric.fill(None);
        } else {
            numeric.clear();
            numeric.resize(self.layout.num_sensors(), None);
        }

        for event in events {
            match event {
                Event::Sensor(r) => {
                    let idx = r.sensor.index();
                    if idx >= self.layout.num_sensors() {
                        continue; // unknown sensor: not part of the context
                    }
                    match r.value {
                        SensorValue::Binary(active) => {
                            if active {
                                // Bit-wise OR over the window (Eq. 3.1).
                                state.set(self.layout.span(r.sensor).start, true);
                            }
                        }
                        SensorValue::Numeric(v) => {
                            numeric[idx].get_or_insert_with(WindowStats::new).push(v);
                        }
                    }
                }
                Event::Actuator(a) => {
                    if a.active {
                        actuators.push(a.actuator);
                    }
                }
            }
        }

        for (idx, stats) in numeric.iter().enumerate() {
            let Some(stats) = stats else { continue };
            let sensor = dice_types::SensorId::new(idx as u32);
            let span = self.layout.span(sensor);
            if span.width != 3 {
                continue; // numeric reading from a binary-declared sensor: ignore
            }
            // Eq. 3.2: skewness exceeds zero.
            if stats.skewness().is_some_and(|s| s > 0.0) {
                state.set(span.start, true);
            }
            // Eq. 3.3: increasing trend over the window.
            if stats.trend().is_some_and(|t| t > 0.0) {
                state.set(span.start + 1, true);
            }
            // Eq. 3.4: mean exceeds valueThre. A relative epsilon keeps the
            // comparison off the knife edge for sensors that rest exactly at
            // their training mean (their empirical mean differs from the
            // resting value only by accumulated measurement noise).
            if let (Some(mean), Some(thre)) = (stats.mean(), self.thresholds.value_thre(sensor)) {
                if mean > thre + thre.abs().max(1.0) * LEVEL_EPSILON {
                    state.set(span.start + 2, true);
                }
            }
        }

        actuators.sort_unstable();
        actuators.dedup();
        debug_assert_eq!(
            state.len(),
            self.layout.num_bits(),
            "binarized state set must span exactly the layout's bits"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorEvent, ActuatorKind, Room, SensorId, SensorKind, SensorReading};

    fn setup() -> (DeviceRegistry, SensorId, SensorId, ActuatorId) {
        let mut reg = DeviceRegistry::new();
        let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let temp = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let bulb = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        (reg, motion, temp, bulb)
    }

    fn trained_binarizer(reg: &DeviceRegistry, temp: SensorId, thre_samples: &[f64]) -> Binarizer {
        let mut trainer = ThresholdTrainer::new(reg);
        for (i, &v) in thre_samples.iter().enumerate() {
            trainer.observe(&Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(i as i64),
                v.into(),
            )));
        }
        Binarizer::new(BitLayout::for_registry(reg), trainer.finish())
    }

    fn win(events: &[Event], binarizer: &Binarizer) -> WindowObservation {
        binarizer.binarize(Timestamp::ZERO, Timestamp::from_mins(1), events)
    }

    #[test]
    fn binary_sensor_ors_over_window() {
        let (reg, motion, temp, _) = setup();
        let b = trained_binarizer(&reg, temp, &[20.0]);
        let events = [
            Event::from(SensorReading::new(
                motion,
                Timestamp::from_secs(1),
                false.into(),
            )),
            Event::from(SensorReading::new(
                motion,
                Timestamp::from_secs(2),
                true.into(),
            )),
            Event::from(SensorReading::new(
                motion,
                Timestamp::from_secs(3),
                false.into(),
            )),
        ];
        assert!(win(&events, &b).state.get(0));
        // Only `false` readings: bit stays clear.
        let quiet = [Event::from(SensorReading::new(
            motion,
            Timestamp::from_secs(1),
            false.into(),
        ))];
        assert!(!win(&quiet, &b).state.get(0));
    }

    #[test]
    fn numeric_level_bit_uses_trained_threshold() {
        let (reg, _, temp, _) = setup();
        // valueThre = mean(18, 22) = 20.
        let b = trained_binarizer(&reg, temp, &[18.0, 22.0]);
        let hot = [
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(0),
                25.0.into(),
            )),
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(30),
                25.0.into(),
            )),
        ];
        assert!(win(&hot, &b).state.get(3), "level bit set when mean > thre");
        let cold = [
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(0),
                15.0.into(),
            )),
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(30),
                15.0.into(),
            )),
        ];
        assert!(!win(&cold, &b).state.get(3));
    }

    #[test]
    fn numeric_trend_bit_compares_first_and_last() {
        let (reg, _, temp, _) = setup();
        let b = trained_binarizer(&reg, temp, &[20.0]);
        let rising = [
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(0),
                10.0.into(),
            )),
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(30),
                12.0.into(),
            )),
        ];
        assert!(win(&rising, &b).state.get(2));
        let falling = [
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(0),
                12.0.into(),
            )),
            Event::from(SensorReading::new(
                temp,
                Timestamp::from_secs(30),
                10.0.into(),
            )),
        ];
        assert!(!win(&falling, &b).state.get(2));
    }

    #[test]
    fn numeric_skew_bit_detects_positive_skew() {
        let (reg, _, temp, _) = setup();
        let b = trained_binarizer(&reg, temp, &[100.0]);
        let skewed: Vec<Event> = [10.0, 10.0, 10.0, 10.0, 50.0, 10.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Event::from(SensorReading::new(
                    temp,
                    Timestamp::from_secs(i as i64),
                    v.into(),
                ))
            })
            .collect();
        assert!(win(&skewed, &b).state.get(1));
    }

    #[test]
    fn missing_numeric_data_yields_zero_bits() {
        let (reg, motion, temp, _) = setup();
        let b = trained_binarizer(&reg, temp, &[20.0]);
        let only_motion = [Event::from(SensorReading::new(
            motion,
            Timestamp::from_secs(1),
            true.into(),
        ))];
        let obs = win(&only_motion, &b);
        assert!(!obs.state.get(1) && !obs.state.get(2) && !obs.state.get(3));
    }

    #[test]
    fn actuator_on_events_are_collected_and_deduped() {
        let (reg, _, temp, bulb) = setup();
        let b = trained_binarizer(&reg, temp, &[20.0]);
        let events = [
            Event::from(ActuatorEvent::new(bulb, Timestamp::from_secs(1), true)),
            Event::from(ActuatorEvent::new(bulb, Timestamp::from_secs(2), false)),
            Event::from(ActuatorEvent::new(bulb, Timestamp::from_secs(3), true)),
        ];
        let obs = win(&events, &b);
        assert_eq!(obs.activated_actuators, vec![bulb]);
        // Off-only events do not count as activation.
        let off = [Event::from(ActuatorEvent::new(
            bulb,
            Timestamp::from_secs(1),
            false,
        ))];
        assert!(win(&off, &b).activated_actuators.is_empty());
    }

    #[test]
    fn unknown_sensor_ids_are_ignored() {
        let (reg, _, temp, _) = setup();
        let b = trained_binarizer(&reg, temp, &[20.0]);
        let events = [Event::from(SensorReading::new(
            SensorId::new(99),
            Timestamp::from_secs(1),
            true.into(),
        ))];
        let obs = win(&events, &b);
        assert_eq!(obs.state.count_ones(), 0);
    }

    #[test]
    fn threshold_trainer_skips_binary_and_actuator_events() {
        let (reg, motion, temp, bulb) = setup();
        let mut trainer = ThresholdTrainer::new(&reg);
        trainer.observe(&Event::from(SensorReading::new(
            motion,
            Timestamp::ZERO,
            true.into(),
        )));
        trainer.observe(&Event::from(ActuatorEvent::new(
            bulb,
            Timestamp::ZERO,
            true,
        )));
        trainer.observe(&Event::from(SensorReading::new(
            temp,
            Timestamp::ZERO,
            21.0.into(),
        )));
        let thresholds = trainer.finish();
        assert_eq!(thresholds.value_thre(motion), None);
        assert_eq!(thresholds.value_thre(temp), Some(21.0));
    }

    #[test]
    fn binarize_into_matches_binarize_and_reuses_buffers() {
        let (reg, motion, temp, bulb) = setup();
        let b = trained_binarizer(&reg, temp, &[18.0, 22.0]);
        let windows: Vec<Vec<Event>> = vec![
            vec![
                SensorReading::new(motion, Timestamp::from_secs(1), true.into()).into(),
                SensorReading::new(temp, Timestamp::from_secs(2), 25.0.into()).into(),
            ],
            vec![ActuatorEvent::new(bulb, Timestamp::from_secs(3), true).into()],
            vec![],
        ];
        let mut scratch = BinarizeScratch::default();
        let mut out = WindowObservation::default();
        for events in &windows {
            let expected = b.binarize(Timestamp::ZERO, Timestamp::from_mins(1), events);
            b.binarize_into(
                Timestamp::ZERO,
                Timestamp::from_mins(1),
                events,
                &mut scratch,
                &mut out,
            );
            assert_eq!(out, expected);
        }
    }

    #[test]
    #[should_panic(expected = "thresholds must cover")]
    fn binarizer_rejects_mismatched_thresholds() {
        let (reg, ..) = setup();
        let layout = BitLayout::for_registry(&reg);
        let other = DeviceRegistry::new();
        let empty = ThresholdTrainer::new(&other).finish();
        let _ = Binarizer::new(layout, empty);
    }
}
