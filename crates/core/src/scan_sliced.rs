//! A bit-sliced, popcount-bucketed candidate-scan index with SIMD kernels.
//!
//! [`ScanIndex`](crate::ScanIndex) walks the group table row-major: one
//! XOR+popcount chain per group, with a per-row popcount-prefilter branch.
//! [`SlicedScanIndex`] turns both axes of that loop inside out:
//!
//! * **Popcount-bucket cascade.** Rows are sorted by `(popcount, group id)`,
//!   so the `|pc(q) − pc(g)| > maxDist` lower bound becomes two binary
//!   searches that select one *contiguous* slot range instead of a
//!   per-row branch. Everything outside the range is skipped wholesale.
//! * **Bit-sliced planes.** Within blocks of [`BLOCK_LANES`] rows, the table
//!   is transposed column-major: plane `i` of a block holds bit `i` of all
//!   256 rows as four `u64` lane words. One 256-bit XOR against the
//!   broadcast query bit compares the same bit position of 256 groups at
//!   once, and per-lane distances accumulate in `K` vertical carry-save
//!   counter planes (`2^K − 1 ≥ maxDist`), with a sticky saturation plane.
//! * **Early abandon.** Once every lane of a block has saturated past
//!   `maxDist` (checked every [`EARLY_CHECK_BITS`] planes) the remaining
//!   planes of that block are skipped — with small thresholds most blocks
//!   die within the first few dozen of hh102's 270 planes.
//! * **Batched queries.** [`SlicedScanIndex::candidates_batch_into`] scans
//!   blocks in the outer loop and queries in the inner loop, so one pass
//!   over the plane data (kept cache-hot) serves a whole window batch.
//!
//! Kernels exist for AVX2 and SSE2 (`std::arch`, runtime-detected) and as a
//! portable four-sub-word scalar loop. All backends share the same plane
//! layout, block width, and early-abandon cadence, so results *and*
//! [`ScanProfile`] statistics are bit-identical across backends — the
//! cross-backend proptests in `tests/properties.rs` assert exactly that.
//! Results match the naive [`GroupTable::candidates`] /
//! [`GroupTable::nearest`] scans byte for byte.

// The AVX2/SSE2 kernels are the one place in dice-core that needs `unsafe`:
// `#[target_feature]` functions may only be invoked once the matching CPU
// feature has been verified at runtime (`ScanBackend::detect`), which the
// compiler cannot prove. Each call site carries a SAFETY note tying it to
// that detection.
#![allow(unsafe_code)]

use crate::bitset::BitSet;
use crate::groups::{Candidate, GroupTable};
use crate::scan::ScanProfile;

use dice_types::GroupId;

const WORD_BITS: usize = 64;

/// Rows per bit-sliced block: one 256-bit SIMD lane's worth.
pub const BLOCK_LANES: usize = 256;

/// `u64` lane words per block (`BLOCK_LANES / 64`).
const LANE_WORDS: usize = 4;

/// Saturation is polled every this many bit planes, on every backend, so
/// early-abandon statistics are backend-independent.
const EARLY_CHECK_BITS: usize = 32;

/// Largest `max_distance` served by the bit-sliced kernels (six counter
/// planes); beyond it [`SlicedScanIndex::candidates_into`] falls back to a
/// row-major scan of the bucket range.
pub const MAX_SLICED_DISTANCE: u32 = 63;

/// Environment variable that forces a scan backend (`scalar`, `sse2`,
/// `avx2`); unsupported values fall back to runtime detection.
pub const SCAN_BACKEND_ENV: &str = "DICE_SCAN_BACKEND";

/// Which compare kernel a [`SlicedScanIndex`] dispatches to.
///
/// All backends read the same plane layout and return bit-identical results;
/// they differ only in how many lane words one instruction touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ScanBackend {
    /// Portable four-sub-word `u64` loop; always available.
    #[default]
    Scalar,
    /// 128-bit `std::arch` kernel (two lane words per op).
    Sse2,
    /// 256-bit `std::arch` kernel (one block row per op).
    Avx2,
}

impl ScanBackend {
    /// Picks the best backend: the [`SCAN_BACKEND_ENV`] override if set *and*
    /// supported on this CPU, otherwise the widest runtime-detected feature.
    pub fn detect() -> ScanBackend {
        if let Ok(forced) = std::env::var(SCAN_BACKEND_ENV) {
            let forced = match forced.to_ascii_lowercase().as_str() {
                "scalar" => Some(ScanBackend::Scalar),
                "sse2" => Some(ScanBackend::Sse2),
                "avx2" => Some(ScanBackend::Avx2),
                _ => None,
            };
            if let Some(backend) = forced {
                if backend.is_supported() {
                    return backend;
                }
            }
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if is_x86_feature_detected!("avx2") {
                return ScanBackend::Avx2;
            }
            if is_x86_feature_detected!("sse2") {
                return ScanBackend::Sse2;
            }
        }
        ScanBackend::Scalar
    }

    /// Whether this backend's CPU feature is available at runtime.
    pub fn is_supported(self) -> bool {
        match self {
            ScanBackend::Scalar => true,
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            ScanBackend::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            ScanBackend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => false,
        }
    }

    /// Every backend supported on this CPU, widest last.
    pub fn available() -> Vec<ScanBackend> {
        [ScanBackend::Scalar, ScanBackend::Sse2, ScanBackend::Avx2]
            .into_iter()
            .filter(|b| b.is_supported())
            .collect()
    }

    /// Stable lowercase name (`scalar` / `sse2` / `avx2`), accepted back by
    /// [`SCAN_BACKEND_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            ScanBackend::Scalar => "scalar",
            ScanBackend::Sse2 => "sse2",
            ScanBackend::Avx2 => "avx2",
        }
    }

    /// Stable numeric encoding for telemetry gauges (0 scalar, 1 SSE2,
    /// 2 AVX2).
    pub fn gauge_value(self) -> i64 {
        match self {
            ScanBackend::Scalar => 0,
            ScanBackend::Sse2 => 1,
            ScanBackend::Avx2 => 2,
        }
    }
}

/// A bit-sliced, popcount-bucketed mirror of a [`GroupTable`].
///
/// Drop-in for [`ScanIndex`](crate::ScanIndex) on the engine's hot path —
/// same `candidates_into` / `nearest_into` contract, same naive-scan
/// equivalence — plus the batched entry points. Derived state: rebuilt
/// whenever the model's group table changes.
///
/// # Example
///
/// ```
/// use dice_core::{BitSet, GroupTable, SlicedScanIndex};
///
/// let mut table = GroupTable::new(5);
/// table.observe(&BitSet::from_indices(5, [0, 1]));
/// table.observe(&BitSet::from_indices(5, [3, 4]));
/// let index = SlicedScanIndex::build(&table);
///
/// let query = BitSet::from_indices(5, [0]);
/// assert_eq!(index.candidates(&query, 1), table.candidates(&query, 1));
/// assert_eq!(index.nearest(&query), table.nearest(&query));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlicedScanIndex {
    num_bits: usize,
    words_per_row: usize,
    backend: ScanBackend,
    /// `slot_to_group[slot]` = original group id of the row stored at
    /// `slot`; slots are sorted by `(popcount, group id)`.
    slot_to_group: Vec<u32>,
    /// Popcount per slot, ascending — the bucket-cascade search key.
    popcounts: Vec<u32>,
    /// Row-major packed rows in slot order, for the nearest cascade and the
    /// `max_distance > MAX_SLICED_DISTANCE` fallback.
    row_words: Vec<u64>,
    /// Column-major bit planes: block `b`, plane `i`, lane word `k` lives at
    /// `planes[(b * num_bits + i) * LANE_WORDS + k]`.
    planes: Vec<u64>,
}

impl SlicedScanIndex {
    /// Builds the index from a group table with the runtime-detected backend.
    pub fn build(table: &GroupTable) -> Self {
        Self::with_backend(table, ScanBackend::detect())
    }

    /// Builds the index with an explicit backend (tests / CI forcing).
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not supported on this CPU.
    pub fn with_backend(table: &GroupTable, backend: ScanBackend) -> Self {
        assert!(
            backend.is_supported(),
            "scan backend {} not supported on this CPU",
            backend.name()
        );
        let num_bits = table.num_bits();
        let words_per_row = num_bits.div_ceil(WORD_BITS);
        let n = table.len();

        // Slot order: ascending (popcount, group id).
        let mut order: Vec<(u32, u32)> = table
            .iter()
            .map(|(id, state)| (state.count_ones(), id.index() as u32))
            .collect();
        order.sort_unstable();

        let mut slot_to_group = Vec::with_capacity(n);
        let mut popcounts = Vec::with_capacity(n);
        let mut row_words = Vec::with_capacity(n * words_per_row);
        let num_blocks = n.div_ceil(BLOCK_LANES);
        let mut planes = vec![0u64; num_blocks * num_bits * LANE_WORDS];
        for (slot, &(pc, group)) in order.iter().enumerate() {
            slot_to_group.push(group);
            popcounts.push(pc);
            let state = table.state(GroupId::new(group));
            // Clamp to the table width: a corrupt table (verifier test fodder)
            // may hold wider rows; building must not panic on it.
            let words = state.as_words();
            for k in 0..words_per_row {
                row_words.push(words.get(k).copied().unwrap_or(0));
            }
            let block = slot / BLOCK_LANES;
            let lane = slot % BLOCK_LANES;
            let lane_word = (block * num_bits) * LANE_WORDS + lane / WORD_BITS;
            let lane_bit = 1u64 << (lane % WORD_BITS);
            for i in state.ones().take_while(|&i| i < num_bits) {
                planes[lane_word + i * LANE_WORDS] |= lane_bit;
            }
        }

        SlicedScanIndex {
            num_bits,
            words_per_row,
            backend,
            slot_to_group,
            popcounts,
            row_words,
            planes,
        }
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        self.popcounts.len()
    }

    /// Whether the index holds no groups.
    pub fn is_empty(&self) -> bool {
        self.popcounts.is_empty()
    }

    /// Width of the indexed state sets, in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The kernel this index dispatches to.
    pub fn backend(&self) -> ScanBackend {
        self.backend
    }

    /// The contiguous slot range whose popcounts lie within `max_distance`
    /// of `query_pc` — everything outside it is pruned without XOR work.
    fn bucket_range(&self, query_pc: u32, max_distance: u32) -> (usize, usize) {
        let lo = query_pc.saturating_sub(max_distance);
        let start = self.popcounts.partition_point(|&pc| pc < lo);
        let end = self
            .popcounts
            .partition_point(|&pc| u64::from(pc) <= u64::from(query_pc) + u64::from(max_distance));
        (start, end)
    }

    /// Fills `out` with every group within Hamming distance `max_distance`
    /// of `state` (inclusive), sorted by ascending distance then group id —
    /// exactly [`GroupTable::candidates`], without allocating when `out` has
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn candidates_into(
        &self,
        state: &BitSet,
        max_distance: u32,
        out: &mut Vec<Candidate>,
    ) -> ScanProfile {
        assert_eq!(state.len(), self.num_bits, "query width mismatch");
        out.clear();
        let mut profile = ScanProfile {
            rows: self.len() as u32,
            ..ScanProfile::default()
        };
        self.candidates_append(state, max_distance, out, &mut profile);
        out.sort_unstable_by_key(|c| (c.distance, c.group));
        profile
    }

    /// Scans one query, appending unsorted matches and accumulating into
    /// `profile` (shared by the single and batched entry points).
    fn candidates_append(
        &self,
        state: &BitSet,
        max_distance: u32,
        out: &mut Vec<Candidate>,
        profile: &mut ScanProfile,
    ) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let (start, end) = self.bucket_range(state.count_ones(), max_distance);
        profile.pruned += (n - (end - start)) as u32;
        if start >= end {
            return;
        }
        if max_distance > MAX_SLICED_DISTANCE {
            // Counter planes would outgrow the packed rows; scan the bucket
            // range row-major instead.
            let query = state.as_words();
            for slot in start..end {
                let row = &self.row_words[slot * self.words_per_row..][..self.words_per_row];
                let mut distance = 0u32;
                let mut within = true;
                for (a, b) in query.iter().zip(row) {
                    distance += (a ^ b).count_ones();
                    if distance > max_distance {
                        within = false;
                        break;
                    }
                }
                if within {
                    out.push(Candidate {
                        group: GroupId::new(self.slot_to_group[slot]),
                        distance,
                    });
                }
            }
            return;
        }
        let block_lo = start / BLOCK_LANES;
        let block_hi = end.div_ceil(BLOCK_LANES);
        dispatch_counter_planes!(counter_planes(max_distance), K => {
            for block in block_lo..block_hi {
                self.scan_block::<K>(block, state.as_words(), max_distance, out, profile);
            }
        });
    }

    /// Runs the backend kernel over one block and extracts matches.
    ///
    /// Lanes past the end of the index are pre-saturated, and lanes whose
    /// popcount falls outside the query's bucket range are rejected by their
    /// exact distance, so whole blocks are always processed.
    fn scan_block<const K: usize>(
        &self,
        block: usize,
        query: &[u64],
        max_distance: u32,
        out: &mut Vec<Candidate>,
        profile: &mut ScanProfile,
    ) {
        let planes =
            &self.planes[block * self.num_bits * LANE_WORDS..][..self.num_bits * LANE_WORDS];
        let valid = (self.len() - block * BLOCK_LANES).min(BLOCK_LANES);
        let mut sat_init = [0u64; LANE_WORDS];
        for (k, word) in sat_init.iter_mut().enumerate() {
            *word = !lane_mask(valid, k);
        }
        let mut counters = [[0u64; LANE_WORDS]; K];
        let mut sat = [0u64; LANE_WORDS];
        let early = match self.backend {
            ScanBackend::Scalar => scan_block_scalar::<K>(
                planes,
                query,
                self.num_bits,
                &sat_init,
                &mut counters,
                &mut sat,
            ),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `self.backend` is only ever set to Sse2/Avx2 when
            // `ScanBackend::is_supported` confirmed the CPU feature at
            // runtime (enforced in `with_backend`).
            ScanBackend::Sse2 => unsafe {
                scan_block_sse2::<K>(
                    planes,
                    query,
                    self.num_bits,
                    &sat_init,
                    &mut counters,
                    &mut sat,
                )
            },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above — AVX2 was runtime-detected before dispatch.
            ScanBackend::Avx2 => unsafe {
                scan_block_avx2::<K>(
                    planes,
                    query,
                    self.num_bits,
                    &sat_init,
                    &mut counters,
                    &mut sat,
                )
            },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => unreachable!("non-scalar backend on unsupported target"),
        };
        profile.blocks += 1;
        if early {
            profile.early_stops += 1;
            return;
        }
        // Extract lanes whose exact count equals each admissible distance.
        for d in 0..=max_distance {
            for k in 0..LANE_WORDS {
                let mut eq = !sat[k];
                for (j, counter) in counters.iter().enumerate() {
                    let c = counter[k];
                    eq &= if (d >> j) & 1 == 1 { c } else { !c };
                }
                while eq != 0 {
                    let lane = eq.trailing_zeros() as usize;
                    eq &= eq - 1;
                    let slot = block * BLOCK_LANES + k * WORD_BITS + lane;
                    debug_assert!(slot < self.len(), "phantom lane escaped saturation");
                    out.push(Candidate {
                        group: GroupId::new(self.slot_to_group[slot]),
                        distance: d,
                    });
                }
            }
        }
    }

    /// Fills `out` with the nearest group(s) to `state`: minimal distance,
    /// all ties, ascending by group id — exactly [`GroupTable::nearest`],
    /// without allocating when `out` has capacity.
    ///
    /// Walks popcount buckets outward from the query's popcount and stops
    /// once the popcount gap alone exceeds the best distance found, so only
    /// a thin band of rows is ever compared. Leaves `out` empty only for an
    /// empty index.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn nearest_into(&self, state: &BitSet, out: &mut Vec<Candidate>) -> ScanProfile {
        assert_eq!(state.len(), self.num_bits, "query width mismatch");
        out.clear();
        let n = self.len();
        let mut profile = ScanProfile {
            rows: n as u32,
            ..ScanProfile::default()
        };
        if n == 0 {
            return profile;
        }
        let query = state.as_words();
        let query_pc = state.count_ones();
        let max_pc = *self.popcounts.last().expect("non-empty index");
        let mut best = u32::MAX;
        let mut visited = 0u32;
        let mut gap = 0u32;
        loop {
            // The popcount gap lower-bounds the distance: once it exceeds
            // the best distance seen, no further bucket can even tie.
            if best != u32::MAX && gap > best {
                break;
            }
            let low_exhausted = gap > query_pc;
            let high_exhausted = u64::from(query_pc) + u64::from(gap) > u64::from(max_pc);
            if low_exhausted && high_exhausted {
                break;
            }
            let mut sides = [None, None];
            if !low_exhausted {
                sides[0] = Some(query_pc - gap);
            }
            if gap > 0 && !high_exhausted {
                sides[1] = Some(query_pc + gap);
            }
            for pc in sides.into_iter().flatten() {
                let start = self.popcounts.partition_point(|&p| p < pc);
                let end = self.popcounts.partition_point(|&p| p <= pc);
                for slot in start..end {
                    visited += 1;
                    let row = &self.row_words[slot * self.words_per_row..][..self.words_per_row];
                    let mut distance = 0u32;
                    let mut beaten = false;
                    for (a, b) in query.iter().zip(row) {
                        distance += (a ^ b).count_ones();
                        if distance > best {
                            beaten = true;
                            break;
                        }
                    }
                    if beaten {
                        continue;
                    }
                    if distance < best {
                        best = distance;
                        out.clear();
                    }
                    out.push(Candidate {
                        group: GroupId::new(self.slot_to_group[slot]),
                        distance,
                    });
                }
            }
            gap += 1;
        }
        // Ties surface in (popcount, group) slot order; the naive scan
        // returns them ascending by group id.
        out.sort_unstable_by_key(|c| c.group);
        profile.pruned = n as u32 - visited;
        profile
    }

    /// Batched [`SlicedScanIndex::candidates_into`]: one pass over the plane
    /// data serves every query in `queries`.
    ///
    /// Blocks are the outer loop and queries the inner loop, so each block's
    /// planes stay cache-hot across the whole batch. `out` is resized to
    /// `queries.len()`, reusing inner buffers. Returns the element-wise sum
    /// of the per-query profiles — identical to running the single-query
    /// entry point per query.
    ///
    /// # Panics
    ///
    /// Panics if any query width does not match the index.
    pub fn candidates_batch_into(
        &self,
        queries: &[&BitSet],
        max_distance: u32,
        out: &mut Vec<Vec<Candidate>>,
    ) -> ScanProfile {
        out.resize_with(queries.len(), Vec::new);
        out.truncate(queries.len());
        let mut profile = ScanProfile::default();
        for (query, slots) in queries.iter().zip(out.iter_mut()) {
            assert_eq!(query.len(), self.num_bits, "query width mismatch");
            slots.clear();
            profile.rows += self.len() as u32;
        }
        let n = self.len();
        if n == 0 || queries.is_empty() {
            return profile;
        }
        if max_distance > MAX_SLICED_DISTANCE {
            for (query, slots) in queries.iter().zip(out.iter_mut()) {
                self.candidates_append(query, max_distance, slots, &mut profile);
                slots.sort_unstable_by_key(|c| (c.distance, c.group));
            }
            return profile;
        }
        // Per-query bucket block ranges, then block-major over their union.
        let mut block_span = (usize::MAX, 0usize);
        let ranges: Vec<(usize, usize)> = queries
            .iter()
            .map(|query| {
                let (start, end) = self.bucket_range(query.count_ones(), max_distance);
                profile.pruned += (n - (end - start)) as u32;
                if start >= end {
                    return (usize::MAX, 0);
                }
                let blocks = (start / BLOCK_LANES, end.div_ceil(BLOCK_LANES));
                block_span.0 = block_span.0.min(blocks.0);
                block_span.1 = block_span.1.max(blocks.1);
                blocks
            })
            .collect();
        dispatch_counter_planes!(counter_planes(max_distance), K => {
            for block in block_span.0..block_span.1 {
                for ((query, slots), &(lo, hi)) in
                    queries.iter().zip(out.iter_mut()).zip(&ranges)
                {
                    if block >= lo && block < hi {
                        self.scan_block::<K>(
                            block,
                            query.as_words(),
                            max_distance,
                            slots,
                            &mut profile,
                        );
                    }
                }
            }
        });
        for slots in out.iter_mut() {
            slots.sort_unstable_by_key(|c| (c.distance, c.group));
        }
        profile
    }

    /// Batched [`SlicedScanIndex::nearest_into`] over a slice of queries.
    ///
    /// The nearest cascade is query-adaptive (its bucket walk depends on the
    /// running best distance), so this amortizes call overhead rather than
    /// plane passes. Returns the element-wise sum of per-query profiles.
    ///
    /// # Panics
    ///
    /// Panics if any query width does not match the index.
    pub fn nearest_batch_into(
        &self,
        queries: &[&BitSet],
        out: &mut Vec<Vec<Candidate>>,
    ) -> ScanProfile {
        out.resize_with(queries.len(), Vec::new);
        out.truncate(queries.len());
        let mut profile = ScanProfile::default();
        for (query, slots) in queries.iter().zip(out.iter_mut()) {
            let p = self.nearest_into(query, slots);
            profile.rows += p.rows;
            profile.pruned += p.pruned;
            profile.blocks += p.blocks;
            profile.early_stops += p.early_stops;
        }
        profile
    }

    /// Allocating convenience wrapper over
    /// [`SlicedScanIndex::candidates_into`].
    pub fn candidates(&self, state: &BitSet, max_distance: u32) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.candidates_into(state, max_distance, &mut out);
        out
    }

    /// Allocating convenience wrapper over [`SlicedScanIndex::nearest_into`].
    pub fn nearest(&self, state: &BitSet) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.nearest_into(state, &mut out);
        out
    }
}

/// Number of vertical counter planes needed to count distances `0..=2^K − 1`
/// with `2^K − 1 ≥ max_distance`.
fn counter_planes(max_distance: u32) -> usize {
    debug_assert!(max_distance <= MAX_SLICED_DISTANCE);
    (u32::BITS - max_distance.leading_zeros()).max(1) as usize
}

/// Bits of lane word `k` that correspond to real rows when `valid` lanes of
/// the block are populated.
fn lane_mask(valid: usize, k: usize) -> u64 {
    let lo = k * WORD_BITS;
    if valid >= lo + WORD_BITS {
        u64::MAX
    } else if valid <= lo {
        0
    } else {
        (1u64 << (valid - lo)) - 1
    }
}

/// Dispatches a compile-time counter-plane count (`1..=6`, covering
/// [`MAX_SLICED_DISTANCE`]) so counters stay in registers.
macro_rules! dispatch_counter_planes {
    ($k:expr, $K:ident => $body:block) => {
        match $k {
            1 => {
                const $K: usize = 1;
                $body
            }
            2 => {
                const $K: usize = 2;
                $body
            }
            3 => {
                const $K: usize = 3;
                $body
            }
            4 => {
                const $K: usize = 4;
                $body
            }
            5 => {
                const $K: usize = 5;
                $body
            }
            6 => {
                const $K: usize = 6;
                $body
            }
            other => unreachable!("counter planes out of range: {other}"),
        }
    };
}
use dispatch_counter_planes;

/// Portable kernel: XOR-accumulates one block's bit planes into `K` vertical
/// counters, four `u64` sub-words per step. Returns whether the block was
/// abandoned early (every lane saturated past the threshold).
fn scan_block_scalar<const K: usize>(
    planes: &[u64],
    query: &[u64],
    num_bits: usize,
    sat_init: &[u64; LANE_WORDS],
    counters: &mut [[u64; LANE_WORDS]; K],
    sat: &mut [u64; LANE_WORDS],
) -> bool {
    *counters = [[0u64; LANE_WORDS]; K];
    *sat = *sat_init;
    for i in 0..num_bits {
        let qbit = (query[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
        let qmask = 0u64.wrapping_sub(qbit);
        let plane = &planes[i * LANE_WORDS..][..LANE_WORDS];
        for k in 0..LANE_WORDS {
            let mut carry = plane[k] ^ qmask;
            for counter in counters.iter_mut() {
                let t = counter[k] & carry;
                counter[k] ^= carry;
                carry = t;
            }
            sat[k] |= carry;
        }
        if (i + 1) % EARLY_CHECK_BITS == 0 && sat.iter().all(|&w| w == u64::MAX) {
            return true;
        }
    }
    false
}

/// SSE2 kernel: two 128-bit halves per block row. Bit-identical to the
/// scalar kernel, including the early-abandon cadence.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "sse2")]
unsafe fn scan_block_sse2<const K: usize>(
    planes: &[u64],
    query: &[u64],
    num_bits: usize,
    sat_init: &[u64; LANE_WORDS],
    counters_out: &mut [[u64; LANE_WORDS]; K],
    sat_out: &mut [u64; LANE_WORDS],
) -> bool {
    use std::arch::x86_64::*;
    // SAFETY: every load/store below reads or writes 16 bytes from slices /
    // arrays whose bounds are checked before the pointer cast; `loadu` /
    // `storeu` have no alignment requirement.
    unsafe {
        let mut counters = [[_mm_setzero_si128(); 2]; K];
        let mut sat = [
            _mm_loadu_si128(sat_init[0..2].as_ptr().cast()),
            _mm_loadu_si128(sat_init[2..4].as_ptr().cast()),
        ];
        let mut early = false;
        for i in 0..num_bits {
            let qbit = (query[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
            let qmask = _mm_set1_epi64x(0i64.wrapping_sub(qbit as i64));
            let plane = &planes[i * LANE_WORDS..][..LANE_WORDS];
            for h in 0..2 {
                let p = _mm_loadu_si128(plane[h * 2..h * 2 + 2].as_ptr().cast());
                let mut carry = _mm_xor_si128(p, qmask);
                for counter in counters.iter_mut() {
                    let t = _mm_and_si128(counter[h], carry);
                    counter[h] = _mm_xor_si128(counter[h], carry);
                    carry = t;
                }
                sat[h] = _mm_or_si128(sat[h], carry);
            }
            if (i + 1) % EARLY_CHECK_BITS == 0 {
                let both = _mm_and_si128(sat[0], sat[1]);
                if _mm_movemask_epi8(_mm_cmpeq_epi8(both, _mm_set1_epi8(-1))) == 0xFFFF {
                    early = true;
                    break;
                }
            }
        }
        for (j, counter) in counters.iter().enumerate() {
            _mm_storeu_si128(counters_out[j][0..2].as_mut_ptr().cast(), counter[0]);
            _mm_storeu_si128(counters_out[j][2..4].as_mut_ptr().cast(), counter[1]);
        }
        _mm_storeu_si128(sat_out[0..2].as_mut_ptr().cast(), sat[0]);
        _mm_storeu_si128(sat_out[2..4].as_mut_ptr().cast(), sat[1]);
        early
    }
}

/// AVX2 kernel: one 256-bit op per block row. Bit-identical to the scalar
/// kernel, including the early-abandon cadence.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn scan_block_avx2<const K: usize>(
    planes: &[u64],
    query: &[u64],
    num_bits: usize,
    sat_init: &[u64; LANE_WORDS],
    counters_out: &mut [[u64; LANE_WORDS]; K],
    sat_out: &mut [u64; LANE_WORDS],
) -> bool {
    use std::arch::x86_64::*;
    // SAFETY: every load/store below reads or writes 32 bytes from slices /
    // arrays whose bounds are checked before the pointer cast; `loadu` /
    // `storeu` have no alignment requirement.
    unsafe {
        let mut counters = [_mm256_setzero_si256(); K];
        let mut sat = _mm256_loadu_si256(sat_init.as_ptr().cast());
        let ones = _mm256_set1_epi64x(-1);
        let mut early = false;
        for i in 0..num_bits {
            let qbit = (query[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
            let qmask = _mm256_set1_epi64x(0i64.wrapping_sub(qbit as i64));
            let plane = &planes[i * LANE_WORDS..][..LANE_WORDS];
            let p = _mm256_loadu_si256(plane.as_ptr().cast());
            let mut carry = _mm256_xor_si256(p, qmask);
            for counter in counters.iter_mut() {
                let t = _mm256_and_si256(*counter, carry);
                *counter = _mm256_xor_si256(*counter, carry);
                carry = t;
            }
            sat = _mm256_or_si256(sat, carry);
            if (i + 1) % EARLY_CHECK_BITS == 0 && _mm256_testc_si256(sat, ones) != 0 {
                early = true;
                break;
            }
        }
        for (j, counter) in counters.iter().enumerate() {
            _mm256_storeu_si256(counters_out[j].as_mut_ptr().cast(), *counter);
        }
        _mm256_storeu_si256(sat_out.as_mut_ptr().cast(), sat);
        early
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift generator so tests need no RNG dependency.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn random_table(num_bits: usize, rows: usize, seed: u64) -> GroupTable {
        let mut rng = XorShift(seed | 1);
        let mut table = GroupTable::new(num_bits);
        while table.len() < rows {
            let density = rng.next() % 64;
            let state = BitSet::from_indices(
                num_bits,
                (0..num_bits).filter(|_| (rng.next() % 64) < density),
            );
            table.observe(&state);
        }
        table
    }

    fn random_query(num_bits: usize, rng: &mut XorShift) -> BitSet {
        let density = rng.next() % 64;
        BitSet::from_indices(
            num_bits,
            (0..num_bits).filter(|_| (rng.next() % 64) < density),
        )
    }

    fn backends_under_test() -> Vec<ScanBackend> {
        if cfg!(miri) {
            vec![ScanBackend::Scalar]
        } else {
            ScanBackend::available()
        }
    }

    #[test]
    fn counter_plane_count_covers_threshold() {
        assert_eq!(counter_planes(0), 1);
        assert_eq!(counter_planes(1), 1);
        assert_eq!(counter_planes(3), 2);
        assert_eq!(counter_planes(4), 3);
        assert_eq!(counter_planes(63), 6);
        for d in 0..=MAX_SLICED_DISTANCE {
            let k = counter_planes(d);
            assert!((1u32 << k) > d, "K={k} cannot represent {d}");
        }
    }

    #[test]
    fn lane_mask_tracks_partial_blocks() {
        assert_eq!(lane_mask(256, 3), u64::MAX);
        assert_eq!(lane_mask(0, 0), 0);
        assert_eq!(lane_mask(65, 1), 1);
        assert_eq!(lane_mask(64, 0), u64::MAX);
        assert_eq!(lane_mask(63, 0), u64::MAX >> 1);
    }

    #[test]
    fn matches_naive_scan_on_every_backend() {
        let num_bits = 130; // multi-word rows, partial last word
        let table = random_table(num_bits, 300, 0x5eed); // partial second block
        let mut rng = XorShift(42);
        let queries: Vec<BitSet> = (0..8).map(|_| random_query(num_bits, &mut rng)).collect();
        for backend in backends_under_test() {
            let index = SlicedScanIndex::with_backend(&table, backend);
            for query in &queries {
                for max in [0, 1, 3, 7, 64, 130] {
                    assert_eq!(
                        index.candidates(query, max),
                        table.candidates(query, max),
                        "backend={} max={max}",
                        backend.name()
                    );
                }
                assert_eq!(
                    index.nearest(query),
                    table.nearest(query),
                    "backend={}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn backends_agree_bit_for_bit_including_profiles() {
        let table = random_table(96, 520, 7);
        let mut rng = XorShift(9);
        let queries: Vec<BitSet> = (0..6).map(|_| random_query(96, &mut rng)).collect();
        let reference = SlicedScanIndex::with_backend(&table, ScanBackend::Scalar);
        for backend in backends_under_test() {
            let index = SlicedScanIndex::with_backend(&table, backend);
            for query in &queries {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let pa = reference.candidates_into(query, 5, &mut a);
                let pb = index.candidates_into(query, 5, &mut b);
                assert_eq!(a, b, "backend={}", backend.name());
                assert_eq!(pa, pb, "profile backend={}", backend.name());
            }
        }
    }

    #[test]
    fn batch_matches_single_queries_and_sums_profiles() {
        let table = random_table(70, 300, 0xbeef);
        let mut rng = XorShift(3);
        let queries: Vec<BitSet> = (0..10).map(|_| random_query(70, &mut rng)).collect();
        let refs: Vec<&BitSet> = queries.iter().collect();
        for backend in backends_under_test() {
            let index = SlicedScanIndex::with_backend(&table, backend);
            for max in [0, 2, 6, 80] {
                let mut batch = Vec::new();
                let batch_profile = index.candidates_batch_into(&refs, max, &mut batch);
                let mut sum = ScanProfile::default();
                for (query, got) in queries.iter().zip(&batch) {
                    let mut single = Vec::new();
                    let p = index.candidates_into(query, max, &mut single);
                    assert_eq!(got, &single, "backend={} max={max}", backend.name());
                    sum.rows += p.rows;
                    sum.pruned += p.pruned;
                    sum.blocks += p.blocks;
                    sum.early_stops += p.early_stops;
                }
                assert_eq!(batch_profile, sum, "backend={} max={max}", backend.name());
            }
            let mut batch = Vec::new();
            let _ = index.nearest_batch_into(&refs, &mut batch);
            for (query, got) in queries.iter().zip(&batch) {
                assert_eq!(got, &index.nearest(query), "backend={}", backend.name());
            }
        }
    }

    #[test]
    fn bucket_cascade_prunes_out_of_range_rows() {
        let mut table = GroupTable::new(8);
        table.observe(&BitSet::from_indices(8, []));
        table.observe(&BitSet::from_indices(8, [0, 1, 2, 3, 4, 5, 6, 7]));
        let index = SlicedScanIndex::with_backend(&table, ScanBackend::Scalar);
        let query = BitSet::from_indices(8, [0, 1]);
        let mut out = Vec::new();
        // Popcounts 0 and 8 vs query popcount 2 at threshold 1: both rows
        // fall outside the bucket range, no block is ever touched.
        let profile = index.candidates_into(&query, 1, &mut out);
        assert_eq!(profile.rows, 2);
        assert_eq!(profile.pruned, 2);
        assert_eq!(profile.blocks, 0);
        assert!(out.is_empty());
        // Threshold 2 admits the popcount-0 row: one block scanned.
        let profile = index.candidates_into(&query, 2, &mut out);
        assert_eq!(profile.pruned, 1);
        assert_eq!(profile.blocks, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_index_yields_empty_results() {
        let index = SlicedScanIndex::build(&GroupTable::new(4));
        assert!(index.is_empty());
        assert!(index.candidates(&BitSet::new(4), 4).is_empty());
        assert!(index.nearest(&BitSet::new(4)).is_empty());
        let query = BitSet::new(4);
        let mut batch = Vec::new();
        let profile = index.candidates_batch_into(&[&query], 4, &mut batch);
        assert_eq!(profile.rows, 0);
        assert!(batch[0].is_empty());
    }

    #[test]
    fn scratch_buffers_are_reused_without_reallocation() {
        let table = random_table(40, 64, 11);
        let index = SlicedScanIndex::with_backend(&table, ScanBackend::Scalar);
        let mut out = Vec::with_capacity(table.len());
        let cap = out.capacity();
        let mut rng = XorShift(5);
        for _ in 0..4 {
            let query = random_query(40, &mut rng);
            let _ = index.candidates_into(&query, 40, &mut out);
            assert_eq!(out.capacity(), cap, "candidates_into must not grow");
            let _ = index.nearest_into(&query, &mut out);
            assert_eq!(out.capacity(), cap, "nearest_into must not grow");
        }
    }

    #[test]
    fn nearest_ties_come_back_in_group_order() {
        let mut table = GroupTable::new(3);
        table.observe(&BitSet::from_indices(3, [0]));
        table.observe(&BitSet::from_indices(3, [1]));
        let index = SlicedScanIndex::with_backend(&table, ScanBackend::Scalar);
        let query = BitSet::from_indices(3, [2]);
        assert_eq!(index.nearest(&query), table.nearest(&query));
        assert_eq!(index.nearest(&query).len(), 2);
    }

    #[test]
    fn multi_block_index_finds_candidates_in_every_block() {
        // > 256 rows forces a second block; identical popcounts keep them in
        // one bucket so both blocks are scanned.
        let num_bits = 600;
        let mut table = GroupTable::new(num_bits);
        for i in 0..300 {
            table.observe(&BitSet::from_indices(num_bits, [i, i + 300 - 1]));
        }
        let index = SlicedScanIndex::with_backend(&table, ScanBackend::Scalar);
        let query = BitSet::from_indices(num_bits, [0, 299]);
        assert_eq!(index.candidates(&query, 4), table.candidates(&query, 4));
        let mut out = Vec::new();
        let profile = index.candidates_into(&query, 4, &mut out);
        assert_eq!(profile.blocks, 2);
    }

    #[test]
    fn backend_env_round_trips_names() {
        for backend in [ScanBackend::Scalar, ScanBackend::Sse2, ScanBackend::Avx2] {
            assert!(!backend.name().is_empty());
        }
        assert!(ScanBackend::Scalar.is_supported());
        assert!(ScanBackend::available().contains(&ScanBackend::Scalar));
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn width_mismatch_panics() {
        let index = SlicedScanIndex::build(&random_table(8, 4, 1));
        let _ = index.candidates(&BitSet::new(4), 1);
    }
}
