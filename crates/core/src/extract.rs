//! Context extraction: the precomputation phase.
//!
//! [`ContextExtractor`] runs the full two-pass precomputation over an
//! [`EventLog`]: pass one trains the numeric `valueThre` thresholds, pass two
//! windows the log, builds the group table (correlation extraction,
//! Section 3.2.1) and the G2G/G2A/A2G matrices (transition extraction,
//! Section 3.2.2).
//!
//! [`ModelBuilder`] is the streaming half: callers that generate windows on
//! the fly (large simulated datasets) feed windows directly instead of
//! materializing one huge log.

use dice_types::{DeviceRegistry, Event, EventLog, GroupId, Timestamp};

use crate::binarize::{Binarizer, ThresholdTrainer, WindowObservation};
use crate::config::DiceConfig;
use crate::error::DiceError;
use crate::groups::GroupTable;
use crate::layout::BitLayout;
use crate::model::DiceModel;
use crate::scan_routed::RoutedScanIndex;
use crate::transition::TransitionModel;

/// Streaming builder for a [`DiceModel`].
///
/// Feed every precomputation window in time order via
/// [`ModelBuilder::observe_window`], then call [`ModelBuilder::finish`].
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    config: DiceConfig,
    binarizer: Binarizer,
    groups: GroupTable,
    transitions: TransitionModel,
    num_actuators: usize,
    prev: Option<(GroupId, Vec<dice_types::ActuatorId>)>,
    windows: u64,
    /// For a resumed build: the source model's scan index and window count,
    /// so `finish` can skip the index rebuild when nothing was observed.
    resumed: Option<(RoutedScanIndex, u64)>,
}

impl ModelBuilder {
    /// Creates a builder from a config, a registry, and trained thresholds.
    pub fn new(
        config: DiceConfig,
        registry: &DeviceRegistry,
        thresholds: crate::binarize::Thresholds,
    ) -> Result<Self, DiceError> {
        if registry.num_sensors() == 0 {
            return Err(DiceError::NoSensors);
        }
        let layout = BitLayout::for_registry(registry);
        let num_bits = layout.num_bits();
        Ok(ModelBuilder {
            config,
            binarizer: Binarizer::new(layout, thresholds),
            groups: GroupTable::new(num_bits),
            transitions: TransitionModel::new(),
            num_actuators: registry.num_actuators(),
            prev: None,
            windows: 0,
            resumed: None,
        })
    }

    /// The binarizer (usable to pre-binarize windows identically).
    pub fn binarizer(&self) -> &Binarizer {
        &self.binarizer
    }

    /// Observes one window of raw events (must be fed in time order).
    pub fn observe_window(&mut self, start: Timestamp, end: Timestamp, events: &[Event]) {
        let obs = self.binarizer.binarize(start, end, events);
        self.observe_binarized(&obs);
    }

    /// Observes one pre-binarized window.
    pub fn observe_binarized(&mut self, obs: &WindowObservation) {
        let group = self.groups.observe(&obs.state);
        if let Some((prev_group, prev_actuators)) = &self.prev {
            // G2G: consecutive window groups.
            self.transitions.record_g2g(*prev_group, group);
            // G2A: previous group followed by this window's activations.
            for &a in &obs.activated_actuators {
                self.transitions.record_g2a(*prev_group, a);
            }
            // A2G: previous window's activations followed by this group.
            for &a in prev_actuators {
                self.transitions.record_a2g(a, group);
            }
        }
        self.prev = Some((group, obs.activated_actuators.clone()));
        self.windows += 1;
    }

    /// Number of windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.windows
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::EmptyTrainingData`] if no window was observed.
    pub fn finish(self) -> Result<DiceModel, DiceError> {
        if self.windows == 0 {
            return Err(DiceError::EmptyTrainingData);
        }
        // A resumed build that observed no new windows left the group table
        // untouched, so the source model's scan index is still exact — reuse
        // it instead of rebuilding.
        if let Some((scan, baseline)) = self.resumed {
            if baseline == self.windows {
                return Ok(DiceModel::from_parts_with_scan(
                    self.config,
                    self.binarizer,
                    self.groups,
                    self.transitions,
                    self.num_actuators,
                    self.windows,
                    scan,
                ));
            }
        }
        Ok(DiceModel::from_parts(
            self.config,
            self.binarizer,
            self.groups,
            self.transitions,
            self.num_actuators,
            self.windows,
        ))
    }
}

impl ModelBuilder {
    /// Resumes training from an existing model: the returned builder starts
    /// with the model's groups, transitions, and thresholds, so additional
    /// fault-free data extends the context instead of replacing it.
    ///
    /// The paper's parameter study shows precision rising with the
    /// precomputation period; resumption lets a deployed gateway keep
    /// absorbing vetted data after the initial 300 hours (the numeric
    /// `valueThre` thresholds stay frozen — changing them would reinterpret
    /// the existing groups' level bits).
    pub fn resume(model: DiceModel) -> Self {
        let num_actuators = model.num_actuators();
        let windows = model.training_windows();
        let (config, binarizer, groups, transitions, scan) = model.into_parts();
        ModelBuilder {
            config,
            binarizer,
            groups,
            transitions,
            num_actuators,
            prev: None,
            windows,
            resumed: Some((scan, windows)),
        }
    }
}

/// Convenience two-pass extractor over a materialized [`EventLog`].
///
/// # Example
///
/// ```
/// use dice_core::{ContextExtractor, DiceConfig};
/// use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
///
/// # fn main() -> Result<(), dice_core::DiceError> {
/// let mut reg = DeviceRegistry::new();
/// let motion = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
/// let mut log = EventLog::new();
/// for minute in 0..10 {
///     log.push_sensor(SensorReading::new(
///         motion,
///         Timestamp::from_mins(minute),
///         (minute % 2 == 0).into(),
///     ));
/// }
/// let model = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut log)?;
/// assert_eq!(model.groups().len(), 2); // motion-on and motion-off states
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextExtractor {
    config: DiceConfig,
}

impl ContextExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: DiceConfig) -> Self {
        ContextExtractor { config }
    }

    /// Runs the full precomputation phase over `log`.
    ///
    /// # Errors
    ///
    /// Returns [`DiceError::NoSensors`] for an empty registry and
    /// [`DiceError::EmptyTrainingData`] for an empty log.
    pub fn extract(
        &self,
        registry: &DeviceRegistry,
        log: &mut EventLog,
    ) -> Result<DiceModel, DiceError> {
        if registry.num_sensors() == 0 {
            return Err(DiceError::NoSensors);
        }
        if log.is_empty() {
            return Err(DiceError::EmptyTrainingData);
        }

        // Pass 1: numeric thresholds (valueThre = training mean, Eq. 3.4).
        let mut trainer = ThresholdTrainer::new(registry);
        for event in log.events() {
            trainer.observe(event);
        }

        // Pass 2: groups and transitions.
        let mut builder = ModelBuilder::new(self.config.clone(), registry, trainer.finish())?;
        for window in log.windows(self.config.window()) {
            builder.observe_window(window.start, window.end, window.events);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{ActuatorEvent, ActuatorKind, Room, SensorKind, SensorReading};

    fn reg_with_motion_and_bulb() -> (DeviceRegistry, dice_types::SensorId, dice_types::ActuatorId)
    {
        let mut reg = DeviceRegistry::new();
        let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        (reg, m, b)
    }

    #[test]
    fn extract_builds_groups_and_transitions() {
        let (reg, m, b) = reg_with_motion_and_bulb();
        let mut log = EventLog::new();
        // Minute 0: motion on. Minute 1: quiet + bulb on. Minute 2: motion.
        log.push_sensor(SensorReading::new(m, Timestamp::from_secs(10), true.into()));
        log.push_actuator(ActuatorEvent::new(b, Timestamp::from_secs(70), true));
        log.push_sensor(SensorReading::new(
            m,
            Timestamp::from_secs(130),
            true.into(),
        ));
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        assert_eq!(model.groups().len(), 2); // {motion} and {quiet}
        assert_eq!(model.training_windows(), 3);
        // G2G: motion -> quiet and quiet -> motion.
        let g_motion = GroupId::new(0);
        let g_quiet = GroupId::new(1);
        assert!(model.transitions().g2g_observed(g_motion, g_quiet));
        assert!(model.transitions().g2g_observed(g_quiet, g_motion));
        // G2A: motion group preceded the bulb activation.
        assert!(model.transitions().g2a_observed(g_motion, b));
        // A2G: bulb activation preceded the motion group.
        assert!(model.transitions().a2g_observed(b, g_motion));
    }

    #[test]
    fn extract_rejects_empty_log() {
        let (reg, ..) = reg_with_motion_and_bulb();
        let mut log = EventLog::new();
        let err = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut log);
        assert_eq!(err.unwrap_err(), DiceError::EmptyTrainingData);
    }

    #[test]
    fn extract_rejects_empty_registry() {
        let reg = DeviceRegistry::new();
        let mut log = EventLog::new();
        log.push_actuator(ActuatorEvent::new(
            dice_types::ActuatorId::new(0),
            Timestamp::ZERO,
            true,
        ));
        let err = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut log);
        assert_eq!(err.unwrap_err(), DiceError::NoSensors);
    }

    #[test]
    fn builder_finish_requires_windows() {
        let (reg, ..) = reg_with_motion_and_bulb();
        let builder = ModelBuilder::new(
            DiceConfig::default(),
            &reg,
            ThresholdTrainer::new(&reg).finish(),
        )
        .unwrap();
        assert_eq!(builder.finish().unwrap_err(), DiceError::EmptyTrainingData);
    }

    #[test]
    fn first_window_records_no_transition() {
        let (reg, m, _) = reg_with_motion_and_bulb();
        let mut builder = ModelBuilder::new(
            DiceConfig::default(),
            &reg,
            ThresholdTrainer::new(&reg).finish(),
        )
        .unwrap();
        let events = [Event::from(SensorReading::new(
            m,
            Timestamp::ZERO,
            true.into(),
        ))];
        builder.observe_window(Timestamp::ZERO, Timestamp::from_mins(1), &events);
        let model = builder.finish().unwrap();
        assert_eq!(model.transitions().g2g().total(), 0);
        assert_eq!(model.groups().len(), 1);
    }

    #[test]
    fn resumed_training_extends_an_existing_model() {
        let (reg, m, _) = reg_with_motion_and_bulb();
        let mut log = EventLog::new();
        for minute in 0..20 {
            log.push_sensor(SensorReading::new(
                m,
                Timestamp::from_mins(minute),
                (minute % 2 == 0).into(),
            ));
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        let before_windows = model.training_windows();
        let before_groups = model.groups().len();

        // Resume with new data that includes a never-seen state (both-quiet
        // followed by the motion firing three minutes in a row).
        let mut builder = ModelBuilder::resume(model);
        for minute in 0..6 {
            let start = Timestamp::from_mins(100 + minute);
            let end = start + dice_types::TimeDelta::from_mins(1);
            let events = [Event::from(SensorReading::new(m, start, true.into()))];
            builder.observe_window(start, end, &events);
        }
        let extended = builder.finish().unwrap();
        assert_eq!(extended.training_windows(), before_windows + 6);
        assert_eq!(extended.groups().len(), before_groups);
        // The motion-on self-transition, unseen before (strict alternation),
        // is now legal.
        let g_on = extended
            .groups()
            .lookup(&crate::bitset::BitSet::from_indices(1, [0]))
            .unwrap();
        assert!(extended.transitions().g2g_observed(g_on, g_on));
    }

    #[test]
    fn resume_then_finish_without_windows_keeps_the_model_intact() {
        let (reg, m, _) = reg_with_motion_and_bulb();
        let mut log = EventLog::new();
        for minute in 0..10 {
            log.push_sensor(SensorReading::new(
                m,
                Timestamp::from_mins(minute),
                (minute % 2 == 0).into(),
            ));
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut log)
            .unwrap();
        let expected = model.clone();
        // No new window: finish must reuse the resumed scan index (not
        // rebuild) and reproduce the model exactly, scan included.
        let roundtripped = ModelBuilder::resume(model).finish().unwrap();
        assert_eq!(roundtripped, expected);
        assert_eq!(roundtripped.scan().len(), expected.groups().len());
    }

    #[test]
    fn self_transitions_are_recorded() {
        let (reg, m, _) = reg_with_motion_and_bulb();
        let mut builder = ModelBuilder::new(
            DiceConfig::default(),
            &reg,
            ThresholdTrainer::new(&reg).finish(),
        )
        .unwrap();
        for minute in 0..3 {
            let events = [Event::from(SensorReading::new(
                m,
                Timestamp::from_mins(minute),
                true.into(),
            ))];
            builder.observe_window(
                Timestamp::from_mins(minute),
                Timestamp::from_mins(minute + 1),
                &events,
            );
        }
        let model = builder.finish().unwrap();
        assert_eq!(
            model
                .transitions()
                .g2g_prob(GroupId::new(0), GroupId::new(0)),
            1.0
        );
    }
}
