//! The trained DICE model: the output of the precomputation phase.

use serde::{Deserialize, Serialize};

use dice_types::{DeviceRegistry, GroupId};

use crate::binarize::Binarizer;
use crate::config::DiceConfig;
use crate::groups::GroupTable;
use crate::layout::BitLayout;
use crate::scan_routed::RoutedScanIndex;
use crate::transition::TransitionModel;

/// Everything DICE precomputes (Figure 3.2, left half): the binarizer with
/// its trained thresholds, the group table, and the three transition
/// matrices.
///
/// Models serialize with serde so a gateway can persist the precomputation
/// result and reload it at boot. After deserialization call
/// [`DiceModel::rebuild_index`] once to restore the exact-match group index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiceModel {
    config: DiceConfig,
    binarizer: Binarizer,
    groups: GroupTable,
    transitions: TransitionModel,
    num_actuators: usize,
    training_windows: u64,
    /// Routed scan mirror of `groups` for the hot candidate scan —
    /// row-major below the crossover, bit-sliced above it; derived state,
    /// rebuilt from the table on construction and after deserialization.
    #[serde(skip)]
    scan: RoutedScanIndex,
}

impl DiceModel {
    /// Assembles a model from its parts. Prefer
    /// [`ContextExtractor`](crate::ContextExtractor) or
    /// [`ModelBuilder`](crate::ModelBuilder) over calling this directly.
    pub fn from_parts(
        config: DiceConfig,
        binarizer: Binarizer,
        groups: GroupTable,
        transitions: TransitionModel,
        num_actuators: usize,
        training_windows: u64,
    ) -> Self {
        let scan = RoutedScanIndex::build(&groups);
        DiceModel {
            config,
            binarizer,
            groups,
            transitions,
            num_actuators,
            training_windows,
            scan,
        }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &DiceConfig {
        &self.config
    }

    /// The window binarizer (layout + thresholds).
    pub fn binarizer(&self) -> &Binarizer {
        &self.binarizer
    }

    /// The bit layout.
    pub fn layout(&self) -> &BitLayout {
        self.binarizer.layout()
    }

    /// The group table.
    pub fn groups(&self) -> &GroupTable {
        &self.groups
    }

    /// The transition matrices.
    pub fn transitions(&self) -> &TransitionModel {
        &self.transitions
    }

    /// The routed candidate-scan index over the group table (see
    /// [`RoutedScanIndex`] for the size crossover).
    pub fn scan(&self) -> &RoutedScanIndex {
        &self.scan
    }

    /// Mutable access to the transition matrices **without** revalidation.
    ///
    /// This exists so verifier tests can seed invariant violations into an
    /// otherwise-valid model. Production code never mutates a trained model
    /// in place; resume training through
    /// [`ModelBuilder::resume`](crate::ModelBuilder::resume) instead.
    #[doc(hidden)]
    pub fn transitions_mut(&mut self) -> &mut TransitionModel {
        &mut self.transitions
    }

    /// Mutable access to the group table **without** revalidation; see
    /// [`DiceModel::transitions_mut`]. Leaves the scan index stale — call
    /// [`DiceModel::rebuild_index`] before any candidate search.
    #[doc(hidden)]
    pub fn groups_mut(&mut self) -> &mut GroupTable {
        &mut self.groups
    }

    /// Mutable access to the recorded training-window count **without**
    /// revalidation; see [`DiceModel::transitions_mut`].
    #[doc(hidden)]
    pub fn training_windows_mut(&mut self) -> &mut u64 {
        &mut self.training_windows
    }

    /// Number of actuators in the deployment.
    pub fn num_actuators(&self) -> usize {
        self.num_actuators
    }

    /// Number of training windows consumed.
    pub fn training_windows(&self) -> u64 {
        self.training_windows
    }

    /// The effective candidate-group distance threshold.
    pub fn candidate_distance(&self) -> u32 {
        self.config
            .candidate_distance(self.layout().max_span_width())
    }

    /// The correlation degree of Table 5.2: average activated sensors per
    /// group.
    pub fn correlation_degree(&self) -> f64 {
        self.groups.correlation_degree(self.layout())
    }

    /// Restores internal indexes after deserialization: the exact-match
    /// group map and the packed scan index.
    pub fn rebuild_index(&mut self) {
        self.groups.rebuild_index_public();
        self.scan = RoutedScanIndex::build(&self.groups);
    }

    /// Fraction of training windows that fell in `group`, an empirical prior
    /// useful for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not a group of this model.
    pub fn group_frequency(&self, group: GroupId) -> f64 {
        let total = self.groups.total_observations();
        if total == 0 {
            0.0
        } else {
            self.groups.count(group) as f64 / total as f64
        }
    }

    /// Decomposes the model into the parts a resumed
    /// [`ModelBuilder`](crate::ModelBuilder) needs, including the built scan
    /// index so an unchanged table can skip the rebuild on `finish`.
    pub(crate) fn into_parts(
        self,
    ) -> (
        DiceConfig,
        Binarizer,
        GroupTable,
        TransitionModel,
        RoutedScanIndex,
    ) {
        (
            self.config,
            self.binarizer,
            self.groups,
            self.transitions,
            self.scan,
        )
    }

    /// Like [`DiceModel::from_parts`], but reuses an already-built scan
    /// index instead of rebuilding it from `groups`.
    ///
    /// The caller must guarantee `scan` was built from exactly this group
    /// table; [`ModelBuilder::finish`](crate::ModelBuilder::finish) uses it
    /// when a resumed build observed no new windows.
    pub(crate) fn from_parts_with_scan(
        config: DiceConfig,
        binarizer: Binarizer,
        groups: GroupTable,
        transitions: TransitionModel,
        num_actuators: usize,
        training_windows: u64,
        scan: RoutedScanIndex,
    ) -> Self {
        debug_assert_eq!(
            scan.len(),
            groups.len(),
            "reused scan index must cover exactly the group table"
        );
        DiceModel {
            config,
            binarizer,
            groups,
            transitions,
            num_actuators,
            training_windows,
            scan,
        }
    }

    /// Validates basic invariants against a registry (sensor counts match).
    pub fn matches_registry(&self, registry: &DeviceRegistry) -> bool {
        self.layout().num_sensors() == registry.num_sensors()
            && self.num_actuators == registry.num_actuators()
    }
}

impl GroupTable {
    /// Public re-export of index rebuilding for [`DiceModel::rebuild_index`].
    pub(crate) fn rebuild_index_public(&mut self) {
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::ThresholdTrainer;
    use crate::bitset::BitSet;
    use dice_types::{Room, SensorKind};

    fn tiny_model() -> (DiceModel, DeviceRegistry) {
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m0", Room::Kitchen);
        reg.add_sensor(SensorKind::Motion, "m1", Room::Bedroom);
        let layout = BitLayout::for_registry(&reg);
        let binarizer = Binarizer::new(layout, ThresholdTrainer::new(&reg).finish());
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.observe(&BitSet::from_indices(2, [1]));
        groups.observe(&BitSet::from_indices(2, [0]));
        let mut transitions = TransitionModel::new();
        transitions.record_g2g(GroupId::new(0), GroupId::new(1));
        let model =
            DiceModel::from_parts(DiceConfig::default(), binarizer, groups, transitions, 0, 3);
        (model, reg)
    }

    #[test]
    fn accessors_expose_parts() {
        let (model, reg) = tiny_model();
        assert_eq!(model.groups().len(), 2);
        assert_eq!(model.layout().num_bits(), 2);
        assert_eq!(model.training_windows(), 3);
        assert!(model.matches_registry(&reg));
        assert_eq!(model.candidate_distance(), 1); // binary-only, 1 fault
    }

    #[test]
    fn group_frequency_is_empirical() {
        let (model, _) = tiny_model();
        assert!((model.group_frequency(GroupId::new(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((model.group_frequency(GroupId::new(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degree_of_single_sensor_groups_is_one() {
        let (model, _) = tiny_model();
        assert!((model.correlation_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_registry_detected() {
        let (model, _) = tiny_model();
        let other = DeviceRegistry::new();
        assert!(!model.matches_registry(&other));
    }
}
