//! Attestation of an identified faulty device (Section 3.4: "We may add an
//! additional attestation step for a verification purpose").
//!
//! After the identification step names a device, attestation checks the
//! hypothesis *"this device is faulty and everything else is healthy"*
//! against the recent window history: each observed state set is compared to
//! the group table with the suspect's bits **masked out**. If the suspect
//! explains the anomaly, the masked states match known groups (the rest of
//! the home looks normal without it); if the anomaly lies elsewhere, masking
//! the suspect leaves violations behind.

use dice_types::{DeviceId, SensorId};

use crate::binarize::WindowObservation;
use crate::bitset::BitSet;
use crate::model::DiceModel;

/// The attestation verdict for one suspect device.
#[derive(Debug, Clone, PartialEq)]
pub struct Attestation {
    /// The attested device.
    pub device: DeviceId,
    /// Windows whose state set matched a group once the suspect was masked.
    pub explained: usize,
    /// Windows that stayed anomalous even with the suspect masked.
    pub unexplained: usize,
    /// Windows that were not anomalous to begin with.
    pub already_normal: usize,
}

impl Attestation {
    /// The fraction of anomalous windows explained by this suspect, in
    /// `[0, 1]`; `1.0` when there were no anomalous windows at all.
    pub fn confidence(&self) -> f64 {
        let anomalous = self.explained + self.unexplained;
        if anomalous == 0 {
            1.0
        } else {
            self.explained as f64 / anomalous as f64
        }
    }

    /// Whether the suspect explains at least `threshold` of the anomaly.
    pub fn confirms(&self, threshold: f64) -> bool {
        self.confidence() >= threshold
    }
}

/// Attests suspect devices against recent window history.
#[derive(Debug, Clone, Copy)]
pub struct Attestor<'m> {
    model: &'m DiceModel,
}

impl<'m> Attestor<'m> {
    /// Creates an attestor over a trained model.
    pub fn new(model: &'m DiceModel) -> Self {
        Attestor { model }
    }

    /// Compares `state` with every group, ignoring the bits in `mask`;
    /// returns whether some group matches on all unmasked bits.
    fn matches_any_group_masked(&self, state: &BitSet, mask: &BitSet) -> bool {
        let bits = state.len();
        self.model.groups().iter().any(|(_, group)| {
            state
                .diff_indices(group)
                .all(|bit| bit < bits && mask.get(bit))
        })
    }

    /// The bit mask covering one sensor's span.
    fn sensor_mask(&self, sensor: SensorId) -> BitSet {
        let layout = self.model.layout();
        BitSet::from_indices(layout.num_bits(), layout.span(sensor).indices())
    }

    /// Attests one suspect against a run of recent observations.
    ///
    /// Actuator suspects cannot be attested through the state-set mask (they
    /// own no bits); they are reported with every anomalous window
    /// unexplained, i.e. attestation is conservative for actuators.
    pub fn attest(
        &self,
        device: DeviceId,
        history: impl IntoIterator<Item = &'m WindowObservation>,
    ) -> Attestation {
        let mask = match device {
            DeviceId::Sensor(sensor) => Some(self.sensor_mask(sensor)),
            DeviceId::Actuator(_) => None,
        };
        let mut attestation = Attestation {
            device,
            explained: 0,
            unexplained: 0,
            already_normal: 0,
        };
        for obs in history {
            if self.model.groups().lookup(&obs.state).is_some() {
                attestation.already_normal += 1;
                continue;
            }
            let explained = mask
                .as_ref()
                .is_some_and(|mask| self.matches_any_group_masked(&obs.state, mask));
            if explained {
                attestation.explained += 1;
            } else {
                attestation.unexplained += 1;
            }
        }
        attestation
    }

    /// Attests every suspect of a report and returns them ranked by
    /// descending confidence (ties broken by device id).
    pub fn rank_suspects(
        &self,
        suspects: &[DeviceId],
        history: &'m [WindowObservation],
    ) -> Vec<Attestation> {
        let mut out: Vec<Attestation> = suspects
            .iter()
            .map(|&d| self.attest(d, history.iter()))
            .collect();
        out.sort_by(|a, b| {
            b.confidence()
                .partial_cmp(&a.confidence())
                .expect("confidences are finite")
                .then_with(|| a.device.cmp(&b.device))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::ThresholdTrainer;
    use crate::config::DiceConfig;
    use crate::extract::ModelBuilder;
    use dice_types::{
        DeviceRegistry, Event, Room, SensorKind, SensorReading, TimeDelta, Timestamp,
    };

    /// Three motion sensors; G0={s0,s1}, G1={s2}, G2={} learned.
    fn trained() -> (DiceModel, Vec<SensorId>) {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
        let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
        let mut builder = ModelBuilder::new(
            DiceConfig::default(),
            &reg,
            ThresholdTrainer::new(&reg).finish(),
        )
        .unwrap();
        for round in 0..9 {
            let start = Timestamp::from_mins(round);
            let end = start + TimeDelta::from_mins(1);
            let mut events: Vec<Event> = Vec::new();
            match round % 3 {
                0 => {
                    events.push(SensorReading::new(s0, start, true.into()).into());
                    events.push(SensorReading::new(s1, start, true.into()).into());
                }
                1 => events.push(SensorReading::new(s2, start, true.into()).into()),
                _ => {}
            }
            builder.observe_window(start, end, &events);
        }
        (builder.finish().unwrap(), vec![s0, s1, s2])
    }

    fn obs(model: &DiceModel, bits: &[usize]) -> WindowObservation {
        WindowObservation {
            start: Timestamp::ZERO,
            end: Timestamp::from_mins(1),
            state: BitSet::from_indices(model.layout().num_bits(), bits.iter().copied()),
            activated_actuators: vec![],
        }
    }

    #[test]
    fn true_suspect_explains_all_anomalies() {
        let (model, sensors) = trained();
        let attestor = Attestor::new(&model);
        // s1 fail-stopped: {s0} alone observed repeatedly (unseen state).
        let history = [obs(&model, &[0]), obs(&model, &[0]), obs(&model, &[0])];
        let a = attestor.attest(DeviceId::Sensor(sensors[1]), history.iter());
        assert_eq!(a.explained, 3);
        assert_eq!(a.unexplained, 0);
        assert_eq!(a.confidence(), 1.0);
        assert!(a.confirms(0.9));
    }

    #[test]
    fn wrong_suspect_leaves_anomalies_unexplained() {
        let (model, sensors) = trained();
        let attestor = Attestor::new(&model);
        let history = [obs(&model, &[0]), obs(&model, &[0])];
        // Masking s2 cannot explain a {s0}-alone anomaly.
        let a = attestor.attest(DeviceId::Sensor(sensors[2]), history.iter());
        assert_eq!(a.explained, 0);
        assert_eq!(a.unexplained, 2);
        assert!(!a.confirms(0.5));
    }

    #[test]
    fn normal_windows_do_not_dilute_confidence() {
        let (model, sensors) = trained();
        let attestor = Attestor::new(&model);
        let history = [obs(&model, &[0, 1]), obs(&model, &[2]), obs(&model, &[0])];
        let a = attestor.attest(DeviceId::Sensor(sensors[1]), history.iter());
        assert_eq!(a.already_normal, 2);
        assert_eq!(a.explained, 1);
        assert_eq!(a.confidence(), 1.0);
    }

    #[test]
    fn rank_orders_true_suspect_first() {
        let (model, sensors) = trained();
        let attestor = Attestor::new(&model);
        let history = vec![obs(&model, &[0]), obs(&model, &[0])];
        let suspects: Vec<DeviceId> = sensors.iter().map(|&s| DeviceId::Sensor(s)).collect();
        let ranked = attestor.rank_suspects(&suspects, &history);
        // Masking s1 OR s0 can both explain {s0}-alone ({s0} masked -> {}
        // matches the quiet group); s2 cannot. The true faulty sensor is in
        // the top tier and s2 is strictly last.
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[2].device, DeviceId::Sensor(sensors[2]));
        assert!(ranked[0].confidence() > ranked[2].confidence());
    }

    #[test]
    fn actuator_suspects_are_conservative() {
        let (model, _) = trained();
        let attestor = Attestor::new(&model);
        let history = [obs(&model, &[0])];
        let a = attestor.attest(
            DeviceId::Actuator(dice_types::ActuatorId::new(0)),
            history.iter(),
        );
        assert_eq!(a.unexplained, 1);
        assert_eq!(a.confidence(), 0.0);
    }

    #[test]
    fn empty_history_is_vacuously_confident() {
        let (model, sensors) = trained();
        let attestor = Attestor::new(&model);
        let a = attestor.attest(DeviceId::Sensor(sensors[0]), [].iter());
        assert_eq!(a.confidence(), 1.0);
    }
}
