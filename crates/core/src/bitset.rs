//! A compact fixed-width bit set used to represent sensor state sets.
//!
//! Sensor state sets (Section 3.2.1) are bit vectors with one bit per binary
//! sensor and three bits per numeric sensor. The hot operation is Hamming
//! distance against every known group (the correlation check, Figure 3.5), so
//! the representation packs bits into `u64` words and distances are computed
//! with `popcount` over XOR-ed words.

use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-length bit set.
///
/// # Example
///
/// ```
/// use dice_core::BitSet;
///
/// let mut a = BitSet::new(10);
/// let mut b = BitSet::new(10);
/// a.set(3, true);
/// b.set(3, true);
/// b.set(7, true);
/// assert_eq!(a.hamming_distance(&b), 1);
/// assert_eq!(b.count_ones(), 2);
/// ```
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an all-zero bit set of `len` bits.
    pub fn new(len: usize) -> Self {
        let words = vec![0u64; len.div_ceil(WORD_BITS)];
        BitSet { len, words }
    }

    /// Creates a bit set from an iterator of set-bit indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut set = BitSet::new(len);
        for i in indices {
            set.set(i, true);
        }
        set
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has zero bits of capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Writes bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of differing bits between two equal-length sets.
    ///
    /// This is the group distance of the correlation check: for
    /// `G1 = {1,1,0,0,0}` and `G2 = {0,0,0,1,1}` the distance is 4.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    #[inline]
    pub fn hamming_distance(&self, other: &BitSet) -> u32 {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Like [`BitSet::hamming_distance`] but stops counting once the distance
    /// exceeds `limit`, returning `None`.
    ///
    /// The candidate-group search only cares about groups within the fault
    /// threshold, so most comparisons can bail out early.
    #[inline]
    pub fn hamming_distance_within(&self, other: &BitSet, limit: u32) -> Option<u32> {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        let mut total = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            total += (a ^ b).count_ones();
            if total > limit {
                return None;
            }
        }
        Some(total)
    }

    /// Iterates over the indices where the two sets differ.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn diff_indices<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.len, other.len, "diff requires equal lengths");
        let len = self.len;
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(move |(wi, (a, b))| {
                let mut x = a ^ b;
                std::iter::from_fn(move || {
                    if x == 0 {
                        None
                    } else {
                        let bit = x.trailing_zeros() as usize;
                        x &= x - 1;
                        Some(wi * WORD_BITS + bit)
                    }
                })
            })
            .filter(move |&i| i < len)
    }

    /// Iterates over the indices of set bits.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let mut x = w;
                std::iter::from_fn(move || {
                    if x == 0 {
                        None
                    } else {
                        let bit = x.trailing_zeros() as usize;
                        x &= x - 1;
                        Some(wi * WORD_BITS + bit)
                    }
                })
            })
            .filter(move |&i| i < len)
    }

    /// The backing words, least-significant bit first.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a bit set from its backing words.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match `len`, or if bits beyond
    /// `len` are set.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(WORD_BITS), "word count mismatch");
        if !len.is_multiple_of(WORD_BITS) {
            if let Some(&last) = words.last() {
                assert_eq!(last >> (len % WORD_BITS), 0, "bits set beyond length");
            }
        }
        BitSet { len, words }
    }

    /// Whether any bit in `[start, start + width)` is set.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the set's length.
    pub fn any_in_span(&self, start: usize, width: usize) -> bool {
        assert!(start + width <= self.len, "span out of range");
        (start..start + width).any(|i| self.get(i))
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words.hash(state);
    }
}

impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(0));
        assert!(!s.get(129));
    }

    #[test]
    fn set_get_round_trip_across_word_boundary() {
        let mut s = BitSet::new(130);
        for &i in &[0, 63, 64, 65, 127, 128, 129] {
            s.set(i, true);
            assert!(s.get(i), "bit {i}");
        }
        assert_eq!(s.count_ones(), 7);
        s.set(64, false);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.get(8);
    }

    #[test]
    fn hamming_distance_matches_paper_example() {
        // G1 = {1,1,0,0,0}, G2 = {0,0,0,1,1} -> distance 4
        let g1 = BitSet::from_indices(5, [0, 1]);
        let g2 = BitSet::from_indices(5, [3, 4]);
        assert_eq!(g1.hamming_distance(&g2), 4);
        assert_eq!(g2.hamming_distance(&g1), 4);
        assert_eq!(g1.hamming_distance(&g1), 0);
    }

    #[test]
    fn hamming_distance_within_limit() {
        let g1 = BitSet::from_indices(5, [0, 1]);
        let g2 = BitSet::from_indices(5, [3, 4]);
        assert_eq!(g1.hamming_distance_within(&g2, 4), Some(4));
        assert_eq!(g1.hamming_distance_within(&g2, 3), None);
        assert_eq!(g1.hamming_distance_within(&g1, 0), Some(0));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_rejects_length_mismatch() {
        let _ = BitSet::new(4).hamming_distance(&BitSet::new(5));
    }

    #[test]
    fn diff_indices_lists_differing_bits() {
        let a = BitSet::from_indices(70, [1, 64, 69]);
        let b = BitSet::from_indices(70, [1, 65]);
        let diff: Vec<usize> = a.diff_indices(&b).collect();
        assert_eq!(diff, vec![64, 65, 69]);
    }

    #[test]
    fn ones_lists_set_bits_in_order() {
        let s = BitSet::from_indices(70, [5, 63, 64]);
        let ones: Vec<usize> = s.ones().collect();
        assert_eq!(ones, vec![5, 63, 64]);
    }

    #[test]
    fn any_in_span_checks_window() {
        let s = BitSet::from_indices(10, [4]);
        assert!(s.any_in_span(3, 3));
        assert!(!s.any_in_span(5, 3));
        assert!(s.any_in_span(4, 1));
    }

    #[test]
    fn clear_resets_all() {
        let mut s = BitSet::from_indices(10, [1, 9]);
        s.clear();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn equality_and_hash_agree() {
        use std::collections::HashSet;
        let a = BitSet::from_indices(10, [2, 3]);
        let b = BitSet::from_indices(10, [2, 3]);
        let c = BitSet::from_indices(10, [2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn display_renders_bit_string() {
        let s = BitSet::from_indices(5, [0, 3]);
        assert_eq!(s.to_string(), "10010");
    }

    #[test]
    fn from_indices_empty_iter() {
        let s = BitSet::from_indices(5, []);
        assert_eq!(s.count_ones(), 0);
    }
}
