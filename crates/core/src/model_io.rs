//! Compact binary persistence for [`DiceModel`].
//!
//! The precomputation phase runs once over hundreds of hours of data; a
//! gateway should persist its result and reload it at boot. The format is a
//! small hand-rolled little-endian codec (magic + version + sections), so no
//! serialization-format dependency is needed and models stay portable across
//! builds of the same major version.
//!
//! # Example
//!
//! ```
//! use dice_core::{read_model, write_model, ContextExtractor, DiceConfig};
//! use dice_types::{DeviceRegistry, EventLog, Room, SensorKind, SensorReading, Timestamp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut reg = DeviceRegistry::new();
//! # let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
//! # let mut log = EventLog::new();
//! # for minute in 0..10 {
//! #     log.push_sensor(SensorReading::new(m, Timestamp::from_mins(minute), (minute % 2 == 0).into()));
//! # }
//! let model = ContextExtractor::new(DiceConfig::default()).extract(&reg, &mut log)?;
//! let mut buffer = Vec::new();
//! write_model(&model, &mut buffer)?;
//! let restored = read_model(buffer.as_slice())?;
//! assert_eq!(restored, model);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use dice_types::TimeDelta;

use crate::binarize::{Binarizer, Thresholds};
use crate::bitset::BitSet;
use crate::config::DiceConfig;
use crate::diag::Diagnostic;
use crate::groups::GroupTable;
use crate::invariants;
use crate::layout::{BitLayout, NUMERIC_SPAN_WIDTH};
use crate::model::DiceModel;
use crate::transition::{TransitionCounts, TransitionModel};

/// The four magic bytes every serialized model starts with. Public so
/// artifact sniffers (`dice-lint`'s multi-artifact mode) can recognize a
/// model file without attempting a full decode.
pub const MODEL_MAGIC: &[u8; 4] = b"DICE";
/// The container format version this build reads and writes.
pub const MODEL_FORMAT_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = MODEL_MAGIC;
const VERSION: u16 = MODEL_FORMAT_VERSION;

/// Errors raised while persisting or loading a model.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a DICE model file.
    BadMagic,
    /// The file version is not supported by this build.
    UnsupportedVersion(u16),
    /// A structural inconsistency in the encoded data.
    Corrupt(&'static str),
    /// The data decoded, but the model violates a verified invariant; the
    /// findings carry the stable `DVnnn` codes.
    Invalid(Vec<Diagnostic>),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model i/o error: {e}"),
            ModelIoError::BadMagic => write!(f, "not a DICE model file"),
            ModelIoError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            ModelIoError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
            ModelIoError::Invalid(diags) => {
                let errors: Vec<&Diagnostic> = diags
                    .iter()
                    .filter(|d| d.severity() == crate::diag::Severity::Error)
                    .collect();
                write!(f, "model violates {} invariant(s):", errors.len())?;
                for d in errors {
                    write!(f, " [{}]", d.code())?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ModelIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

// --- primitive helpers -----------------------------------------------------

fn put_u8<W: Write>(w: &mut W, v: u8) -> Result<(), ModelIoError> {
    Ok(w.write_all(&[v])?)
}
fn put_u16<W: Write>(w: &mut W, v: u16) -> Result<(), ModelIoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}
fn put_u32<W: Write>(w: &mut W, v: u32) -> Result<(), ModelIoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}
fn put_u64<W: Write>(w: &mut W, v: u64) -> Result<(), ModelIoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}
fn put_i64<W: Write>(w: &mut W, v: i64) -> Result<(), ModelIoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}
fn put_f64<W: Write>(w: &mut W, v: f64) -> Result<(), ModelIoError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn get_u8<R: Read>(r: &mut R) -> Result<u8, ModelIoError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
fn get_u16<R: Read>(r: &mut R) -> Result<u16, ModelIoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn get_u32<R: Read>(r: &mut R) -> Result<u32, ModelIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn get_u64<R: Read>(r: &mut R) -> Result<u64, ModelIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn get_i64<R: Read>(r: &mut R) -> Result<i64, ModelIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn get_f64<R: Read>(r: &mut R) -> Result<f64, ModelIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

// --- sections ----------------------------------------------------------------

fn write_config<W: Write>(w: &mut W, config: &DiceConfig) -> Result<(), ModelIoError> {
    put_i64(w, config.window().as_secs())?;
    put_u32(w, config.max_faults() as u32)?;
    put_u32(w, config.num_thre() as u32)?;
    match config.candidate_distance_override() {
        Some(d) => {
            put_u8(w, 1)?;
            put_u32(w, d)?;
        }
        None => put_u8(w, 0)?,
    }
    put_u32(w, config.max_identification_windows() as u32)?;
    put_u8(w, u8::from(config.nearest_only_identification()))?;
    put_u64(w, config.min_row_support())?;
    put_u32(w, config.confirmation_violations() as u32)?;
    put_u32(w, config.confirmation_horizon_windows() as u32)?;
    Ok(())
}

fn read_config<R: Read>(r: &mut R) -> Result<DiceConfig, ModelIoError> {
    let window_secs = get_i64(r)?;
    if window_secs <= 0 {
        return Err(ModelIoError::Corrupt("non-positive window"));
    }
    let max_faults = get_u32(r)? as usize;
    let num_thre = get_u32(r)? as usize;
    if max_faults == 0 || num_thre == 0 {
        return Err(ModelIoError::Corrupt("zero fault/threshold parameters"));
    }
    let mut builder = DiceConfig::builder()
        .window(TimeDelta::from_secs(window_secs))
        .max_faults(max_faults)
        .num_thre(num_thre);
    if get_u8(r)? == 1 {
        builder = builder.candidate_distance(get_u32(r)?);
    }
    let max_ident = get_u32(r)? as usize;
    if max_ident == 0 {
        return Err(ModelIoError::Corrupt("zero identification budget"));
    }
    builder = builder.max_identification_windows(max_ident);
    builder = builder.nearest_only_identification(get_u8(r)? == 1);
    builder = builder.min_row_support(get_u64(r)?);
    let confirm = get_u32(r)? as usize;
    if confirm == 0 {
        return Err(ModelIoError::Corrupt("zero confirmation count"));
    }
    builder = builder.confirmation_violations(confirm);
    builder = builder.confirmation_horizon_windows(get_u32(r)? as usize);
    Ok(builder.build())
}

fn write_counts<W: Write>(w: &mut W, counts: &TransitionCounts) -> Result<(), ModelIoError> {
    let entries = counts.entries();
    put_u32(w, entries.len() as u32)?;
    for (from, to, n) in entries {
        put_u32(w, from)?;
        put_u32(w, to)?;
        put_u64(w, n)?;
    }
    Ok(())
}

fn read_counts<R: Read>(r: &mut R, counts: &mut TransitionCounts) -> Result<(), ModelIoError> {
    let n = get_u32(r)?;
    for _ in 0..n {
        let from = get_u32(r)?;
        let to = get_u32(r)?;
        let count = get_u64(r)?;
        if count == 0 {
            return Err(ModelIoError::Corrupt("zero transition count entry"));
        }
        counts.record_n(from, to, count);
    }
    Ok(())
}

/// Writes a model to `writer` in the compact binary format.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_model<W: Write>(model: &DiceModel, mut writer: W) -> Result<(), ModelIoError> {
    let w = &mut writer;
    w.write_all(MAGIC)?;
    put_u16(w, VERSION)?;
    write_config(w, model.config())?;

    // Layout: per-sensor span widths.
    let layout = model.layout();
    put_u32(w, layout.num_sensors() as u32)?;
    for sensor in 0..layout.num_sensors() {
        put_u8(
            w,
            layout.span(dice_types::SensorId::new(sensor as u32)).width as u8,
        )?;
    }

    // Thresholds.
    for value in model.binarizer().thresholds().values() {
        match value {
            Some(v) => {
                put_u8(w, 1)?;
                put_f64(w, *v)?;
            }
            None => put_u8(w, 0)?,
        }
    }

    // Groups.
    let groups = model.groups();
    put_u32(w, groups.num_bits() as u32)?;
    put_u32(w, groups.len() as u32)?;
    for (id, state) in groups.iter() {
        for &word in state.as_words() {
            put_u64(w, word)?;
        }
        put_u64(w, groups.count(id))?;
    }

    // Transitions.
    write_counts(w, model.transitions().g2g())?;
    write_counts(w, model.transitions().g2a())?;
    write_counts(w, model.transitions().a2g())?;

    put_u32(w, model.num_actuators() as u32)?;
    put_u64(w, model.training_windows())?;
    Ok(())
}

/// Reads a model previously written by [`write_model`], verifying its
/// structural invariants.
///
/// After decoding, the [`crate::invariants`] checks run over the assembled
/// model; any [`Severity::Error`](crate::Severity::Error) finding rejects it
/// with [`ModelIoError::Invalid`]. A gateway that must load a damaged model
/// anyway (e.g. for offline inspection) can opt out with
/// [`read_model_unverified`].
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`ModelIoError::BadMagic`] / [`ModelIoError::UnsupportedVersion`]
/// for foreign data, [`ModelIoError::Corrupt`] for structural damage the
/// decoder itself catches, and [`ModelIoError::Invalid`] for decodable data
/// that violates a model invariant.
pub fn read_model<R: Read>(reader: R) -> Result<DiceModel, ModelIoError> {
    let model = read_model_unverified(reader)?;
    let mut diags = invariants::check_model(&model);
    diags.extend(invariants::check_config(model.config()));
    if invariants::has_errors(&diags) {
        return Err(ModelIoError::Invalid(diags));
    }
    Ok(model)
}

/// Reads a model **without** running the invariant checks of [`read_model`].
///
/// Intended for tooling (`dice-lint` uses it to report *all* findings rather
/// than stopping at the first rejection); production loading should go
/// through [`read_model`].
///
/// # Errors
///
/// Returns the same decode-level errors as [`read_model`], but never
/// [`ModelIoError::Invalid`].
pub fn read_model_unverified<R: Read>(mut reader: R) -> Result<DiceModel, ModelIoError> {
    let r = &mut reader;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    let version = get_u16(r)?;
    if version != VERSION {
        return Err(ModelIoError::UnsupportedVersion(version));
    }
    let config = read_config(r)?;

    // Counts come from untrusted bytes: cap eager allocation so a corrupted
    // length field cannot request gigabytes before the stream runs dry.
    const PREALLOC_CAP: usize = 65_536;

    let num_sensors = get_u32(r)? as usize;
    let mut widths = Vec::with_capacity(num_sensors.min(PREALLOC_CAP));
    for _ in 0..num_sensors {
        let width = get_u8(r)? as usize;
        if width != 1 && width != NUMERIC_SPAN_WIDTH {
            return Err(ModelIoError::Corrupt("invalid span width"));
        }
        widths.push(width);
    }
    let layout = BitLayout::from_widths(&widths);

    let mut thresholds = Vec::with_capacity(num_sensors.min(PREALLOC_CAP));
    for _ in 0..num_sensors {
        thresholds.push(match get_u8(r)? {
            0 => None,
            1 => Some(get_f64(r)?),
            _ => return Err(ModelIoError::Corrupt("invalid threshold flag")),
        });
    }
    let binarizer = Binarizer::new(layout.clone(), Thresholds::from_values(thresholds));

    let num_bits = get_u32(r)? as usize;
    if num_bits != layout.num_bits() {
        return Err(ModelIoError::Corrupt("bit count disagrees with layout"));
    }
    let num_groups = get_u32(r)? as usize;
    let words_per_state = num_bits.div_ceil(64);
    let mut groups = GroupTable::new(num_bits);
    for _ in 0..num_groups {
        let mut words = Vec::with_capacity(words_per_state.min(PREALLOC_CAP));
        for _ in 0..words_per_state {
            words.push(get_u64(r)?);
        }
        if !num_bits.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (num_bits % 64) != 0 {
                    return Err(ModelIoError::Corrupt("state bits beyond layout width"));
                }
            }
        }
        let count = get_u64(r)?;
        if count == 0 {
            return Err(ModelIoError::Corrupt("zero group count"));
        }
        let state = BitSet::from_words(num_bits, words);
        if groups.lookup(&state).is_some() {
            return Err(ModelIoError::Corrupt("duplicate group state"));
        }
        groups.insert_with_count(state, count);
    }

    let mut transitions = TransitionModel::new();
    read_counts(r, transitions.g2g_mut())?;
    read_counts(r, transitions.g2a_mut())?;
    read_counts(r, transitions.a2g_mut())?;

    let num_actuators = get_u32(r)? as usize;
    let training_windows = get_u64(r)?;

    Ok(DiceModel::from_parts(
        config,
        binarizer,
        groups,
        transitions,
        num_actuators,
        training_windows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::ThresholdTrainer;
    use crate::extract::ModelBuilder;
    use dice_types::{
        ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading,
        Timestamp,
    };

    fn sample_model() -> DiceModel {
        let mut reg = DeviceRegistry::new();
        let m = reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let t = reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let b = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Kitchen);
        let mut trainer = ThresholdTrainer::new(&reg);
        for i in 0..10 {
            trainer.observe(&Event::from(SensorReading::new(
                t,
                Timestamp::from_secs(i),
                (20.0 + i as f64).into(),
            )));
        }
        let config = DiceConfig::builder()
            .max_faults(2)
            .num_thre(2)
            .candidate_distance(4)
            .min_row_support(3)
            .build();
        let mut builder = ModelBuilder::new(config, &reg, trainer.finish()).unwrap();
        for minute in 0..30 {
            let start = Timestamp::from_mins(minute);
            let end = Timestamp::from_mins(minute + 1);
            let mut events: Vec<Event> = Vec::new();
            if minute % 2 == 0 {
                events.push(SensorReading::new(m, start, true.into()).into());
                events.push(ActuatorEvent::new(b, start, true).into());
            }
            events.push(SensorReading::new(t, start, (18.0 + (minute % 5) as f64).into()).into());
            builder.observe_window(start, end, &events);
        }
        builder.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = sample_model();
        let mut buffer = Vec::new();
        write_model(&model, &mut buffer).unwrap();
        let restored = read_model(buffer.as_slice()).unwrap();
        assert_eq!(restored, model);
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.correlation_degree(), model.correlation_degree());
        // The exact-match index must be functional without rebuild_index.
        for (id, state) in model.groups().iter() {
            assert_eq!(restored.groups().lookup(state), Some(id));
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_model(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, ModelIoError::BadMagic));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buffer = Vec::new();
        write_model(&sample_model(), &mut buffer).unwrap();
        buffer[4] = 0xFF; // clobber version
        let err = read_model(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ModelIoError::UnsupportedVersion(_)));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buffer = Vec::new();
        write_model(&sample_model(), &mut buffer).unwrap();
        buffer.truncate(buffer.len() / 2);
        let err = read_model(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ModelIoError::Io(_)), "got {err:?}");
    }

    #[test]
    fn corrupt_span_width_is_detected() {
        let mut buffer = Vec::new();
        write_model(&sample_model(), &mut buffer).unwrap();
        // The first span-width byte sits right after magic(4) + version(2) +
        // config block + sensor count(4). Find it by writing a model with a
        // known prefix length instead: easier to corrupt the whole tail.
        // Corrupt every byte after the header until decoding fails with a
        // structured error at least once.
        let mut structured_failure = false;
        for i in 6..buffer.len().min(80) {
            let mut bad = buffer.clone();
            bad[i] ^= 0x5A;
            match read_model(bad.as_slice()) {
                Err(ModelIoError::Corrupt(_)) => {
                    structured_failure = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(
            structured_failure,
            "no corruption was detected structurally"
        );
    }

    #[test]
    fn invalid_model_is_rejected_by_default() {
        let model = sample_model();
        let mut buffer = Vec::new();
        write_model(&model, &mut buffer).unwrap();
        // The trailing u64 is training_windows; claiming a wrong count breaks
        // the DV150 cross-invariant while still decoding cleanly.
        let n = buffer.len();
        buffer[n - 8..].copy_from_slice(&999_999u64.to_le_bytes());
        match read_model(buffer.as_slice()).unwrap_err() {
            ModelIoError::Invalid(diags) => {
                assert!(diags
                    .iter()
                    .any(|d| d.code() == crate::DiagnosticCode::TrainingWindowMismatch));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // The unverified loader still hands the model over for inspection.
        let loaded = read_model_unverified(buffer.as_slice()).unwrap();
        assert_eq!(loaded.training_windows(), 999_999);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ModelIoError::BadMagic.to_string().contains("DICE"));
        assert!(ModelIoError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(ModelIoError::Corrupt("x").to_string().contains('x'));
    }
}
