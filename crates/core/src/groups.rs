//! The group table: unique sensor state sets and candidate-group search.
//!
//! Every unique sensor state set seen during precomputation becomes a *group*
//! (Figure 3.3b). At run time the correlation check (Figure 3.5) compares the
//! incoming state set against all groups by Hamming distance: a distance-0
//! match is the *main group*, other groups within the fault threshold are
//! *probable groups*.
//
// lint-src: allow-file(hash-container) — the state-set index is an
// exact-match lookup only; every enumeration of groups walks the Vec of
// states in insertion order, never the map.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dice_types::GroupId;

use crate::bitset::BitSet;
use crate::layout::BitLayout;

/// A candidate group produced by the correlation check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate group.
    pub group: GroupId,
    /// Its Hamming distance to the observed state set.
    pub distance: u32,
}

/// The set of unique sensor state sets observed during precomputation.
///
/// # Example
///
/// ```
/// use dice_core::{BitSet, GroupTable};
///
/// let mut table = GroupTable::new(4);
/// let g0 = table.observe(&BitSet::from_indices(4, [0, 1]));
/// let g1 = table.observe(&BitSet::from_indices(4, [2]));
/// assert_eq!(table.observe(&BitSet::from_indices(4, [0, 1])), g0);
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.lookup(&BitSet::from_indices(4, [2])), Some(g1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupTable {
    num_bits: usize,
    groups: Vec<BitSet>,
    counts: Vec<u64>,
    /// Running sum of `counts`, so [`GroupTable::total_observations`] — hit
    /// by invariant checks and stats on every load/verify — stays O(1).
    total: u64,
    #[serde(skip)]
    index: HashMap<BitSet, GroupId>,
}

impl GroupTable {
    /// Creates an empty table for state sets of `num_bits` bits.
    pub fn new(num_bits: usize) -> Self {
        GroupTable {
            num_bits,
            groups: Vec::new(),
            counts: Vec::new(),
            total: 0,
            index: HashMap::new(),
        }
    }

    /// Width of the state sets this table holds.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups have been observed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Records one observation of `state`, assigning a new group id for a
    /// never-seen state set.
    ///
    /// # Panics
    ///
    /// Panics if the state set width does not match the table.
    pub fn observe(&mut self, state: &BitSet) -> GroupId {
        assert_eq!(state.len(), self.num_bits, "state width mismatch");
        if let Some(&id) = self.index.get(state) {
            self.counts[id.index()] += 1;
            self.total += 1;
            return id;
        }
        let id = GroupId::new(self.groups.len() as u32);
        self.groups.push(state.clone());
        self.counts.push(1);
        self.total += 1;
        self.index.insert(state.clone(), id);
        self.debug_check_parallel_arrays();
        id
    }

    /// Inserts a group with a precomputed observation count, assigning the
    /// next id — used when loading a persisted model.
    ///
    /// # Panics
    ///
    /// Panics if the state width mismatches or the state already exists.
    pub fn insert_with_count(&mut self, state: BitSet, count: u64) -> GroupId {
        assert_eq!(state.len(), self.num_bits, "state width mismatch");
        assert!(!self.index.contains_key(&state), "duplicate group");
        let id = GroupId::new(self.groups.len() as u32);
        self.groups.push(state.clone());
        self.counts.push(count);
        self.total += count;
        self.index.insert(state, id);
        self.debug_check_parallel_arrays();
        id
    }

    /// Appends a group **without** the width, duplicate, or index-consistency
    /// checks of [`GroupTable::insert_with_count`].
    ///
    /// This exists so verifier tests can build tables that violate the group
    /// invariants; it deliberately leaves the exact-match index untouched.
    /// Never feed the result to a live engine.
    #[doc(hidden)]
    pub fn insert_unchecked(&mut self, state: BitSet, count: u64) -> GroupId {
        let id = GroupId::new(self.groups.len() as u32);
        self.groups.push(state);
        self.counts.push(count);
        self.total += count;
        id
    }

    /// Looks up the group id for an exact match (the *main group*).
    pub fn lookup(&self, state: &BitSet) -> Option<GroupId> {
        self.index.get(state).copied()
    }

    /// The state set of a group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a group of this table.
    pub fn state(&self, id: GroupId) -> &BitSet {
        &self.groups[id.index()]
    }

    /// How many windows mapped to this group during precomputation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a group of this table.
    pub fn count(&self, id: GroupId) -> u64 {
        self.counts[id.index()]
    }

    /// Total observations across all groups (O(1): maintained as a running
    /// counter by [`GroupTable::observe`] and [`GroupTable::insert_with_count`]).
    pub fn total_observations(&self) -> u64 {
        debug_assert_eq!(
            self.total,
            self.counts.iter().sum::<u64>(),
            "running total must match the counts"
        );
        self.total
    }

    /// All groups within Hamming distance `max_distance` of `state`
    /// (inclusive), sorted by ascending distance then group id.
    ///
    /// This is the candidate-group search of the correlation check. A
    /// distance-0 entry, if present, is the main group.
    pub fn candidates(&self, state: &BitSet, max_distance: u32) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| {
                state
                    .hamming_distance_within(g, max_distance)
                    .map(|distance| Candidate {
                        group: GroupId::new(i as u32),
                        distance,
                    })
            })
            .collect();
        out.sort_by_key(|c| (c.distance, c.group));
        out
    }

    /// The nearest group(s) to `state`: minimal distance, all ties.
    ///
    /// Returns an empty vector only for an empty table.
    pub fn nearest(&self, state: &BitSet) -> Vec<Candidate> {
        let mut best = u32::MAX;
        let mut out = Vec::new();
        for (i, g) in self.groups.iter().enumerate() {
            let d = state.hamming_distance(g);
            if d < best {
                best = d;
                out.clear();
            }
            if d == best {
                out.push(Candidate {
                    group: GroupId::new(i as u32),
                    distance: d,
                });
            }
        }
        out
    }

    /// Iterates over `(GroupId, &BitSet)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GroupId, &BitSet)> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (GroupId::new(i as u32), g))
    }

    /// Iterates over `(GroupId, &BitSet, observation count)` triples — the
    /// full per-group record, for analyzers that need counts alongside
    /// states.
    pub fn entries(&self) -> impl Iterator<Item = (GroupId, &BitSet, u64)> {
        self.groups
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(i, (g, &count))| (GroupId::new(i as u32), g, count))
    }

    fn debug_check_parallel_arrays(&self) {
        debug_assert_eq!(
            self.groups.len(),
            self.counts.len(),
            "group states and counts must stay parallel"
        );
        debug_assert_eq!(
            self.index.len(),
            self.groups.len(),
            "exact-match index must cover every group"
        );
    }

    /// The *correlation degree* of Table 5.2: the average number of activated
    /// sensors per group.
    ///
    /// A sensor counts as activated in a group when any bit of its span is
    /// set. Returns 0.0 for an empty table.
    pub fn correlation_degree(&self, layout: &BitLayout) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .groups
            .iter()
            .map(|g| {
                (0..layout.num_sensors())
                    .filter(|&s| {
                        let span = layout.span(dice_types::SensorId::new(s as u32));
                        g.any_in_span(span.start, span.width)
                    })
                    .count()
            })
            .sum();
        total as f64 / self.groups.len() as f64
    }

    /// Folds another table's groups into this one, returning the local→
    /// global id map: `map[other_id.index()]` is the id `other_id`'s state
    /// set has in `self` after the merge.
    ///
    /// Existing states accumulate counts; new states are appended in
    /// `other`'s id order. Because chunk-local tables assign ids by first
    /// occurrence within the chunk, merging chunk tables in time order
    /// reproduces exactly the serial first-seen-in-time-order id assignment
    /// (the parallel trainer's determinism hinge; see [`crate::train_par`]).
    ///
    /// # Panics
    ///
    /// Panics if the tables hold state sets of different widths.
    pub fn merge(&mut self, other: &GroupTable) -> Vec<GroupId> {
        assert_eq!(
            self.num_bits, other.num_bits,
            "merged tables must hold equally wide state sets"
        );
        other
            .entries()
            .map(|(_, state, count)| {
                if let Some(&id) = self.index.get(state) {
                    self.counts[id.index()] += count;
                    self.total += count;
                    id
                } else {
                    self.insert_with_count(state.clone(), count)
                }
            })
            .collect()
    }

    /// Rebuilds the exact-match index (needed after deserialization, where
    /// the index is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| (g.clone(), GroupId::new(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_types::{DeviceRegistry, Room, SensorKind};

    fn table() -> GroupTable {
        let mut t = GroupTable::new(5);
        t.observe(&BitSet::from_indices(5, [0, 1])); // G0
        t.observe(&BitSet::from_indices(5, [3, 4])); // G1
        t.observe(&BitSet::from_indices(5, [0, 1])); // G0 again
        t.observe(&BitSet::from_indices(5, [0, 1, 2])); // G2
        t
    }

    #[test]
    fn observe_assigns_stable_ids_and_counts() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(GroupId::new(0)), 2);
        assert_eq!(t.count(GroupId::new(1)), 1);
        assert_eq!(t.total_observations(), 4);
    }

    #[test]
    fn lookup_finds_exact_matches_only() {
        let t = table();
        assert_eq!(
            t.lookup(&BitSet::from_indices(5, [0, 1])),
            Some(GroupId::new(0))
        );
        assert_eq!(t.lookup(&BitSet::from_indices(5, [0])), None);
    }

    #[test]
    fn candidates_within_distance_sorted() {
        let t = table();
        // Query {0,1,3}: d(G0)=1, d(G1)=3, d(G2)=2.
        let q = BitSet::from_indices(5, [0, 1, 3]);
        let c = t.candidates(&q, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].group, GroupId::new(0));
        assert_eq!(c[0].distance, 1);
        assert_eq!(c[1].group, GroupId::new(2));
        assert_eq!(c[1].distance, 2);
    }

    #[test]
    fn candidates_include_main_group_at_distance_zero() {
        let t = table();
        let q = BitSet::from_indices(5, [0, 1]);
        let c = t.candidates(&q, 1);
        assert_eq!(c[0].distance, 0);
        assert_eq!(c[0].group, GroupId::new(0));
    }

    #[test]
    fn nearest_returns_all_ties() {
        let mut t = GroupTable::new(3);
        t.observe(&BitSet::from_indices(3, [0]));
        t.observe(&BitSet::from_indices(3, [1]));
        // Query {2}: both groups at distance 2.
        let n = t.nearest(&BitSet::from_indices(3, [2]));
        assert_eq!(n.len(), 2);
        assert!(n.iter().all(|c| c.distance == 2));
        assert!(GroupTable::new(3).nearest(&BitSet::new(3)).is_empty());
    }

    #[test]
    fn correlation_degree_counts_sensors_not_bits() {
        // Registry: one binary + one numeric sensor (4 bits total).
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        reg.add_sensor(SensorKind::Temperature, "t", Room::Kitchen);
        let layout = BitLayout::for_registry(&reg);
        let mut t = GroupTable::new(4);
        // Group 0: motion + all temp bits -> 2 sensors active.
        t.observe(&BitSet::from_indices(4, [0, 1, 2, 3]));
        // Group 1: two temp bits only -> 1 sensor active.
        t.observe(&BitSet::from_indices(4, [1, 3]));
        assert!((t.correlation_degree(&layout) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_degree_is_zero() {
        let mut reg = DeviceRegistry::new();
        reg.add_sensor(SensorKind::Motion, "m", Room::Kitchen);
        let layout = BitLayout::for_registry(&reg);
        assert_eq!(GroupTable::new(1).correlation_degree(&layout), 0.0);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn observe_rejects_width_mismatch() {
        let mut t = GroupTable::new(5);
        t.observe(&BitSet::new(4));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut t = table();
        t.index.clear();
        assert_eq!(t.lookup(&BitSet::from_indices(5, [0, 1])), None);
        t.rebuild_index();
        assert_eq!(
            t.lookup(&BitSet::from_indices(5, [0, 1])),
            Some(GroupId::new(0))
        );
    }

    #[test]
    fn iter_yields_all_groups() {
        let t = table();
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.index() as u32).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn merge_maps_shared_states_and_appends_new_ones() {
        let mut base = table(); // G0={0,1}x2, G1={3,4}, G2={0,1,2}
        let mut other = GroupTable::new(5);
        other.observe(&BitSet::from_indices(5, [3, 4])); // shared -> G1
        other.observe(&BitSet::from_indices(5, [2])); // new -> G3
        other.observe(&BitSet::from_indices(5, [3, 4])); // count 2
        other.observe(&BitSet::from_indices(5, [0, 1, 2])); // shared -> G2

        let map = base.merge(&other);
        assert_eq!(map, vec![GroupId::new(1), GroupId::new(3), GroupId::new(2)]);
        assert_eq!(base.len(), 4);
        assert_eq!(base.count(GroupId::new(1)), 3);
        assert_eq!(base.count(GroupId::new(3)), 1);
        assert_eq!(base.total_observations(), 8);
        assert_eq!(
            base.lookup(&BitSet::from_indices(5, [2])),
            Some(GroupId::new(3))
        );
    }

    #[test]
    fn merging_chunk_tables_in_order_matches_one_serial_table() {
        let states: Vec<BitSet> = [vec![0], vec![1], vec![0], vec![2], vec![1], vec![3]]
            .into_iter()
            .map(|idx| BitSet::from_indices(4, idx))
            .collect();
        let mut serial = GroupTable::new(4);
        for s in &states {
            serial.observe(s);
        }
        let mut merged = GroupTable::new(4);
        for chunk in states.chunks(2) {
            let mut local = GroupTable::new(4);
            for s in chunk {
                local.observe(s);
            }
            merged.merge(&local);
        }
        assert_eq!(merged, serial);
    }

    #[test]
    #[should_panic(expected = "equally wide")]
    fn merge_rejects_width_mismatch() {
        let mut t = GroupTable::new(5);
        t.merge(&GroupTable::new(4));
    }
}
