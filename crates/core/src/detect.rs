//! Real-time detection: the correlation check and the transition check.
//!
//! The correlation check (Section 3.3.1, Figure 3.5) searches the group table
//! for a main group; its absence is a correlation violation. The transition
//! check (Section 3.3.2, Figure 3.6) tests the three zero-probability cases
//! against the G2G, G2A, and A2G matrices.

use std::fmt;

use serde::{Deserialize, Serialize};

use dice_types::{ActuatorId, GroupId};

use crate::binarize::WindowObservation;
use crate::groups::Candidate;
use crate::model::DiceModel;

/// Which real-time check detected a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckKind {
    /// The correlation check (missing main group).
    Correlation,
    /// The transition check (zero-probability transition).
    Transition,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Correlation => write!(f, "correlation"),
            CheckKind::Transition => write!(f, "transition"),
        }
    }
}

/// One zero-probability transition found by the transition check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionCase {
    /// Case 1: `P(current group | previous group) = 0` in G2G.
    G2G {
        /// The previous window's group.
        from: GroupId,
        /// The current window's group.
        to: GroupId,
    },
    /// Case 2: `P(actuator | previous group) = 0` in G2A.
    G2A {
        /// The previous window's group.
        from: GroupId,
        /// The actuator that activated in the current window.
        actuator: ActuatorId,
    },
    /// Case 3: `P(current group | actuator) = 0` in A2G.
    A2G {
        /// The actuator that activated in the previous window.
        actuator: ActuatorId,
        /// The current window's group.
        to: GroupId,
    },
}

impl fmt::Display for TransitionCase {
    /// Renders the conditional probability that was consulted, e.g.
    /// `P(G4 | G1)` for a G2G case.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionCase::G2G { from, to } => write!(f, "P({to} | {from})"),
            TransitionCase::G2A { from, actuator } => write!(f, "P({actuator} | {from})"),
            TransitionCase::A2G { actuator, to } => write!(f, "P({to} | {actuator})"),
        }
    }
}

/// Summary of the previous window that the transition check needs: its group
/// (main group if one existed, else the nearest group) and its actuator
/// activations.
#[derive(Debug, Clone, PartialEq)]
pub struct PrevWindow {
    /// The previous window's group.
    pub group: GroupId,
    /// Whether that group was an exact (main-group) match.
    pub exact: bool,
    /// Actuators that activated in the previous window.
    pub activated_actuators: Vec<ActuatorId>,
}

/// The outcome of running both real-time checks on one window.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckResult {
    /// A main group exists and all transitions have been seen before.
    Normal {
        /// The matched main group.
        group: GroupId,
    },
    /// No main group within the group table: a correlation violation.
    CorrelationViolation {
        /// Candidate groups within the fault-distance threshold (none of
        /// them at distance zero), ascending by distance. The engine
        /// substitutes the nearest group(s) when the threshold admits none —
        /// a grossly corrupted state set — so downstream consumers always
        /// see the groups identification will diff against.
        candidates: Vec<Candidate>,
    },
    /// A main group exists but at least one transition has zero probability.
    TransitionViolation {
        /// The matched main group.
        group: GroupId,
        /// Every zero-probability case found (at least one).
        cases: Vec<TransitionCase>,
    },
}

impl CheckResult {
    /// Whether this result is a violation of either kind.
    pub fn is_violation(&self) -> bool {
        !matches!(self, CheckResult::Normal { .. })
    }

    /// The check that produced the violation, if any.
    pub fn violated_check(&self) -> Option<CheckKind> {
        match self {
            CheckResult::Normal { .. } => None,
            CheckResult::CorrelationViolation { .. } => Some(CheckKind::Correlation),
            CheckResult::TransitionViolation { .. } => Some(CheckKind::Transition),
        }
    }
}

/// Runs the correlation and transition checks against a trained model.
#[derive(Debug, Clone, Copy)]
pub struct Detector<'m> {
    model: &'m DiceModel,
}

impl<'m> Detector<'m> {
    /// Creates a detector over `model`.
    pub fn new(model: &'m DiceModel) -> Self {
        Detector { model }
    }

    /// The model in use.
    pub fn model(&self) -> &'m DiceModel {
        self.model
    }

    /// The correlation check: exact main-group lookup.
    pub fn correlation_check(&self, obs: &WindowObservation) -> Option<GroupId> {
        self.model.groups().lookup(&obs.state)
    }

    /// The transition check: tests cases 1–3 for the current window given
    /// the previous window's summary.
    ///
    /// A zero-probability transition only counts as a violation when its row
    /// carries at least `min_row_support` observations: a Markov row seen a
    /// handful of times asserts nothing about which successors are
    /// impossible.
    pub fn transition_check(
        &self,
        prev: &PrevWindow,
        group: GroupId,
        obs: &WindowObservation,
    ) -> Vec<TransitionCase> {
        let transitions = self.model.transitions();
        let support = self.model.config().min_row_support();
        let mut cases = Vec::new();

        // Case 1: G2G. Only meaningful when the previous window matched a
        // group exactly; distances computed against a nearest-group stand-in
        // would make most transitions look illegal.
        if prev.exact
            && transitions.g2g_row_support(prev.group) >= support.max(1)
            && !transitions.g2g_observed(prev.group, group)
        {
            cases.push(TransitionCase::G2G {
                from: prev.group,
                to: group,
            });
        }

        // Case 2: G2A. Every actuator activation in this window must have
        // been seen following the previous group.
        if prev.exact && transitions.g2g_row_support(prev.group) >= support.max(1) {
            for &actuator in &obs.activated_actuators {
                if !transitions.g2a_observed(prev.group, actuator) {
                    cases.push(TransitionCase::G2A {
                        from: prev.group,
                        actuator,
                    });
                }
            }
        }

        // Case 3: A2G. Every actuator activation in the previous window must
        // have been seen preceding the current group.
        for &actuator in &prev.activated_actuators {
            if transitions.a2g_row_total(actuator) >= support.max(1)
                && !transitions.a2g_observed(actuator, group)
            {
                cases.push(TransitionCase::A2G {
                    actuator,
                    to: group,
                });
            }
        }

        cases
    }

    /// Runs the full per-window check pipeline: correlation first, then — if
    /// a main group exists — the transition check.
    pub fn check(&self, prev: Option<&PrevWindow>, obs: &WindowObservation) -> CheckResult {
        match self.correlation_check(obs) {
            None => {
                let candidates = self
                    .model
                    .scan()
                    .candidates(&obs.state, self.model.candidate_distance());
                CheckResult::CorrelationViolation { candidates }
            }
            Some(group) => {
                let cases = match prev {
                    Some(prev) => self.transition_check(prev, group, obs),
                    None => Vec::new(),
                };
                if cases.is_empty() {
                    CheckResult::Normal { group }
                } else {
                    CheckResult::TransitionViolation { group, cases }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::{Binarizer, ThresholdTrainer};
    use crate::bitset::BitSet;
    use crate::config::DiceConfig;
    use crate::extract::ModelBuilder;
    use crate::layout::BitLayout;
    use dice_types::{
        ActuatorEvent, ActuatorKind, DeviceRegistry, Event, Room, SensorKind, SensorReading,
        Timestamp,
    };

    /// Two motion sensors + one bulb. Training alternates:
    /// G0 = {m0}, G1 = {m1}, bulb turns on in every G1 window.
    fn trained() -> (DiceModel, DeviceRegistry) {
        let mut reg = DeviceRegistry::new();
        let m0 = reg.add_sensor(SensorKind::Motion, "m0", Room::Kitchen);
        let m1 = reg.add_sensor(SensorKind::Motion, "m1", Room::Bedroom);
        let bulb = reg.add_actuator(ActuatorKind::SmartBulb, "hue", Room::Bedroom);
        // Tiny fixture: lower the row-support gate so the transition check
        // is active despite the short training run.
        let config = DiceConfig::builder().min_row_support(1).build();
        let mut builder =
            ModelBuilder::new(config, &reg, ThresholdTrainer::new(&reg).finish()).unwrap();
        for minute in 0..20 {
            let start = Timestamp::from_mins(minute);
            let end = Timestamp::from_mins(minute + 1);
            let mut events: Vec<Event> = Vec::new();
            if minute % 2 == 0 {
                events.push(SensorReading::new(m0, start, true.into()).into());
            } else {
                events.push(SensorReading::new(m1, start, true.into()).into());
                events.push(ActuatorEvent::new(bulb, start, true).into());
            }
            builder.observe_window(start, end, &events);
        }
        (builder.finish().unwrap(), reg)
    }

    fn obs(state: BitSet, actuators: Vec<dice_types::ActuatorId>) -> WindowObservation {
        WindowObservation {
            start: Timestamp::ZERO,
            end: Timestamp::from_mins(1),
            state,
            activated_actuators: actuators,
        }
    }

    #[test]
    fn known_state_passes_both_checks() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        let g0 = obs(BitSet::from_indices(2, [0]), vec![]);
        let prev = PrevWindow {
            group: dice_types::GroupId::new(1),
            exact: true,
            activated_actuators: vec![dice_types::ActuatorId::new(0)],
        };
        let result = detector.check(Some(&prev), &g0);
        assert_eq!(
            result,
            CheckResult::Normal {
                group: dice_types::GroupId::new(0)
            }
        );
        assert!(!result.is_violation());
    }

    #[test]
    fn unknown_state_is_correlation_violation() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        // Both motions active at once was never observed.
        let both = obs(BitSet::from_indices(2, [0, 1]), vec![]);
        let result = detector.check(None, &both);
        match &result {
            CheckResult::CorrelationViolation { candidates } => {
                // Both G0 and G1 are at distance 1.
                assert_eq!(candidates.len(), 2);
                assert!(candidates.iter().all(|c| c.distance == 1));
            }
            other => panic!("expected correlation violation, got {other:?}"),
        }
        assert_eq!(result.violated_check(), Some(CheckKind::Correlation));
    }

    #[test]
    fn illegal_g2g_is_transition_violation() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        // G0 -> G0 never happened (training strictly alternates).
        let g0 = obs(BitSet::from_indices(2, [0]), vec![]);
        let prev = PrevWindow {
            group: dice_types::GroupId::new(0),
            exact: true,
            activated_actuators: vec![],
        };
        let result = detector.check(Some(&prev), &g0);
        match result {
            CheckResult::TransitionViolation { group, cases } => {
                assert_eq!(group, dice_types::GroupId::new(0));
                assert_eq!(
                    cases,
                    vec![TransitionCase::G2G {
                        from: dice_types::GroupId::new(0),
                        to: dice_types::GroupId::new(0),
                    }]
                );
            }
            other => panic!("expected transition violation, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_actuator_is_g2a_violation() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        let bulb = dice_types::ActuatorId::new(0);
        // Bulb turning on after a G0 window was never seen (only after G1... actually
        // training records G2A from the *previous* group; bulb activated during G1
        // windows, so G2A has (G0 -> bulb) recorded. Use prev = G1 instead.
        let g0 = obs(BitSet::from_indices(2, [0]), vec![bulb]);
        let prev = PrevWindow {
            group: dice_types::GroupId::new(1),
            exact: true,
            activated_actuators: vec![bulb],
        };
        let result = detector.check(Some(&prev), &g0);
        match result {
            CheckResult::TransitionViolation { cases, .. } => {
                assert!(cases.contains(&TransitionCase::G2A {
                    from: dice_types::GroupId::new(1),
                    actuator: bulb,
                }));
            }
            other => panic!("expected transition violation, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_group_after_actuator_is_a2g_violation() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        let bulb = dice_types::ActuatorId::new(0);
        // After a bulb activation the home always went to G0; claim it went to G1.
        let g1 = obs(BitSet::from_indices(2, [1]), vec![]);
        let prev = PrevWindow {
            group: dice_types::GroupId::new(0),
            exact: true,
            activated_actuators: vec![bulb],
        };
        let result = detector.check(Some(&prev), &g1);
        match result {
            CheckResult::TransitionViolation { cases, .. } => {
                assert!(cases.iter().any(
                    |c| matches!(c, TransitionCase::A2G { actuator, .. } if *actuator == bulb)
                ));
            }
            other => panic!("expected transition violation, got {other:?}"),
        }
    }

    #[test]
    fn first_window_skips_transition_check() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        let g0 = obs(BitSet::from_indices(2, [0]), vec![]);
        assert!(!detector.check(None, &g0).is_violation());
    }

    #[test]
    fn inexact_prev_group_skips_g2g_and_g2a() {
        let (model, _) = trained();
        let detector = Detector::new(&model);
        let g0 = obs(BitSet::from_indices(2, [0]), vec![]);
        let prev = PrevWindow {
            group: dice_types::GroupId::new(0),
            exact: false,
            activated_actuators: vec![],
        };
        // G0 -> G0 would be a violation with exact prev, but inexact prevs
        // are stand-ins and do not trigger case 1.
        assert!(!detector.check(Some(&prev), &g0).is_violation());
    }

    #[test]
    fn check_kind_displays() {
        assert_eq!(CheckKind::Correlation.to_string(), "correlation");
        assert_eq!(CheckKind::Transition.to_string(), "transition");
    }

    #[test]
    fn binarizer_integration_round_trip() {
        // End-to-end: raw events -> binarize -> detect.
        let (model, reg) = trained();
        let detector = Detector::new(&model);
        let layout = BitLayout::for_registry(&reg);
        let binarizer = Binarizer::new(layout, ThresholdTrainer::new(&reg).finish());
        let events = [Event::from(SensorReading::new(
            dice_types::SensorId::new(0),
            Timestamp::from_secs(5),
            true.into(),
        ))];
        let obs = binarizer.binarize(Timestamp::ZERO, Timestamp::from_mins(1), &events);
        assert!(!detector.check(None, &obs).is_violation());
    }
}
