//! Errors of the DICE core pipeline.

use std::error::Error;
use std::fmt;

/// Errors raised while extracting context or running detection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiceError {
    /// The precomputation log contained no events.
    EmptyTrainingData,
    /// The deployment registry declares no sensors.
    NoSensors,
    /// A model was asked to process a state set of the wrong width.
    StateWidthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Received number of bits.
        got: usize,
    },
}

impl fmt::Display for DiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiceError::EmptyTrainingData => {
                write!(f, "precomputation log contains no events")
            }
            DiceError::NoSensors => write!(f, "device registry declares no sensors"),
            DiceError::StateWidthMismatch { expected, got } => {
                write!(
                    f,
                    "state set has {got} bits but the model expects {expected}"
                )
            }
        }
    }
}

impl Error for DiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DiceError::EmptyTrainingData
            .to_string()
            .contains("no events"));
        assert!(DiceError::NoSensors.to_string().contains("no sensors"));
        let e = DiceError::StateWidthMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<DiceError>();
    }
}
