//! Typed diagnostics for static model verification.
//!
//! A [`Diagnostic`] is one finding about a trained [`DiceModel`]
//! (crate::DiceModel) or a [`DiceConfig`](crate::DiceConfig): a stable code
//! (`DV001`, `DV100`, ...), a severity, and a human-readable message. The
//! structural checks live in [`crate::invariants`]; the `dice-verify` crate
//! layers graph analyses and the `dice-lint` CLI on top of the same
//! vocabulary.
//!
//! Codes are append-only: a code is never renumbered or reused, so scripts
//! that grep lint output stay valid across versions.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never actionable on its own.
    Info,
    /// Suspicious but not structurally unsound; the model still runs.
    Warning,
    /// A broken invariant: detection/identification results computed from
    /// this model are unreliable, and loading it is rejected by default.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of one verifiable model invariant.
///
/// Grouped by family: `DV0xx` container, `DV10x` transition matrices,
/// `DV11x` group table, `DV12x` binarizer thresholds, `DV13x` G2G graph
/// shape, `DV14x` configuration, `DV15x` cross-section consistency,
/// `DV16x` model-level sanity, `DV17x` parallel-merge conservation,
/// `DV18x` transition-graph dataflow, `DV19x` cross-artifact
/// compatibility, `DV20x` documentation coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagnosticCode {
    /// DV001: the serialized container could not be decoded at all.
    ContainerUnreadable,
    /// DV100: a transition row's stored total disagrees with the sum of its
    /// entries, so row probabilities do not sum to one.
    RowNotStochastic,
    /// DV101: a G2G transition references a group id outside the group table.
    DanglingGroupInG2g,
    /// DV102: a G2A transition references a group or actuator that does not
    /// exist.
    DanglingIdInG2a,
    /// DV103: an A2G transition references an actuator or group that does not
    /// exist.
    DanglingIdInA2g,
    /// DV110: a group state set's bit width disagrees with the bit layout.
    GroupWidthMismatch,
    /// DV111: two groups share the same state set.
    DuplicateGroupState,
    /// DV112: a group carries a zero observation count.
    ZeroGroupCount,
    /// DV120: a trained `valueThre` threshold is NaN or infinite.
    NonFiniteThreshold,
    /// DV121: a threshold is trained for a binary sensor, which has no level
    /// bit to apply it to.
    ThresholdOnBinarySensor,
    /// DV122: a numeric sensor has no trained threshold (it produced no
    /// samples during precomputation), so its level bit is always zero.
    UntrainedNumericThreshold,
    /// DV123: the threshold table covers a different number of sensors than
    /// the bit layout.
    ThresholdTableLengthMismatch,
    /// DV130: a group is unreachable: no G2G transition from another group
    /// ever enters it.
    UnreachableGroup,
    /// DV131: a group is absorbing: its only observed G2G successor is
    /// itself.
    AbsorbingGroup,
    /// DV140: the confirmation horizon is shorter than the required number
    /// of confirming violations, so transition faults can never be reported.
    ConfirmationHorizonTooShort,
    /// DV141: the candidate-group distance threshold is at least the state
    /// set width, so every group is always a candidate.
    CandidateDistanceExceedsWidth,
    /// DV142: the candidate-group distance is overridden to zero, reducing
    /// identification to exact lookup.
    ZeroCandidateDistance,
    /// DV143: `min_row_support` is zero, so a single observation of a row
    /// licenses zero-probability violations from it.
    ZeroRowSupport,
    /// DV144: the window duration is not positive.
    NonPositiveWindow,
    /// DV145: a count parameter that must be at least one is zero.
    ZeroCountParameter,
    /// DV150: the group observation counts do not sum to the recorded number
    /// of training windows.
    TrainingWindowMismatch,
    /// DV160: the model has no groups at all.
    EmptyModel,
    /// DV170: a merged group table's observation counts are not the sum of
    /// its parts (a chunk's observations were lost or double-counted).
    MergeGroupCountNotPreserved,
    /// DV171: a merged group table holds the same state set under two ids.
    MergeDuplicateGroupState,
    /// DV172: a merged transition matrix's row total is not the sum of the
    /// parts' row totals.
    MergeRowTotalMismatch,
    /// DV180: fixed-point reachability found groups no other part of the
    /// transition graph can flow into (an extra source component).
    UnreachableFlowComponent,
    /// DV181: fixed-point reachability found groups the transition graph
    /// can never leave (an extra absorbing sink component).
    AbsorbingSinkComponent,
    /// DV182: the transition graph splits into disconnected components, so
    /// parts of the model can never interact.
    DisconnectedComponent,
    /// DV183: an actuator context has outgoing A2G transitions but no group
    /// ever transitions into it (no G2A entry targets it).
    UnenterableActuator,
    /// DV184: a transition row's support sits exactly at `min_row_support`,
    /// so a one-count perturbation flips whether its zero-probability
    /// transitions count as violations.
    FragileRowSupport,
    /// DV190: two artifacts disagree on the sensor bit layout fingerprint.
    ArtifactLayoutMismatch,
    /// DV191: two artifacts disagree on the configuration fingerprint.
    ArtifactConfigMismatch,
    /// DV192: two artifacts disagree on the trained threshold fingerprint.
    ArtifactThresholdMismatch,
    /// DV193: an artifact file could not be parsed as its detected kind.
    ArtifactUnreadable,
    /// DV194: an artifact carries no fingerprint to check (e.g. a telemetry
    /// snapshot recorded before any engine published one).
    ArtifactFingerprintUnavailable,
    /// DV200: the runtime metric catalog and the DESIGN.md metric table
    /// disagree — a metric is registered but undocumented, or documented
    /// but no longer registered.
    CatalogCoverage,
}

impl DiagnosticCode {
    /// The stable `DVnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticCode::ContainerUnreadable => "DV001",
            DiagnosticCode::RowNotStochastic => "DV100",
            DiagnosticCode::DanglingGroupInG2g => "DV101",
            DiagnosticCode::DanglingIdInG2a => "DV102",
            DiagnosticCode::DanglingIdInA2g => "DV103",
            DiagnosticCode::GroupWidthMismatch => "DV110",
            DiagnosticCode::DuplicateGroupState => "DV111",
            DiagnosticCode::ZeroGroupCount => "DV112",
            DiagnosticCode::NonFiniteThreshold => "DV120",
            DiagnosticCode::ThresholdOnBinarySensor => "DV121",
            DiagnosticCode::UntrainedNumericThreshold => "DV122",
            DiagnosticCode::ThresholdTableLengthMismatch => "DV123",
            DiagnosticCode::UnreachableGroup => "DV130",
            DiagnosticCode::AbsorbingGroup => "DV131",
            DiagnosticCode::ConfirmationHorizonTooShort => "DV140",
            DiagnosticCode::CandidateDistanceExceedsWidth => "DV141",
            DiagnosticCode::ZeroCandidateDistance => "DV142",
            DiagnosticCode::ZeroRowSupport => "DV143",
            DiagnosticCode::NonPositiveWindow => "DV144",
            DiagnosticCode::ZeroCountParameter => "DV145",
            DiagnosticCode::TrainingWindowMismatch => "DV150",
            DiagnosticCode::EmptyModel => "DV160",
            DiagnosticCode::MergeGroupCountNotPreserved => "DV170",
            DiagnosticCode::MergeDuplicateGroupState => "DV171",
            DiagnosticCode::MergeRowTotalMismatch => "DV172",
            DiagnosticCode::UnreachableFlowComponent => "DV180",
            DiagnosticCode::AbsorbingSinkComponent => "DV181",
            DiagnosticCode::DisconnectedComponent => "DV182",
            DiagnosticCode::UnenterableActuator => "DV183",
            DiagnosticCode::FragileRowSupport => "DV184",
            DiagnosticCode::ArtifactLayoutMismatch => "DV190",
            DiagnosticCode::ArtifactConfigMismatch => "DV191",
            DiagnosticCode::ArtifactThresholdMismatch => "DV192",
            DiagnosticCode::ArtifactUnreadable => "DV193",
            DiagnosticCode::ArtifactFingerprintUnavailable => "DV194",
            DiagnosticCode::CatalogCoverage => "DV200",
        }
    }

    /// The severity a finding with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::ContainerUnreadable
            | DiagnosticCode::RowNotStochastic
            | DiagnosticCode::DanglingGroupInG2g
            | DiagnosticCode::DanglingIdInG2a
            | DiagnosticCode::DanglingIdInA2g
            | DiagnosticCode::GroupWidthMismatch
            | DiagnosticCode::DuplicateGroupState
            | DiagnosticCode::ZeroGroupCount
            | DiagnosticCode::NonFiniteThreshold
            | DiagnosticCode::ThresholdTableLengthMismatch
            | DiagnosticCode::NonPositiveWindow
            | DiagnosticCode::ZeroCountParameter
            | DiagnosticCode::TrainingWindowMismatch
            | DiagnosticCode::MergeGroupCountNotPreserved
            | DiagnosticCode::MergeDuplicateGroupState
            | DiagnosticCode::MergeRowTotalMismatch
            | DiagnosticCode::ArtifactLayoutMismatch
            | DiagnosticCode::ArtifactConfigMismatch
            | DiagnosticCode::ArtifactThresholdMismatch
            | DiagnosticCode::ArtifactUnreadable => Severity::Error,
            DiagnosticCode::ThresholdOnBinarySensor
            | DiagnosticCode::UnreachableGroup
            | DiagnosticCode::AbsorbingGroup
            | DiagnosticCode::ConfirmationHorizonTooShort
            | DiagnosticCode::CandidateDistanceExceedsWidth
            | DiagnosticCode::ZeroCandidateDistance
            | DiagnosticCode::ZeroRowSupport
            | DiagnosticCode::EmptyModel
            | DiagnosticCode::UnreachableFlowComponent
            | DiagnosticCode::AbsorbingSinkComponent
            | DiagnosticCode::DisconnectedComponent
            | DiagnosticCode::UnenterableActuator
            | DiagnosticCode::ArtifactFingerprintUnavailable
            | DiagnosticCode::CatalogCoverage => Severity::Warning,
            DiagnosticCode::UntrainedNumericThreshold | DiagnosticCode::FragileRowSupport => {
                Severity::Info
            }
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    code: DiagnosticCode,
    severity: Severity,
    message: String,
}

impl Diagnostic {
    /// Creates a finding with the code's default severity.
    pub fn new(code: DiagnosticCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
        }
    }

    /// The stable code.
    pub fn code(&self) -> DiagnosticCode {
        self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.severity, self.code, self.message)
    }
}

/// Whether any finding is an [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity() == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            DiagnosticCode::ContainerUnreadable,
            DiagnosticCode::RowNotStochastic,
            DiagnosticCode::DanglingGroupInG2g,
            DiagnosticCode::DanglingIdInG2a,
            DiagnosticCode::DanglingIdInA2g,
            DiagnosticCode::GroupWidthMismatch,
            DiagnosticCode::DuplicateGroupState,
            DiagnosticCode::ZeroGroupCount,
            DiagnosticCode::NonFiniteThreshold,
            DiagnosticCode::ThresholdOnBinarySensor,
            DiagnosticCode::UntrainedNumericThreshold,
            DiagnosticCode::ThresholdTableLengthMismatch,
            DiagnosticCode::UnreachableGroup,
            DiagnosticCode::AbsorbingGroup,
            DiagnosticCode::ConfirmationHorizonTooShort,
            DiagnosticCode::CandidateDistanceExceedsWidth,
            DiagnosticCode::ZeroCandidateDistance,
            DiagnosticCode::ZeroRowSupport,
            DiagnosticCode::NonPositiveWindow,
            DiagnosticCode::ZeroCountParameter,
            DiagnosticCode::TrainingWindowMismatch,
            DiagnosticCode::EmptyModel,
            DiagnosticCode::MergeGroupCountNotPreserved,
            DiagnosticCode::MergeDuplicateGroupState,
            DiagnosticCode::MergeRowTotalMismatch,
            DiagnosticCode::UnreachableFlowComponent,
            DiagnosticCode::AbsorbingSinkComponent,
            DiagnosticCode::DisconnectedComponent,
            DiagnosticCode::UnenterableActuator,
            DiagnosticCode::FragileRowSupport,
            DiagnosticCode::ArtifactLayoutMismatch,
            DiagnosticCode::ArtifactConfigMismatch,
            DiagnosticCode::ArtifactThresholdMismatch,
            DiagnosticCode::ArtifactUnreadable,
            DiagnosticCode::ArtifactFingerprintUnavailable,
            DiagnosticCode::CatalogCoverage,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate diagnostic code");
        assert!(codes.iter().all(|c| c.starts_with("DV")));
    }

    #[test]
    fn display_renders_severity_code_and_message() {
        let d = Diagnostic::new(DiagnosticCode::DuplicateGroupState, "groups 1 and 4");
        assert_eq!(d.to_string(), "error: [DV111] groups 1 and 4");
        assert_eq!(d.severity(), Severity::Error);
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let warn = Diagnostic::new(DiagnosticCode::EmptyModel, "no groups");
        assert!(!has_errors(std::slice::from_ref(&warn)));
        let err = Diagnostic::new(DiagnosticCode::ZeroGroupCount, "group 0");
        assert!(has_errors(&[warn, err]));
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
