//! Identification of the faulty device (Section 3.4, Figure 3.7).
//!
//! When a violation is detected, DICE diffs the problematic sensor state set
//! against the *probable groups* and folds the differing bits back to
//! sensors. Multiple probable groups are pruned by their transition
//! probability from the previous group. G2A/A2G violations contribute the
//! involved actuators. The engine then intersects the per-window probable
//! sets until at most `numThre` devices remain.

use std::collections::BTreeSet;

use dice_types::{DeviceId, GroupId};

use crate::binarize::WindowObservation;
use crate::detect::{CheckResult, PrevWindow, TransitionCase};
use crate::groups::Candidate;
use crate::model::DiceModel;

/// The probable faulty devices derived from one violating window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbableSet {
    /// The probable groups the state set was compared against.
    pub groups: Vec<GroupId>,
    /// The probable faulty devices (union across probable groups).
    pub devices: BTreeSet<DeviceId>,
}

impl ProbableSet {
    /// Whether no devices are implicated.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Number of implicated devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }
}

/// Derives probable faulty devices from violations.
#[derive(Debug, Clone, Copy)]
pub struct Identifier<'m> {
    model: &'m DiceModel,
}

impl<'m> Identifier<'m> {
    /// Creates an identifier over `model`.
    pub fn new(model: &'m DiceModel) -> Self {
        Identifier { model }
    }

    /// Derives the probable faulty devices for one violating window.
    ///
    /// For a correlation violation the probable groups are the candidate
    /// groups (distance ≤ threshold); for a G2G violation they are the legal
    /// successors of the previous group; G2A/A2G violations implicate the
    /// involved actuators directly.
    ///
    /// Returns an empty set for [`CheckResult::Normal`].
    pub fn probable_devices(
        &self,
        prev: Option<&PrevWindow>,
        obs: &WindowObservation,
        result: &CheckResult,
    ) -> ProbableSet {
        match result {
            CheckResult::Normal { .. } => ProbableSet::default(),
            CheckResult::CorrelationViolation { candidates } => {
                self.identify_correlation(prev, obs, candidates)
            }
            CheckResult::TransitionViolation { group, cases } => {
                self.identify_transition(prev, obs, *group, cases)
            }
        }
    }

    /// Identification after a correlation violation: diff the state set
    /// against the probable groups (Figure 3.7).
    fn identify_correlation(
        &self,
        prev: Option<&PrevWindow>,
        obs: &WindowObservation,
        candidates: &[Candidate],
    ) -> ProbableSet {
        // Fall back to the nearest groups when nothing is inside the
        // threshold (a grossly corrupted state set). The engine pre-fills
        // that fallback into `candidates`, so this branch only runs for
        // externally constructed results.
        let mut probable: Vec<Candidate> = if candidates.is_empty() {
            self.model.scan().nearest(&obs.state)
        } else {
            candidates.to_vec()
        };

        // "If there are two or more probable groups, DICE checks the
        // transition probability from the previous group ... groups that
        // have no transition probability are removed."
        if probable.len() > 1 {
            if let Some(prev) = prev {
                if prev.exact {
                    let pruned: Vec<Candidate> = probable
                        .iter()
                        .copied()
                        .filter(|c| self.model.transitions().g2g_observed(prev.group, c.group))
                        .collect();
                    if !pruned.is_empty() {
                        probable = pruned;
                    }
                }
            }
        }

        // Among the remaining probable groups, the nearest ones explain the
        // observation with the fewest faulty bits; diffing against farther
        // groups only inflates the probable-device union and stalls the
        // numThre intersection. Configurable for the ablation study.
        if self.model.config().nearest_only_identification() {
            if let Some(min) = probable.iter().map(|c| c.distance).min() {
                probable.retain(|c| c.distance == min);
            }
        }

        self.diff_union(obs, &probable)
    }

    /// Identification after a transition violation.
    fn identify_transition(
        &self,
        prev: Option<&PrevWindow>,
        obs: &WindowObservation,
        group: GroupId,
        cases: &[TransitionCase],
    ) -> ProbableSet {
        let mut set = ProbableSet::default();

        for case in cases {
            match case {
                TransitionCase::G2G { from, .. } => {
                    // Probable groups = legal successors of the previous
                    // group, preferring those near the observed state.
                    let successors = self.model.transitions().g2g_successors(*from);
                    let mut cands: Vec<Candidate> = successors
                        .iter()
                        .filter(|&&g| g != group)
                        .map(|&g| Candidate {
                            group: g,
                            distance: obs.state.hamming_distance(self.model.groups().state(g)),
                        })
                        .collect();
                    cands.sort_by_key(|c| (c.distance, c.group));
                    let within: Vec<Candidate> = cands
                        .iter()
                        .copied()
                        .filter(|c| c.distance <= self.model.candidate_distance())
                        .collect();
                    let chosen: Vec<Candidate> = if !within.is_empty() {
                        within
                    } else if let Some(min) = cands.first().map(|c| c.distance) {
                        cands.into_iter().filter(|c| c.distance == min).collect()
                    } else {
                        Vec::new()
                    };
                    let part = self.diff_union(obs, &chosen);
                    set.groups.extend(part.groups);
                    set.devices.extend(part.devices);
                }
                TransitionCase::G2A { actuator, .. } => {
                    // "DICE regards the present activated actuators (G2A)
                    // ... as faulty actuators."
                    set.devices.insert(DeviceId::Actuator(*actuator));
                }
                TransitionCase::A2G { actuator, .. } => {
                    // "... or the previously activated actuators (A2G)."
                    set.devices.insert(DeviceId::Actuator(*actuator));
                }
            }
        }

        let _ = prev; // prev is implicit in the recorded cases
        set.groups.sort_unstable();
        set.groups.dedup();
        set
    }

    /// Diffs the observed state set against each probable group and unions
    /// the implicated sensors.
    fn diff_union(&self, obs: &WindowObservation, probable: &[Candidate]) -> ProbableSet {
        let layout = self.model.layout();
        let mut devices = BTreeSet::new();
        let mut groups = Vec::with_capacity(probable.len());
        for c in probable {
            groups.push(c.group);
            let group_state = self.model.groups().state(c.group);
            for sensor in layout.sensors_of_bits(obs.state.diff_indices(group_state)) {
                devices.insert(DeviceId::Sensor(sensor));
            }
        }
        ProbableSet { groups, devices }
    }
}

/// Accumulates per-window probable sets and applies the `numThre`
/// intersection rule of Section 3.4.
///
/// The paper's example: probable sets `{S1,S2,S3}`, `{S1,S2,S4}`,
/// `{S1,S5,S6}` intersect to `{S1}` after three windows, at which point the
/// faulty device is reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntersectionTracker {
    accumulated: Option<BTreeSet<DeviceId>>,
    rounds: usize,
}

impl IntersectionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one window's probable set; empty sets are ignored.
    ///
    /// If intersecting would empty the accumulated set (an intermittent or
    /// disjoint observation), the accumulated set is kept unchanged — the
    /// fault is expected to reappear.
    pub fn feed(&mut self, devices: &BTreeSet<DeviceId>) {
        if devices.is_empty() {
            return;
        }
        self.rounds += 1;
        match &mut self.accumulated {
            None => self.accumulated = Some(devices.clone()),
            Some(acc) => {
                let intersection: BTreeSet<DeviceId> = acc.intersection(devices).copied().collect();
                if !intersection.is_empty() {
                    *acc = intersection;
                }
            }
        }
    }

    /// The current intersection.
    pub fn current(&self) -> Option<&BTreeSet<DeviceId>> {
        self.accumulated.as_ref()
    }

    /// Number of non-empty sets fed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Whether the intersection has narrowed to at most `num_thre` devices.
    pub fn converged(&self, num_thre: usize) -> bool {
        self.accumulated
            .as_ref()
            .is_some_and(|acc| acc.len() <= num_thre)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::ThresholdTrainer;
    use crate::bitset::BitSet;
    use crate::config::DiceConfig;
    use crate::detect::Detector;
    use crate::extract::ModelBuilder;
    use dice_types::{DeviceRegistry, Event, Room, SensorId, SensorKind, SensorReading, Timestamp};

    /// Three binary sensors; training shows G0={s0,s1}, G1={s2}, G2={} with
    /// transitions G0->G1->G2->G0.
    fn trained() -> DiceModel {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
        let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
        let config = DiceConfig::builder().min_row_support(1).build();
        let mut builder =
            ModelBuilder::new(config, &reg, ThresholdTrainer::new(&reg).finish()).unwrap();
        for round in 0..6 {
            let minute = round as i64;
            let start = Timestamp::from_mins(minute);
            let end = Timestamp::from_mins(minute + 1);
            let mut events: Vec<Event> = Vec::new();
            match round % 3 {
                0 => {
                    events.push(SensorReading::new(s0, start, true.into()).into());
                    events.push(SensorReading::new(s1, start, true.into()).into());
                }
                1 => events.push(SensorReading::new(s2, start, true.into()).into()),
                _ => {}
            }
            builder.observe_window(start, end, &events);
        }
        builder.finish().unwrap()
    }

    fn obs(bits: &[usize]) -> WindowObservation {
        WindowObservation {
            start: Timestamp::ZERO,
            end: Timestamp::from_mins(1),
            state: BitSet::from_indices(3, bits.iter().copied()),
            activated_actuators: vec![],
        }
    }

    #[test]
    fn correlation_identification_diffs_candidates() {
        let model = trained();
        let detector = Detector::new(&model);
        let identifier = Identifier::new(&model);
        // Fail-stop of s1: observe {s0} instead of G0={s0,s1}.
        let o = obs(&[0]);
        let result = detector.check(None, &o);
        let probable = identifier.probable_devices(None, &o, &result);
        // Candidates within distance 1: G0 (diff {s1}) and G2={} (diff {s0}).
        assert!(probable
            .devices
            .contains(&DeviceId::Sensor(SensorId::new(1))));
        assert!(probable
            .devices
            .contains(&DeviceId::Sensor(SensorId::new(0))));
        assert_eq!(probable.len(), 2);
    }

    #[test]
    fn prev_group_prunes_probable_groups() {
        let model = trained();
        let detector = Detector::new(&model);
        let identifier = Identifier::new(&model);
        let o = obs(&[0]);
        let result = detector.check(None, &o);
        // Previous group was G2 (empty). Legal successor is only G0, so the
        // G2 candidate (reachable only from G1) is pruned and the diff
        // narrows to {s1}.
        let prev = PrevWindow {
            group: GroupId::new(2),
            exact: true,
            activated_actuators: vec![],
        };
        let probable = identifier.probable_devices(Some(&prev), &o, &result);
        assert_eq!(
            probable.devices.into_iter().collect::<Vec<_>>(),
            vec![DeviceId::Sensor(SensorId::new(1))]
        );
    }

    #[test]
    fn g2g_violation_diffs_against_legal_successors() {
        let model = trained();
        let detector = Detector::new(&model);
        let identifier = Identifier::new(&model);
        // Prev = G0; current = G0 again (never seen: G0 -> G1 only).
        let o = obs(&[0, 1]);
        let prev = PrevWindow {
            group: GroupId::new(0),
            exact: true,
            activated_actuators: vec![],
        };
        let result = detector.check(Some(&prev), &o);
        assert!(result.is_violation());
        let probable = identifier.probable_devices(Some(&prev), &o, &result);
        // Legal successor of G0 is G1={s2}; diff {s0,s1} vs {s2} -> all three.
        assert!(!probable.is_empty());
        assert!(probable
            .devices
            .contains(&DeviceId::Sensor(SensorId::new(2))));
    }

    #[test]
    fn normal_result_yields_empty_set() {
        let model = trained();
        let detector = Detector::new(&model);
        let identifier = Identifier::new(&model);
        let o = obs(&[0, 1]);
        let result = detector.check(None, &o);
        assert!(!result.is_violation());
        assert!(identifier.probable_devices(None, &o, &result).is_empty());
    }

    #[test]
    fn intersection_tracker_follows_paper_example() {
        // {S1,S2,S3} ∩ {S1,S2,S4} ∩ {S1,S5,S6} = {S1}.
        let sets: Vec<BTreeSet<DeviceId>> = vec![
            [1, 2, 3]
                .iter()
                .map(|&i| DeviceId::Sensor(SensorId::new(i)))
                .collect(),
            [1, 2, 4]
                .iter()
                .map(|&i| DeviceId::Sensor(SensorId::new(i)))
                .collect(),
            [1, 5, 6]
                .iter()
                .map(|&i| DeviceId::Sensor(SensorId::new(i)))
                .collect(),
        ];
        let mut tracker = IntersectionTracker::new();
        tracker.feed(&sets[0]);
        assert!(!tracker.converged(1));
        tracker.feed(&sets[1]);
        assert!(!tracker.converged(1));
        tracker.feed(&sets[2]);
        assert!(tracker.converged(1));
        let result: Vec<DeviceId> = tracker.current().unwrap().iter().copied().collect();
        assert_eq!(result, vec![DeviceId::Sensor(SensorId::new(1))]);
        assert_eq!(tracker.rounds(), 3);
    }

    #[test]
    fn intersection_tracker_ignores_empty_and_disjoint_sets() {
        let a: BTreeSet<DeviceId> = [DeviceId::Sensor(SensorId::new(1))].into_iter().collect();
        let b: BTreeSet<DeviceId> = [DeviceId::Sensor(SensorId::new(9))].into_iter().collect();
        let mut tracker = IntersectionTracker::new();
        tracker.feed(&BTreeSet::new());
        assert_eq!(tracker.rounds(), 0);
        tracker.feed(&a);
        tracker.feed(&b); // disjoint: accumulated set kept
        assert_eq!(tracker.current().unwrap(), &a);
    }

    #[test]
    fn converged_with_num_thre_three() {
        let set: BTreeSet<DeviceId> = (0..3).map(|i| DeviceId::Sensor(SensorId::new(i))).collect();
        let mut tracker = IntersectionTracker::new();
        tracker.feed(&set);
        assert!(!tracker.converged(1));
        assert!(tracker.converged(3));
    }
}
