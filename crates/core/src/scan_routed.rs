//! Size-based routing between the row-major and bit-sliced scan indexes.
//!
//! The bit-sliced [`SlicedScanIndex`] wins decisively on large group tables
//! (5–190× over the naive scan at 1k–100k groups, `BENCH_core.json`), but it
//! pays a fixed per-query cost — bucket-range setup plus at least one full
//! 256-lane block of plane passes — that a small table never amortizes: at
//! 100 groups the row-major [`ScanIndex`] is ~2× faster than the sliced
//! path. [`RoutedScanIndex`] is the model-facing index that picks the right
//! structure at build time: tables below [`SCAN_CROSSOVER_GROUPS`] groups
//! build only the packed row-major mirror, larger tables build only the
//! bit-sliced planes, and every query method delegates to whichever one
//! exists.
//!
//! Both structures return bit-identical candidate lists (a property-tested
//! equivalence), so routing changes timings, never results. The
//! [`ScanProfile`]s differ in bookkeeping as documented on each method:
//! the row-major path reports per-row prefilter prunes and always-zero
//! block counters.

use crate::bitset::BitSet;
use crate::groups::{Candidate, GroupTable};
use crate::scan::{ScanIndex, ScanProfile};
use crate::scan_sliced::{ScanBackend, SlicedScanIndex};

/// Group-table sizes below this build the row-major [`ScanIndex`]; larger
/// tables build the bit-sliced [`SlicedScanIndex`].
///
/// Tuned on the `bench-json` synthetic workload (270-bit hh102 states,
/// distance ≤ 3): one 256-lane block is the sliced path's minimum per-query
/// work, so tables smaller than a block scan faster row-major, and the
/// sliced cascade only pulls ahead once its bucket pruning earns its setup.
/// Measured per-query times put the crossover between 100 groups (row-major
/// ~1.9× faster) and 200 groups (bit-sliced ~1.1× faster); 160 splits the
/// bracket. The chosen value is recorded in `BENCH_core.json`
/// (`candidate_scan.crossover_groups`).
pub const SCAN_CROSSOVER_GROUPS: usize = 160;

/// A candidate-scan index that routes by table size: row-major below
/// [`SCAN_CROSSOVER_GROUPS`] groups, bit-sliced at or above it.
///
/// This is the index a [`DiceModel`](crate::DiceModel) builds and the
/// engine queries; both underlying structures return exactly what the naive
/// [`GroupTable::candidates`] / [`GroupTable::nearest`] scans return.
///
/// # Example
///
/// ```
/// use dice_core::{BitSet, GroupTable, RoutedScanIndex};
///
/// let mut table = GroupTable::new(5);
/// table.observe(&BitSet::from_indices(5, [0, 1]));
/// table.observe(&BitSet::from_indices(5, [3, 4]));
/// let index = RoutedScanIndex::build(&table);
/// assert!(!index.is_bitsliced()); // 2 groups route row-major
///
/// let query = BitSet::from_indices(5, [0]);
/// assert_eq!(index.candidates(&query, 1), table.candidates(&query, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedScanIndex {
    inner: RoutedInner,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RoutedInner {
    /// Small table: packed row-major rows plus the backend the sliced path
    /// *would* dispatch to (kept so telemetry reports one stable value per
    /// process regardless of routing).
    Rows {
        index: ScanIndex,
        backend: ScanBackend,
    },
    Sliced(SlicedScanIndex),
}

impl Default for RoutedScanIndex {
    fn default() -> Self {
        RoutedScanIndex {
            inner: RoutedInner::Rows {
                index: ScanIndex::default(),
                backend: ScanBackend::default(),
            },
        }
    }
}

impl RoutedScanIndex {
    /// Builds the routed index with the runtime-detected SIMD backend.
    pub fn build(table: &GroupTable) -> Self {
        Self::with_backend(table, ScanBackend::detect())
    }

    /// Builds the routed index with an explicit backend (tests / CI
    /// forcing); the backend only affects tables large enough to route to
    /// the bit-sliced path.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is not supported on this CPU.
    pub fn with_backend(table: &GroupTable, backend: ScanBackend) -> Self {
        assert!(
            backend.is_supported(),
            "scan backend {} not supported on this CPU",
            backend.name()
        );
        let inner = if table.len() < SCAN_CROSSOVER_GROUPS {
            RoutedInner::Rows {
                index: ScanIndex::build(table),
                backend,
            }
        } else {
            RoutedInner::Sliced(SlicedScanIndex::with_backend(table, backend))
        };
        RoutedScanIndex { inner }
    }

    /// Number of indexed groups.
    pub fn len(&self) -> usize {
        match &self.inner {
            RoutedInner::Rows { index, .. } => index.len(),
            RoutedInner::Sliced(sliced) => sliced.len(),
        }
    }

    /// Whether the index holds no groups.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of the indexed state sets, in bits.
    pub fn num_bits(&self) -> usize {
        match &self.inner {
            RoutedInner::Rows { index, .. } => index.num_bits(),
            RoutedInner::Sliced(sliced) => sliced.num_bits(),
        }
    }

    /// The SIMD backend this process's sliced scans dispatch to. Reported
    /// even when the table routed row-major, so the `dice_engine_scan_backend`
    /// gauge describes the hardware path consistently across model sizes.
    pub fn backend(&self) -> ScanBackend {
        match &self.inner {
            RoutedInner::Rows { backend, .. } => *backend,
            RoutedInner::Sliced(sliced) => sliced.backend(),
        }
    }

    /// Whether queries run through the bit-sliced planes (`false` means the
    /// table routed to the row-major index).
    pub fn is_bitsliced(&self) -> bool {
        matches!(self.inner, RoutedInner::Sliced(_))
    }

    /// Fills `out` with every group within Hamming distance `max_distance`
    /// of `state` (inclusive), sorted by ascending distance then group id.
    ///
    /// The profile's `blocks`/`early_stops` are zero on the row-major route.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn candidates_into(
        &self,
        state: &BitSet,
        max_distance: u32,
        out: &mut Vec<Candidate>,
    ) -> ScanProfile {
        match &self.inner {
            RoutedInner::Rows { index, .. } => index.candidates_into(state, max_distance, out),
            RoutedInner::Sliced(sliced) => sliced.candidates_into(state, max_distance, out),
        }
    }

    /// Fills `out` with the nearest group(s) to `state`: minimal distance,
    /// all ties, ascending by group id.
    ///
    /// # Panics
    ///
    /// Panics if the query width does not match the index.
    pub fn nearest_into(&self, state: &BitSet, out: &mut Vec<Candidate>) -> ScanProfile {
        match &self.inner {
            RoutedInner::Rows { index, .. } => index.nearest_into(state, out),
            RoutedInner::Sliced(sliced) => sliced.nearest_into(state, out),
        }
    }

    /// Batched [`RoutedScanIndex::candidates_into`] over a slice of queries:
    /// block-major plane sharing on the sliced route, a per-query loop on
    /// the row-major route (small tables have no plane passes to share).
    /// Returns the element-wise sum of per-query profiles.
    ///
    /// # Panics
    ///
    /// Panics if any query width does not match the index.
    pub fn candidates_batch_into(
        &self,
        queries: &[&BitSet],
        max_distance: u32,
        out: &mut Vec<Vec<Candidate>>,
    ) -> ScanProfile {
        match &self.inner {
            RoutedInner::Rows { index, .. } => {
                out.resize_with(queries.len(), Vec::new);
                out.truncate(queries.len());
                let mut profile = ScanProfile::default();
                for (query, slots) in queries.iter().zip(out.iter_mut()) {
                    profile.absorb(index.candidates_into(query, max_distance, slots));
                }
                profile
            }
            RoutedInner::Sliced(sliced) => sliced.candidates_batch_into(queries, max_distance, out),
        }
    }

    /// Batched [`RoutedScanIndex::nearest_into`] over a slice of queries.
    /// Returns the element-wise sum of per-query profiles.
    ///
    /// # Panics
    ///
    /// Panics if any query width does not match the index.
    pub fn nearest_batch_into(
        &self,
        queries: &[&BitSet],
        out: &mut Vec<Vec<Candidate>>,
    ) -> ScanProfile {
        match &self.inner {
            RoutedInner::Rows { index, .. } => {
                out.resize_with(queries.len(), Vec::new);
                out.truncate(queries.len());
                let mut profile = ScanProfile::default();
                for (query, slots) in queries.iter().zip(out.iter_mut()) {
                    profile.absorb(index.nearest_into(query, slots));
                }
                profile
            }
            RoutedInner::Sliced(sliced) => sliced.nearest_batch_into(queries, out),
        }
    }

    /// Allocating convenience wrapper over
    /// [`RoutedScanIndex::candidates_into`].
    pub fn candidates(&self, state: &BitSet, max_distance: u32) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.candidates_into(state, max_distance, &mut out);
        out
    }

    /// Allocating convenience wrapper over [`RoutedScanIndex::nearest_into`].
    pub fn nearest(&self, state: &BitSet) -> Vec<Candidate> {
        let mut out = Vec::new();
        let _ = self.nearest_into(state, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(groups: usize, num_bits: usize) -> GroupTable {
        let mut table = GroupTable::new(num_bits);
        for i in 0..groups {
            let bits = (0..num_bits).filter(|b| (i >> (b % 20)) & 1 == 1 || b % (i + 2) == 0);
            table.observe(&BitSet::from_indices(num_bits, bits));
        }
        table
    }

    #[test]
    fn small_tables_route_row_major_and_large_tables_bit_sliced() {
        let small = RoutedScanIndex::build(&table_of(SCAN_CROSSOVER_GROUPS / 4, 64));
        assert!(!small.is_bitsliced());
        let large = RoutedScanIndex::build(&table_of(SCAN_CROSSOVER_GROUPS + 8, 64));
        assert!(large.is_bitsliced());
        assert_eq!(large.len(), SCAN_CROSSOVER_GROUPS + 8);
    }

    #[test]
    fn both_routes_match_the_naive_scan() {
        for groups in [SCAN_CROSSOVER_GROUPS / 4, SCAN_CROSSOVER_GROUPS + 8] {
            let table = table_of(groups, 64);
            let routed = RoutedScanIndex::build(&table);
            let queries: Vec<BitSet> = (0..8)
                .map(|q| BitSet::from_indices(64, (0..64).filter(move |b| (b + q) % 5 == 0)))
                .collect();
            for query in &queries {
                assert_eq!(routed.candidates(query, 3), table.candidates(query, 3));
                assert_eq!(routed.nearest(query), table.nearest(query));
            }
            let refs: Vec<&BitSet> = queries.iter().collect();
            let mut batch = Vec::new();
            let _ = routed.candidates_batch_into(&refs, 3, &mut batch);
            for (query, got) in queries.iter().zip(&batch) {
                assert_eq!(got, &table.candidates(query, 3));
            }
            let _ = routed.nearest_batch_into(&refs, &mut batch);
            for (query, got) in queries.iter().zip(&batch) {
                assert_eq!(got, &table.nearest(query));
            }
        }
    }

    #[test]
    fn row_major_route_reports_the_process_backend() {
        let routed = RoutedScanIndex::build(&table_of(4, 16));
        assert_eq!(routed.backend(), ScanBackend::detect());
    }

    #[test]
    fn batch_reuses_slots_without_stale_entries() {
        let table = table_of(8, 32);
        let routed = RoutedScanIndex::build(&table);
        let q1 = BitSet::from_indices(32, [0, 5]);
        let q2 = BitSet::from_indices(32, [1]);
        let mut batch = Vec::new();
        let _ = routed.candidates_batch_into(&[&q1, &q2], 32, &mut batch);
        assert_eq!(batch.len(), 2);
        // A smaller follow-up batch must truncate the slot vector.
        let _ = routed.candidates_batch_into(&[&q2], 0, &mut batch);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0], table.candidates(&q2, 0));
    }
}
