//! Per-window decision tracing: the flight recorder behind every alarm.
//!
//! The engine's aggregate counters (dice-telemetry) say *how often* checks
//! fire; a [`DecisionTrace`] says *why this window*: the packed state set,
//! the main-group lookup outcome, the candidate groups scanned with their
//! Hamming distances, the transition row actually consulted with its
//! observed probability, the identification phase transition, and the final
//! verdict. Traces land in a bounded [`FlightRecorder`] ring (overwrite
//! oldest, drop counting), are snapshotted into every
//! [`FaultReport`](crate::FaultReport) as structured evidence, and can be
//! streamed to a [`TraceSink`] — typically a [`JsonlTraceWriter`] — as a
//! schema-versioned JSONL file that [`parse_trace_jsonl`] reads back
//! loss-free, so traces are diffable across runs.
//!
//! Tracing is **off by default**; the engine's disabled path is a single
//! `Option` check per window, and the enabled path reuses ring slots and
//! scratch buffers so steady-state monitoring still allocates nothing.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};

use dice_telemetry::{Counter, SlotRing, Telemetry};
use dice_types::{ActuatorId, GroupId, SensorId, Timestamp};

use crate::bitset::BitSet;
use crate::detect::TransitionCase;
use crate::layout::{BitLayout, BitRole, NUMERIC_SPAN_WIDTH};

/// Schema version of the JSONL trace format.
pub const TRACE_SCHEMA: u32 = 1;

/// The `kind` discriminator in a trace header line.
pub const TRACE_KIND: &str = "dice-trace";

/// Default flight-recorder capacity, in traces.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// Default number of candidate groups retained per trace.
pub const DEFAULT_TRACE_TOP_K: usize = 8;

/// Default number of recent traces copied into a fault report as evidence.
pub const DEFAULT_TRACE_SNAPSHOT_LAST: usize = 8;

/// Pipeline latency attribution for one alarm served by a fleet shard:
/// where the wall-clock went between the producer encoding the frame and
/// the shard delivering the verdict.
///
/// Stamped onto [`FaultReport`](crate::FaultReport)s by `dice-fleet`'s
/// shard engines (`lineage` is the monotone ingest id of the frame batch
/// whose sweep produced the verdict) and, like trace evidence, excluded
/// from report equality: a stamped and an unstamped run must produce
/// equal report streams on identical input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineageStamp {
    /// Monotone lineage id of the first frame in the contributing batch.
    pub lineage: u64,
    /// The shard that served this home.
    pub shard: u32,
    /// Frames in the contributing batch.
    pub frames: u32,
    /// Producer time blocked pushing the batch onto the shard queue.
    pub enqueue_wait_ns: u64,
    /// Time the batch sat in the shard queue before dequeue.
    pub queue_wait_ns: u64,
    /// Frame decode + window ingestion time for the batch (up to the
    /// sweep that produced this verdict).
    pub dequeue_ns: u64,
    /// Batched candidate-scan time of the delivering sweep.
    pub scan_ns: u64,
    /// Engine drive time of the delivering sweep (excluding delivery).
    pub verdict_ns: u64,
    /// Alarm delivery time of the delivering sweep.
    pub publish_ns: u64,
}

impl std::fmt::Display for LineageStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lineage {} shard {}: enqueue-wait {}us, queue-wait {}us, \
             dequeue {}us, scan {}us, verdict {}us, publish {}us",
            self.lineage,
            self.shard,
            self.enqueue_wait_ns / 1_000,
            self.queue_wait_ns / 1_000,
            self.dequeue_ns / 1_000,
            self.scan_ns / 1_000,
            self.verdict_ns / 1_000,
            self.publish_ns / 1_000,
        )
    }
}

/// Identification state-machine phase, as seen by a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TracePhase {
    /// Waiting for a first (or confirming) violation.
    #[default]
    Monitoring,
    /// Narrowing the probable-device set window by window.
    Identifying,
}

impl TracePhase {
    fn as_str(self) -> &'static str {
        match self {
            TracePhase::Monitoring => "monitoring",
            TracePhase::Identifying => "identifying",
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "monitoring" => Ok(TracePhase::Monitoring),
            "identifying" => Ok(TracePhase::Identifying),
            other => Err(format!("unknown trace phase {other:?}")),
        }
    }
}

/// Outcome of the per-window checks, as seen by a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceVerdict {
    /// State set matched a main group and all transitions were plausible.
    #[default]
    Normal,
    /// The correlation check found no exact group match.
    Correlation,
    /// The transition check found a zero-probability transition.
    Transition,
}

impl TraceVerdict {
    fn as_str(self) -> &'static str {
        match self {
            TraceVerdict::Normal => "normal",
            TraceVerdict::Correlation => "correlation",
            TraceVerdict::Transition => "transition",
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "normal" => Ok(TraceVerdict::Normal),
            "correlation" => Ok(TraceVerdict::Correlation),
            "transition" => Ok(TraceVerdict::Transition),
            other => Err(format!("unknown trace verdict {other:?}")),
        }
    }
}

/// One transition row consulted during the transition check: the triple,
/// the observed probability, the threshold it was compared against (the
/// paper's zero-probability rule renders as `threshold = 0`, meaning the
/// probability must exceed it), and the row support that gated the claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceTransition {
    /// Which transition triple was checked.
    pub case: TransitionCase,
    /// The probability the model assigns to this transition.
    pub observed: f64,
    /// The violation threshold: flagged when `observed <= threshold`.
    pub threshold: f64,
    /// Observations supporting the row the probability came from.
    pub support: u64,
    /// Minimum row support required before a zero probability is trusted.
    pub min_support: u64,
}

/// One window's complete decision record.
///
/// All collection fields are refilled with `clear()` + `extend` so a
/// recycled ring slot reuses its buffers: a warm [`FlightRecorder`] admits
/// traces without allocating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionTrace {
    /// Window index within this engine's stream (the ring sequence number).
    pub window: u64,
    /// Window start time.
    pub start: Timestamp,
    /// Window end time.
    pub end: Timestamp,
    /// Width of the state set in bits.
    pub bits: usize,
    /// Number of set bits in the state set.
    pub ones: u32,
    /// The packed state-set bits, as `u64` words (little-endian bit order,
    /// matching [`BitSet::as_words`]).
    pub state_words: Vec<u64>,
    /// The exactly-matching main group, when the correlation check hit.
    pub main_group: Option<GroupId>,
    /// Top-K candidate groups from the scan, as `(group, distance)`.
    pub candidates: Vec<(GroupId, u32)>,
    /// The nearest candidate group, as `(group, distance)`.
    pub nearest: Option<(GroupId, u32)>,
    /// Packed state-set bits of the nearest group (empty when `nearest`
    /// is `None`), for self-contained bit diffs.
    pub nearest_state: Vec<u64>,
    /// Transition rows consulted: the flagged zero-probability cases on a
    /// violation, or the observed G2G row on a normal window.
    pub transitions: Vec<TraceTransition>,
    /// Identification phase before this window was processed.
    pub phase_before: TracePhase,
    /// Identification phase after this window was processed.
    pub phase_after: TracePhase,
    /// The per-window check outcome.
    pub verdict: TraceVerdict,
    /// Whether a fault report was emitted at this window.
    pub reported: bool,
    /// Whether that report converged below `numThre` (false when not
    /// reported).
    pub conclusive: bool,
}

impl DecisionTrace {
    /// Resets every field while keeping collection buffers allocated, so a
    /// recycled ring slot can be refilled without heap traffic.
    pub fn reset(&mut self) {
        self.window = 0;
        self.start = Timestamp::ZERO;
        self.end = Timestamp::ZERO;
        self.bits = 0;
        self.ones = 0;
        self.state_words.clear();
        self.main_group = None;
        self.candidates.clear();
        self.nearest = None;
        self.nearest_state.clear();
        self.transitions.clear();
        self.phase_before = TracePhase::Monitoring;
        self.phase_after = TracePhase::Monitoring;
        self.verdict = TraceVerdict::Normal;
        self.reported = false;
        self.conclusive = false;
    }

    /// The state set reconstructed from the packed words, or `None` when
    /// the word count is inconsistent with `bits` (malformed input).
    pub fn state(&self) -> Option<BitSet> {
        rebuild_bitset(self.bits, &self.state_words)
    }

    /// The nearest group's state set, when recorded and well-formed.
    pub fn nearest_state(&self) -> Option<BitSet> {
        self.nearest?;
        rebuild_bitset(self.bits, &self.nearest_state)
    }
}

fn rebuild_bitset(bits: usize, words: &[u64]) -> Option<BitSet> {
    if words.len() != bits.div_ceil(64) {
        return None;
    }
    if !bits.is_multiple_of(64) {
        if let Some(&last) = words.last() {
            if last >> (bits % 64) != 0 {
                return None;
            }
        }
    }
    Some(BitSet::from_words(bits, words.to_vec()))
}

/// A bounded ring of recent [`DecisionTrace`]s with overwrite-oldest
/// semantics and drop counting, built on the shared
/// [`SlotRing`](dice_telemetry::SlotRing).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: SlotRing<DecisionTrace>,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` traces.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: SlotRing::new(capacity),
        }
    }

    /// Records a trace by filling a (possibly recycled) slot in place.
    /// `fill` receives the sequence number and the slot; it must call
    /// [`DecisionTrace::reset`] (or overwrite every field) because the slot
    /// may hold a stale trace. Returns the sequence number.
    pub fn record_with(&mut self, fill: impl FnOnce(u64, &mut DecisionTrace)) -> u64 {
        self.ring.push_with(fill)
    }

    /// The retained traces, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionTrace> + '_ {
        self.ring.iter()
    }

    /// The most recently recorded trace, if any.
    pub fn latest(&self) -> Option<&DecisionTrace> {
        self.ring.latest()
    }

    /// Clones the newest `n` traces, oldest first. Allocates; intended for
    /// the rare report path, not the per-window path.
    pub fn last_n(&self, n: usize) -> Vec<DecisionTrace> {
        let len = self.ring.len();
        self.ring
            .iter()
            .skip(len.saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no trace was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total traces ever recorded.
    pub fn total(&self) -> u64 {
        self.ring.total()
    }

    /// Traces evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

/// A consumer of finished traces, called once per traced window.
///
/// Implementations must not assume exclusive ownership of the trace — it is
/// a borrowed ring slot that will be recycled.
pub trait TraceSink: Send {
    /// Consumes one finished trace. `layout` is the engine's bit layout,
    /// for sinks that need span names (e.g. the JSONL header).
    fn record(&mut self, layout: &BitLayout, trace: &DecisionTrace);
}

/// A sink shared across engines (and gateway threads).
pub type SharedTraceSink = Arc<Mutex<dyn TraceSink>>;

/// Decision-tracing configuration, carried by
/// [`EngineOptions`](crate::EngineOptions).
///
/// Disabled by default; [`TraceOptions::global`] mirrors
/// [`Telemetry::global`] so a process-wide installation (e.g. `dice-repro
/// --trace`) reaches every engine constructed through default options.
#[derive(Clone)]
pub struct TraceOptions {
    /// Whether tracing is on. When false the engine pays one `Option`
    /// check per window and nothing else.
    pub enabled: bool,
    /// Flight-recorder capacity, in traces.
    pub capacity: usize,
    /// Candidate groups retained per trace.
    pub top_k: usize,
    /// Recent traces copied into each fault report as evidence.
    pub snapshot_last: usize,
    /// Optional streaming sink, called once per traced window.
    pub sink: Option<SharedTraceSink>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            enabled: false,
            capacity: DEFAULT_TRACE_CAPACITY,
            top_k: DEFAULT_TRACE_TOP_K,
            snapshot_last: DEFAULT_TRACE_SNAPSHOT_LAST,
            sink: None,
        }
    }
}

impl std::fmt::Debug for TraceOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceOptions")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .field("top_k", &self.top_k)
            .field("snapshot_last", &self.snapshot_last)
            .field("sink", &self.sink.as_ref().map(|_| "..."))
            .finish()
    }
}

impl TraceOptions {
    /// Enabled tracing with default sizing and no sink.
    pub fn recording() -> Self {
        TraceOptions {
            enabled: true,
            ..TraceOptions::default()
        }
    }

    /// Attaches a streaming sink (implies nothing about `enabled`).
    #[must_use]
    pub fn with_sink(mut self, sink: SharedTraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The process-global trace options. Defaults to disabled until
    /// [`TraceOptions::install_global`] runs.
    pub fn global() -> TraceOptions {
        GLOBAL_TRACE.get_or_init(TraceOptions::default).clone()
    }

    /// Installs `options` as the process-global trace options.
    ///
    /// Returns `false` (leaving the existing options in place) if a global
    /// was already installed or [`TraceOptions::global`] was already read.
    pub fn install_global(options: TraceOptions) -> bool {
        GLOBAL_TRACE.set(options).is_ok()
    }
}

static GLOBAL_TRACE: OnceLock<TraceOptions> = OnceLock::new();

/// A [`TraceSink`] that appends schema-versioned JSONL: one header line
/// (bit layout spans) followed by one line per trace.
///
/// Lines are written and flushed individually so a crash (or a process that
/// never runs destructors, like a global sink) loses at most the line in
/// flight. I/O errors latch [`JsonlTraceWriter::failed`] and silence the
/// writer instead of panicking inside the engine hot path.
pub struct JsonlTraceWriter<W: Write + Send> {
    out: W,
    header_written: bool,
    failed: bool,
    line: String,
    bytes: Option<Arc<Counter>>,
}

impl<W: Write + Send> JsonlTraceWriter<W> {
    /// Creates a writer appending to `out`.
    pub fn new(out: W) -> Self {
        JsonlTraceWriter {
            out,
            header_written: false,
            failed: false,
            line: String::new(),
            bytes: None,
        }
    }

    /// Like [`JsonlTraceWriter::new`], additionally counting written bytes
    /// into `telemetry`'s `dice_trace_snapshot_bytes_total`.
    pub fn with_telemetry(out: W, telemetry: &Telemetry) -> Self {
        let bytes = telemetry
            .recorder()
            .map(|r| r.metrics.trace.snapshot_bytes_total.clone());
        JsonlTraceWriter {
            bytes,
            ..JsonlTraceWriter::new(out)
        }
    }

    /// Whether a write failed; once set, the writer stays silent.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Wraps this writer into a [`SharedTraceSink`].
    pub fn into_shared(self) -> SharedTraceSink
    where
        W: 'static,
    {
        Arc::new(Mutex::new(self))
    }
}

impl<W: Write + Send> TraceSink for JsonlTraceWriter<W> {
    fn record(&mut self, layout: &BitLayout, trace: &DecisionTrace) {
        if self.failed {
            return;
        }
        self.line.clear();
        if !self.header_written {
            write_header_line(&mut self.line, &TraceHeader::from_layout(layout));
            self.header_written = true;
        }
        write_trace_line(&mut self.line, trace);
        let result = self
            .out
            .write_all(self.line.as_bytes())
            .and_then(|()| self.out.flush());
        match result {
            Ok(()) => {
                if let Some(counter) = &self.bytes {
                    counter.add(self.line.len() as u64);
                }
            }
            Err(_) => self.failed = true,
        }
    }
}

/// The layout description from a trace file's header line: enough to map
/// bit indices back to sensors without the trained model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Width of the state set in bits.
    pub num_bits: usize,
    /// Per-sensor spans as `(sensor, first_bit, width)`.
    pub spans: Vec<(SensorId, usize, usize)>,
}

impl TraceHeader {
    /// Captures the header from a live [`BitLayout`].
    pub fn from_layout(layout: &BitLayout) -> Self {
        TraceHeader {
            num_bits: layout.num_bits(),
            spans: layout
                .spans()
                .map(|(sensor, span)| (sensor, span.start, span.width))
                .collect(),
        }
    }

    /// Stable fingerprint of the layout this trace was recorded against,
    /// computed so that it equals [`BitLayout::fingerprint`] for the layout
    /// the header was captured from — the cross-artifact compatibility key
    /// `dice-lint` compares between a model and its trace evidence.
    pub fn layout_fingerprint(&self) -> u64 {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|&(sensor, ..)| sensor);
        let mut fp = crate::fingerprint::Fingerprint::new();
        fp.push_u64(self.num_bits as u64);
        fp.push_u64(spans.len() as u64);
        for &(_, start, width) in &spans {
            fp.push_u64(start as u64);
            fp.push_u64(width as u64);
        }
        fp.finish()
    }

    /// Maps a bit index to its owning sensor and the bit's role, mirroring
    /// [`BitLayout::sensor_of_bit`] / [`BitLayout::role_of_bit`].
    pub fn describe_bit(&self, bit: usize) -> Option<(SensorId, BitRole)> {
        for &(sensor, start, width) in &self.spans {
            if bit >= start && bit < start + width {
                let role = if width == 1 {
                    BitRole::Activation
                } else {
                    debug_assert_eq!(width, NUMERIC_SPAN_WIDTH);
                    match bit - start {
                        0 => BitRole::Skewness,
                        1 => BitRole::Trend,
                        _ => BitRole::Level,
                    }
                };
                return Some((sensor, role));
            }
        }
        None
    }
}

/// A parsed trace file: the header plus every trace line, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// The layout header.
    pub header: TraceHeader,
    /// The traces, in file order.
    pub traces: Vec<DecisionTrace>,
}

fn role_name(role: BitRole) -> &'static str {
    match role {
        BitRole::Activation => "activation",
        BitRole::Skewness => "skewness",
        BitRole::Trend => "trend",
        BitRole::Level => "level",
    }
}

/// Serializes the header as a single JSONL line (with trailing newline)
/// appended to `out`. Key order is fixed so serialization is byte-stable.
pub fn write_header_line(out: &mut String, header: &TraceHeader) {
    let _ = write!(
        out,
        "{{\"kind\":\"{TRACE_KIND}\",\"schema\":{TRACE_SCHEMA},\"num_bits\":{},\"spans\":[",
        header.num_bits
    );
    for (i, &(sensor, start, width)) in header.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{start},{width}]", sensor.index());
    }
    out.push_str("]}\n");
}

fn write_words(out: &mut String, words: &[u64]) {
    out.push('[');
    for (i, word) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{word:016x}\"");
    }
    out.push(']');
}

fn write_transition(out: &mut String, t: &TraceTransition) {
    let (case, from, to) = match t.case {
        TransitionCase::G2G { from, to } => ("g2g", from.index(), to.index()),
        TransitionCase::G2A { from, actuator } => ("g2a", from.index(), actuator.index()),
        TransitionCase::A2G { actuator, to } => ("a2g", actuator.index(), to.index()),
    };
    let _ = write!(
        out,
        "{{\"case\":\"{case}\",\"from\":{from},\"to\":{to},\"observed\":{},\"threshold\":{},\
         \"support\":{},\"min_support\":{}}}",
        t.observed, t.threshold, t.support, t.min_support
    );
}

/// Serializes one trace as a single JSONL line (with trailing newline)
/// appended to `out`. Key order is fixed so serialization is byte-stable.
pub fn write_trace_line(out: &mut String, t: &DecisionTrace) {
    let _ = write!(
        out,
        "{{\"window\":{},\"start\":{},\"end\":{},\"bits\":{},\"ones\":{},\"state\":",
        t.window,
        t.start.as_secs(),
        t.end.as_secs(),
        t.bits,
        t.ones
    );
    write_words(out, &t.state_words);
    match t.main_group {
        Some(g) => {
            let _ = write!(out, ",\"main_group\":{}", g.index());
        }
        None => out.push_str(",\"main_group\":null"),
    }
    out.push_str(",\"candidates\":[");
    for (i, &(group, distance)) in t.candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{distance}]", group.index());
    }
    out.push(']');
    match t.nearest {
        Some((group, distance)) => {
            let _ = write!(out, ",\"nearest\":[{},{distance}]", group.index());
        }
        None => out.push_str(",\"nearest\":null"),
    }
    out.push_str(",\"nearest_state\":");
    write_words(out, &t.nearest_state);
    out.push_str(",\"transitions\":[");
    for (i, transition) in t.transitions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_transition(out, transition);
    }
    let _ = write!(
        out,
        "],\"phase_before\":\"{}\",\"phase_after\":\"{}\",\"verdict\":\"{}\",\
         \"reported\":{},\"conclusive\":{}}}",
        t.phase_before.as_str(),
        t.phase_after.as_str(),
        t.verdict.as_str(),
        t.reported,
        t.conclusive
    );
    out.push('\n');
}

/// Serializes a whole [`TraceLog`] as JSONL (header first). The output of
/// `write_trace_jsonl(&parse_trace_jsonl(text)?)` is byte-identical to a
/// `text` that this module produced.
pub fn write_trace_jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    write_header_line(&mut out, &log.header);
    for trace in &log.traces {
        write_trace_line(&mut out, trace);
    }
    out
}

use dice_telemetry::Value;

fn field<'v>(obj: &'v Value, key: &str) -> Result<&'v Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn num_field(obj: &Value, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_num()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn u64_field(obj: &Value, key: &str) -> Result<u64, String> {
    let n = num_field(obj, key)?;
    if n < 0.0 {
        return Err(format!("field {key:?} is negative"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(n as u64)
}

fn usize_field(obj: &Value, key: &str) -> Result<usize, String> {
    #[allow(clippy::cast_possible_truncation)]
    Ok(u64_field(obj, key)? as usize)
}

fn str_field<'v>(obj: &'v Value, key: &str) -> Result<&'v str, String> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn bool_field(obj: &Value, key: &str) -> Result<bool, String> {
    match field(obj, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("field {key:?} is not a boolean")),
    }
}

fn words_field(obj: &Value, key: &str) -> Result<Vec<u64>, String> {
    let items = field(obj, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))?;
    items
        .iter()
        .map(|item| {
            let hex = item
                .as_str()
                .ok_or_else(|| format!("field {key:?} holds a non-string word"))?;
            u64::from_str_radix(hex, 16).map_err(|e| format!("bad state word {hex:?}: {e}"))
        })
        .collect()
}

fn group_id_from(n: f64) -> GroupId {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    GroupId::new(n as u32)
}

fn pair_field(value: &Value, what: &str) -> Result<(GroupId, u32), String> {
    let pair = value
        .as_arr()
        .ok_or_else(|| format!("{what} is not a [group, distance] pair"))?;
    if pair.len() != 2 {
        return Err(format!("{what} is not a 2-element pair"));
    }
    let group = pair[0]
        .as_num()
        .ok_or_else(|| format!("{what} group is not a number"))?;
    let distance = pair[1]
        .as_num()
        .ok_or_else(|| format!("{what} distance is not a number"))?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok((group_id_from(group), distance as u32))
}

fn parse_transition(value: &Value) -> Result<TraceTransition, String> {
    let kind = str_field(value, "case")?;
    let from = u64_field(value, "from")?;
    let to = u64_field(value, "to")?;
    #[allow(clippy::cast_possible_truncation)]
    let (from32, to32) = (from as u32, to as u32);
    let case = match kind {
        "g2g" => TransitionCase::G2G {
            from: GroupId::new(from32),
            to: GroupId::new(to32),
        },
        "g2a" => TransitionCase::G2A {
            from: GroupId::new(from32),
            actuator: ActuatorId::new(to32),
        },
        "a2g" => TransitionCase::A2G {
            actuator: ActuatorId::new(from32),
            to: GroupId::new(to32),
        },
        other => return Err(format!("unknown transition case {other:?}")),
    };
    Ok(TraceTransition {
        case,
        observed: num_field(value, "observed")?,
        threshold: num_field(value, "threshold")?,
        support: u64_field(value, "support")?,
        min_support: u64_field(value, "min_support")?,
    })
}

fn parse_trace_value(value: &Value) -> Result<DecisionTrace, String> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let (start, end, ones) = (
        Timestamp::from_secs(num_field(value, "start")? as i64),
        Timestamp::from_secs(num_field(value, "end")? as i64),
        num_field(value, "ones")? as u32,
    );
    let main_group = match field(value, "main_group")? {
        Value::Null => None,
        other => Some(group_id_from(other.as_num().ok_or_else(|| {
            "field \"main_group\" is not a number or null".to_string()
        })?)),
    };
    let candidates = field(value, "candidates")?
        .as_arr()
        .ok_or_else(|| "field \"candidates\" is not an array".to_string())?
        .iter()
        .map(|item| pair_field(item, "candidate"))
        .collect::<Result<Vec<_>, _>>()?;
    let nearest = match field(value, "nearest")? {
        Value::Null => None,
        other => Some(pair_field(other, "nearest")?),
    };
    let transitions = field(value, "transitions")?
        .as_arr()
        .ok_or_else(|| "field \"transitions\" is not an array".to_string())?
        .iter()
        .map(parse_transition)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DecisionTrace {
        window: u64_field(value, "window")?,
        start,
        end,
        bits: usize_field(value, "bits")?,
        ones,
        state_words: words_field(value, "state")?,
        main_group,
        candidates,
        nearest,
        nearest_state: words_field(value, "nearest_state")?,
        transitions,
        phase_before: TracePhase::parse(str_field(value, "phase_before")?)?,
        phase_after: TracePhase::parse(str_field(value, "phase_after")?)?,
        verdict: TraceVerdict::parse(str_field(value, "verdict")?)?,
        reported: bool_field(value, "reported")?,
        conclusive: bool_field(value, "conclusive")?,
    })
}

/// Parses a JSONL trace file produced by [`JsonlTraceWriter`] (or
/// [`write_trace_jsonl`]). Blank lines are skipped; the first non-blank
/// line must be a `dice-trace` schema-1 header.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_trace_jsonl(input: &str) -> Result<TraceLog, String> {
    let mut header: Option<TraceHeader> = None;
    let mut traces = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value =
            dice_telemetry::json_parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if header.is_none() {
            let kind =
                str_field(&value, "kind").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if kind != TRACE_KIND {
                return Err(format!(
                    "line {}: kind {kind:?} is not \"{TRACE_KIND}\"",
                    lineno + 1
                ));
            }
            let schema =
                u64_field(&value, "schema").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if schema != u64::from(TRACE_SCHEMA) {
                return Err(format!(
                    "line {}: unsupported trace schema {schema}",
                    lineno + 1
                ));
            }
            let num_bits =
                usize_field(&value, "num_bits").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let mut spans = Vec::new();
            for item in field(&value, "spans")
                .map_err(|e| format!("line {}: {e}", lineno + 1))?
                .as_arr()
                .ok_or_else(|| format!("line {}: field \"spans\" is not an array", lineno + 1))?
            {
                let triple = item
                    .as_arr()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| format!("line {}: span is not a 3-element array", lineno + 1))?;
                let nums: Vec<f64> = triple.iter().filter_map(Value::as_num).collect();
                if nums.len() != 3 {
                    return Err(format!("line {}: span holds non-numbers", lineno + 1));
                }
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                spans.push((
                    SensorId::new(nums[0] as u32),
                    nums[1] as usize,
                    nums[2] as usize,
                ));
            }
            header = Some(TraceHeader { num_bits, spans });
        } else {
            traces
                .push(parse_trace_value(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
    }
    let header = header.ok_or_else(|| "empty trace file: no header line".to_string())?;
    Ok(TraceLog { header, traces })
}

fn transition_arrow(case: TransitionCase) -> String {
    match case {
        TransitionCase::G2G { from, to } => format!("P({to} | {from}) [g2g]"),
        TransitionCase::G2A { from, actuator } => format!("P({actuator} | {from}) [g2a]"),
        TransitionCase::A2G { actuator, to } => format!("P({to} | {actuator}) [a2g]"),
    }
}

fn select_trace(log: &TraceLog, window: Option<u64>) -> Result<&DecisionTrace, String> {
    if log.traces.is_empty() {
        return Err("trace file holds no traces".to_string());
    }
    if let Some(w) = window {
        return log
            .traces
            .iter()
            .find(|t| t.window == w)
            .ok_or_else(|| format!("no trace for window {w}"));
    }
    Ok(log
        .traces
        .iter()
        .find(|t| t.reported)
        .or_else(|| {
            log.traces
                .iter()
                .find(|t| t.verdict != TraceVerdict::Normal)
        })
        .unwrap_or(&log.traces[0]))
}

/// Renders a human-readable why-was-this-flagged narrative for one trace.
///
/// Picks the trace for `window` when given, otherwise the first reported
/// trace, otherwise the first violation, otherwise the first trace. The
/// narrative names deviating state-set bits per sensor (via the header's
/// span map), lists scanned candidates, and spells out the transition rows
/// with observed probability vs threshold.
///
/// # Errors
///
/// Returns an error when the log holds no traces or `window` is absent.
pub fn render_explain(log: &TraceLog, window: Option<u64>) -> Result<String, String> {
    let t = select_trace(log, window)?;
    let mut out = String::new();
    let _ = writeln!(out, "window {} ({} - {})", t.window, t.start, t.end);
    let verdict = match t.verdict {
        TraceVerdict::Normal => "normal: no violation".to_string(),
        TraceVerdict::Correlation => "correlation violation".to_string(),
        TraceVerdict::Transition => "transition violation".to_string(),
    };
    let status = if t.reported && t.conclusive {
        " (fault reported, conclusive)"
    } else if t.reported {
        " (fault reported, inconclusive)"
    } else {
        ""
    };
    let _ = writeln!(out, "verdict: {verdict}{status}");
    let _ = writeln!(out, "state set: {} of {} bits set", t.ones, t.bits);
    match t.main_group {
        Some(g) => {
            let _ = writeln!(out, "main group: {g} (exact state-set match)");
        }
        None => {
            let _ = writeln!(
                out,
                "main group: none - no group matches this state set exactly"
            );
        }
    }
    if let Some((group, distance)) = t.nearest {
        let _ = writeln!(out, "nearest group: {group} at Hamming distance {distance}");
        if !t.candidates.is_empty() {
            let _ = write!(out, "candidates scanned:");
            for (i, &(g, d)) in t.candidates.iter().enumerate() {
                let _ = write!(out, "{} {g} d={d}", if i > 0 { "," } else { "" });
            }
            out.push('\n');
        }
    }
    let mut implicated: Vec<String> = Vec::new();
    if let (Some((group, _)), Some(nearest_state), Some(state)) =
        (t.nearest, t.nearest_state(), t.state())
    {
        let _ = writeln!(out, "deviating bits vs {group}:");
        for bit in state.diff_indices(&nearest_state) {
            let observed = u8::from(state.get(bit));
            let expects = u8::from(nearest_state.get(bit));
            match log.header.describe_bit(bit) {
                Some((sensor, role)) => {
                    let _ = writeln!(
                        out,
                        "  bit {bit}: {sensor} ({}) observed {observed}, {group} expects {expects}",
                        role_name(role)
                    );
                    let name = sensor.to_string();
                    if !implicated.contains(&name) {
                        implicated.push(name);
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  bit {bit}: (unmapped) observed {observed}, {group} expects {expects}"
                    );
                }
            }
        }
    }
    if !t.transitions.is_empty() {
        let _ = writeln!(out, "transition context:");
        for row in &t.transitions {
            let flagged = row.observed <= row.threshold;
            let _ = writeln!(
                out,
                "  {} = {} (threshold > {}, row support {} >= min {}){}",
                transition_arrow(row.case),
                row.observed,
                row.threshold,
                row.support,
                row.min_support,
                if flagged { " <- flagged" } else { "" }
            );
            let actuator = match row.case {
                TransitionCase::G2A { actuator, .. } | TransitionCase::A2G { actuator, .. } => {
                    Some(actuator)
                }
                TransitionCase::G2G { .. } => None,
            };
            if flagged {
                if let Some(actuator) = actuator {
                    let name = actuator.to_string();
                    if !implicated.contains(&name) {
                        implicated.push(name);
                    }
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "phase: {} -> {}",
        t.phase_before.as_str(),
        t.phase_after.as_str()
    );
    if !implicated.is_empty() {
        let _ = writeln!(out, "implicated devices: {}", implicated.join(", "));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TraceHeader {
        TraceHeader {
            num_bits: 6,
            // S0 and S1 are binary; S2 is numeric (3 bits); bit 5 is S3.
            spans: vec![
                (SensorId::new(0), 0, 1),
                (SensorId::new(1), 1, 1),
                (SensorId::new(2), 2, 3),
                (SensorId::new(3), 5, 1),
            ],
        }
    }

    fn sample_trace() -> DecisionTrace {
        DecisionTrace {
            window: 133,
            start: Timestamp::from_mins(133),
            end: Timestamp::from_mins(134),
            bits: 6,
            ones: 2,
            state_words: vec![0b100001],
            main_group: None,
            candidates: vec![(GroupId::new(4), 1), (GroupId::new(2), 3)],
            nearest: Some((GroupId::new(4), 1)),
            nearest_state: vec![0b000001],
            transitions: vec![TraceTransition {
                case: TransitionCase::G2G {
                    from: GroupId::new(1),
                    to: GroupId::new(4),
                },
                observed: 0.25,
                threshold: 0.0,
                support: 16,
                min_support: 5,
            }],
            phase_before: TracePhase::Monitoring,
            phase_after: TracePhase::Identifying,
            verdict: TraceVerdict::Correlation,
            reported: true,
            conclusive: true,
        }
    }

    #[test]
    fn flight_recorder_wraps_and_snapshots_last_n() {
        let mut recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record_with(|seq, slot| {
                slot.reset();
                slot.window = seq;
                slot.ones = u32::try_from(i).unwrap();
            });
        }
        assert_eq!(recorder.total(), 5);
        assert_eq!(recorder.dropped(), 2);
        assert_eq!(recorder.latest().unwrap().window, 4);
        let last = recorder.last_n(2);
        assert_eq!(
            last.iter().map(|t| t.window).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Asking for more than retained returns everything retained.
        assert_eq!(recorder.last_n(10).len(), 3);
    }

    #[test]
    fn jsonl_round_trip_is_byte_stable() {
        let log = TraceLog {
            header: sample_header(),
            traces: vec![
                sample_trace(),
                DecisionTrace {
                    window: 134,
                    bits: 6,
                    state_words: vec![0b000001],
                    main_group: Some(GroupId::new(0)),
                    ..DecisionTrace::default()
                },
            ],
        };
        let text = write_trace_jsonl(&log);
        let parsed = parse_trace_jsonl(&text).expect("round trip parses");
        assert_eq!(parsed, log);
        assert_eq!(write_trace_jsonl(&parsed), text);
    }

    #[test]
    fn writer_emits_header_once_and_counts_bytes() {
        let layout = BitLayout::from_widths(&[1, 1, 3, 1]);
        let telemetry = Telemetry::recording();
        let mut buffer = Vec::new();
        {
            let mut writer = JsonlTraceWriter::with_telemetry(&mut buffer, &telemetry);
            writer.record(&layout, &sample_trace());
            writer.record(&layout, &sample_trace());
            assert!(!writer.failed());
        }
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 3, "one header + two traces");
        let log = parse_trace_jsonl(&text).unwrap();
        assert_eq!(log.header, sample_header());
        assert_eq!(log.traces.len(), 2);
        let snapshot = telemetry.snapshot().unwrap();
        assert_eq!(
            snapshot.counter("dice_trace_snapshot_bytes_total"),
            Some(text.len() as u64)
        );
    }

    #[test]
    fn explain_names_the_deviating_sensor() {
        let log = TraceLog {
            header: sample_header(),
            traces: vec![sample_trace()],
        };
        let rendered = render_explain(&log, None).unwrap();
        assert!(rendered.contains("window 133"), "{rendered}");
        assert!(rendered.contains("correlation violation"), "{rendered}");
        assert!(
            rendered.contains("nearest group: G4 at Hamming distance 1"),
            "{rendered}"
        );
        // Bit 5 deviates; the header maps it to sensor S3.
        assert!(rendered.contains("S3 (activation)"), "{rendered}");
        assert!(rendered.contains("implicated devices: S3"), "{rendered}");
        assert!(rendered.contains("P(G4 | G1) [g2g] = 0.25"), "{rendered}");
        assert!(
            rendered.contains("phase: monitoring -> identifying"),
            "{rendered}"
        );
    }

    #[test]
    fn explain_selects_reported_then_violation_then_first() {
        let normal = DecisionTrace {
            window: 1,
            bits: 6,
            ..DecisionTrace::default()
        };
        let mut violation = sample_trace();
        violation.window = 2;
        violation.reported = false;
        let mut reported = sample_trace();
        reported.window = 3;
        let log = TraceLog {
            header: sample_header(),
            traces: vec![normal.clone(), violation.clone(), reported],
        };
        assert!(render_explain(&log, None).unwrap().contains("window 3"));
        let log2 = TraceLog {
            header: sample_header(),
            traces: vec![normal.clone(), violation],
        };
        assert!(render_explain(&log2, None).unwrap().contains("window 2"));
        let log3 = TraceLog {
            header: sample_header(),
            traces: vec![normal],
        };
        assert!(render_explain(&log3, None).unwrap().contains("window 1"));
        assert!(render_explain(&log3, Some(9)).is_err());
        assert!(render_explain(&log3, Some(1)).is_ok());
    }

    #[test]
    fn trace_options_default_disabled_and_global_mirrors() {
        let options = TraceOptions::default();
        assert!(!options.enabled);
        assert!(options.sink.is_none());
        assert_eq!(options.capacity, DEFAULT_TRACE_CAPACITY);
        // Never install in tests: first read pins the default.
        assert!(!TraceOptions::global().enabled);
        assert!(!TraceOptions::install_global(TraceOptions::recording()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_trace_jsonl("").is_err());
        assert!(parse_trace_jsonl("{\"kind\":\"other\",\"schema\":1}").is_err());
        assert!(parse_trace_jsonl(
            "{\"kind\":\"dice-trace\",\"schema\":99,\"num_bits\":4,\"spans\":[]}"
        )
        .is_err());
        let header = "{\"kind\":\"dice-trace\",\"schema\":1,\"num_bits\":4,\"spans\":[[0,0,1]]}";
        assert!(parse_trace_jsonl(&format!("{header}\n{{\"window\":1}}")).is_err());
        assert!(parse_trace_jsonl(&format!("{header}\nnot json")).is_err());
        assert!(parse_trace_jsonl(header).unwrap().traces.is_empty());
    }
}
