//! Structural invariant checks over a trained [`DiceModel`].
//!
//! These are the load-bearing checks: [`crate::read_model`] runs them after
//! decoding and rejects any model with an [`Severity::Error`] finding, so a
//! gateway never boots on a model whose probabilities or indices are
//! inconsistent. The `dice-verify` crate re-exports them and adds advisory
//! graph analyses on top.
//!
//! Every check is pure and never panics: a corrupt model produces
//! diagnostics, not aborts.
//
// lint-src: allow-file(hash-container) — maps here are check-local
// accumulators; callers sort the diagnostic report, so hash order never
// reaches output.

use std::collections::HashMap;

use crate::config::DiceConfig;
use crate::diag::{Diagnostic, DiagnosticCode, Severity};
use crate::model::DiceModel;
use crate::transition::TransitionCounts;

pub use crate::diag::has_errors;

/// Tolerance for the row-stochasticity check: per-row probabilities must sum
/// to one within this epsilon.
pub const ROW_SUM_EPSILON: f64 = 1e-9;

/// Runs every structural check over `model`.
///
/// The returned findings are ordered by check family (transitions, groups,
/// thresholds, cross-section), not by severity; sort by
/// [`Diagnostic::severity`] if presentation order matters.
pub fn check_model(model: &DiceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_transitions(model, &mut out);
    check_groups(model, &mut out);
    check_thresholds(model, &mut out);
    check_counts(model, &mut out);
    out
}

/// Checks a configuration in isolation (family `DV14x`).
///
/// [`DiceConfig`]s built through the builder always pass the `Error`-level
/// checks (the builder asserts them); the checks still run so configurations
/// decoded from untrusted bytes get the same vocabulary.
pub fn check_config(config: &DiceConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if config.window().as_secs() <= 0 {
        out.push(Diagnostic::new(
            DiagnosticCode::NonPositiveWindow,
            format!(
                "window duration is {}s; the state-set window must be positive",
                config.window().as_secs()
            ),
        ));
    }
    for (name, value) in [
        ("max_faults", config.max_faults()),
        ("num_thre", config.num_thre()),
        (
            "max_identification_windows",
            config.max_identification_windows(),
        ),
        ("confirmation_violations", config.confirmation_violations()),
    ] {
        if value == 0 {
            out.push(Diagnostic::new(
                DiagnosticCode::ZeroCountParameter,
                format!("{name} is zero; it must be at least 1"),
            ));
        }
    }
    if config.confirmation_horizon_windows() < config.confirmation_violations() {
        out.push(Diagnostic::new(
            DiagnosticCode::ConfirmationHorizonTooShort,
            format!(
                "confirmation horizon of {} windows cannot accumulate the {} \
                 required violations; transition faults will never be reported",
                config.confirmation_horizon_windows(),
                config.confirmation_violations()
            ),
        ));
    }
    if config.candidate_distance_override() == Some(0) {
        out.push(Diagnostic::new(
            DiagnosticCode::ZeroCandidateDistance,
            "candidate distance is overridden to 0; identification degenerates \
             to exact group lookup and cannot explain any faulty bit",
        ));
    }
    if config.min_row_support() == 0 {
        out.push(Diagnostic::new(
            DiagnosticCode::ZeroRowSupport,
            "min_row_support is 0; a row observed once already licenses \
             zero-probability transition violations",
        ));
    }
    out
}

/// One matrix's identity, for diagnostic messages and id-range selection.
#[derive(Clone, Copy)]
struct MatrixSpec {
    name: &'static str,
    dangling_code: DiagnosticCode,
    /// Exclusive upper bounds for `from` / `to` ids; `None` leaves the side
    /// unchecked (ids are arbitrary `u32`s there).
    from_bound: Option<usize>,
    to_bound: Option<usize>,
    from_kind: &'static str,
    to_kind: &'static str,
}

fn check_transitions(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let num_groups = model.groups().len();
    let num_actuators = model.num_actuators();
    let specs = [
        MatrixSpec {
            name: "G2G",
            dangling_code: DiagnosticCode::DanglingGroupInG2g,
            from_bound: Some(num_groups),
            to_bound: Some(num_groups),
            from_kind: "group",
            to_kind: "group",
        },
        MatrixSpec {
            name: "G2A",
            dangling_code: DiagnosticCode::DanglingIdInG2a,
            from_bound: Some(num_groups),
            to_bound: Some(num_actuators),
            from_kind: "group",
            to_kind: "actuator",
        },
        MatrixSpec {
            name: "A2G",
            dangling_code: DiagnosticCode::DanglingIdInA2g,
            from_bound: Some(num_actuators),
            to_bound: Some(num_groups),
            from_kind: "actuator",
            to_kind: "group",
        },
    ];
    for (spec, counts) in specs.iter().zip([
        model.transitions().g2g(),
        model.transitions().g2a(),
        model.transitions().a2g(),
    ]) {
        check_matrix(spec, counts, out);
    }
}

fn check_matrix(spec: &MatrixSpec, counts: &TransitionCounts, out: &mut Vec<Diagnostic>) {
    let mut entry_sums: HashMap<u32, u64> = HashMap::new();
    for (from, to, count) in counts.entries() {
        if count == 0 {
            out.push(Diagnostic::new(
                DiagnosticCode::RowNotStochastic,
                format!(
                    "{} entry {from} -> {to} has an explicit zero count; \
                     zero-probability transitions must be absent, not stored",
                    spec.name
                ),
            ));
        }
        *entry_sums.entry(from).or_insert(0) += count;
        if let Some(bound) = spec.from_bound {
            if (from as usize) >= bound {
                out.push(Diagnostic::new(
                    spec.dangling_code,
                    format!(
                        "{} transition {from} -> {to} starts at {} {from}, but \
                         only {bound} {}s exist",
                        spec.name, spec.from_kind, spec.from_kind
                    ),
                ));
            }
        }
        if let Some(bound) = spec.to_bound {
            if (to as usize) >= bound {
                out.push(Diagnostic::new(
                    spec.dangling_code,
                    format!(
                        "{} transition {from} -> {to} targets {} {to}, but \
                         only {bound} {}s exist",
                        spec.name, spec.to_kind, spec.to_kind
                    ),
                ));
            }
        }
    }
    // Row-stochasticity (the probabilities of each observed row must sum to
    // one): with counts stored sparsely this is exactly "stored row total ==
    // sum of the row's entries", checked both as integers and as the derived
    // probability sum so the epsilon contract is explicit.
    for (from, total) in counts.row_totals() {
        let entry_sum = entry_sums.remove(&from).unwrap_or(0);
        if total == 0 || entry_sum != total {
            out.push(Diagnostic::new(
                DiagnosticCode::RowNotStochastic,
                format!(
                    "{} row {from}: stored total {total} but entries sum to \
                     {entry_sum}; row probabilities sum to {:.6} instead of 1",
                    spec.name,
                    if total == 0 {
                        f64::NAN
                    } else {
                        entry_sum as f64 / total as f64
                    }
                ),
            ));
            continue;
        }
        let prob_sum = entry_sum as f64 / total as f64;
        if (prob_sum - 1.0).abs() > ROW_SUM_EPSILON {
            out.push(Diagnostic::new(
                DiagnosticCode::RowNotStochastic,
                format!(
                    "{} row {from}: probabilities sum to {prob_sum} \
                     (epsilon {ROW_SUM_EPSILON})",
                    spec.name
                ),
            ));
        }
    }
    // Rows that have entries but no stored total.
    for (from, entry_sum) in entry_sums {
        out.push(Diagnostic::new(
            DiagnosticCode::RowNotStochastic,
            format!(
                "{} row {from}: entries sum to {entry_sum} but the row has no \
                 stored total; its probabilities are undefined",
                spec.name
            ),
        ));
    }
}

fn check_groups(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let groups = model.groups();
    let layout_bits = model.layout().num_bits();
    if groups.num_bits() != layout_bits {
        out.push(Diagnostic::new(
            DiagnosticCode::GroupWidthMismatch,
            format!(
                "group table is declared for {} bits but the bit layout has \
                 {layout_bits}",
                groups.num_bits()
            ),
        ));
    }
    let mut seen: HashMap<&crate::bitset::BitSet, u32> = HashMap::new();
    for (id, state, count) in groups.entries() {
        if state.len() != groups.num_bits() {
            out.push(Diagnostic::new(
                DiagnosticCode::GroupWidthMismatch,
                format!(
                    "group {} holds a {}-bit state set in a {}-bit table",
                    id.index(),
                    state.len(),
                    groups.num_bits()
                ),
            ));
        }
        if count == 0 {
            out.push(Diagnostic::new(
                DiagnosticCode::ZeroGroupCount,
                format!(
                    "group {} was never observed; a group exists only because \
                     some training window produced its state set",
                    id.index()
                ),
            ));
        }
        if let Some(first) = seen.insert(state, id.index() as u32) {
            out.push(Diagnostic::new(
                DiagnosticCode::DuplicateGroupState,
                format!(
                    "groups {first} and {} share the same state set; group ids \
                     would be ambiguous for that context",
                    id.index()
                ),
            ));
        }
    }
    if groups.is_empty() {
        out.push(Diagnostic::new(
            DiagnosticCode::EmptyModel,
            "the model has no groups; every live window will raise a \
             correlation violation",
        ));
    }
}

fn check_thresholds(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let layout = model.layout();
    let thresholds = model.binarizer().thresholds();
    if thresholds.len() != layout.num_sensors() {
        out.push(Diagnostic::new(
            DiagnosticCode::ThresholdTableLengthMismatch,
            format!(
                "threshold table covers {} sensors but the layout has {}",
                thresholds.len(),
                layout.num_sensors()
            ),
        ));
        return; // per-sensor pairing below would misattribute findings
    }
    for (sensor, span) in layout.spans() {
        let value = thresholds.values()[sensor.index()];
        match (span.width, value) {
            (_, Some(v)) if !v.is_finite() => {
                out.push(Diagnostic::new(
                    DiagnosticCode::NonFiniteThreshold,
                    format!(
                        "sensor {}: valueThre is {v}; the Eq. 3.4 level bit \
                         comparison is undefined",
                        sensor.index()
                    ),
                ));
            }
            (1, Some(v)) => {
                out.push(Diagnostic::new(
                    DiagnosticCode::ThresholdOnBinarySensor,
                    format!(
                        "sensor {}: binary sensor carries a trained threshold \
                         ({v}); it has no level bit to apply it to",
                        sensor.index()
                    ),
                ));
            }
            (w, None) if w > 1 => {
                out.push(Diagnostic::new(
                    DiagnosticCode::UntrainedNumericThreshold,
                    format!(
                        "sensor {}: numeric sensor has no trained valueThre \
                         (no training samples); its level bit is always 0",
                        sensor.index()
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn check_counts(model: &DiceModel, out: &mut Vec<Diagnostic>) {
    let observed = model.groups().total_observations();
    if observed != model.training_windows() {
        out.push(Diagnostic::new(
            DiagnosticCode::TrainingWindowMismatch,
            format!(
                "group observation counts sum to {observed} but the model \
                 records {} training windows; every window maps to exactly \
                 one group",
                model.training_windows()
            ),
        ));
    }
}

/// Checks that a [`GroupTable::merge`](crate::GroupTable::merge) result
/// conserved its inputs (family `DV17x`): every observation of every part is
/// accounted for exactly once (`DV170`), and no state set appears under two
/// ids after the merge (`DV171`).
///
/// The parallel trainer runs this over every chunk merge in debug builds;
/// `dice-verify` re-exports it for offline auditing of merged models.
pub fn check_group_merge(
    merged: &crate::groups::GroupTable,
    parts: &[&crate::groups::GroupTable],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut seen: HashMap<&crate::bitset::BitSet, usize> = HashMap::new();
    for (id, state, _) in merged.entries() {
        if let Some(&other) = seen.get(state) {
            out.push(Diagnostic::new(
                DiagnosticCode::MergeDuplicateGroupState,
                format!(
                    "groups {other} and {} hold the same state set after the \
                     merge; merged ids must stay unique per state",
                    id.index()
                ),
            ));
        } else {
            seen.insert(state, id.index());
        }
    }

    let mut expected: HashMap<&crate::bitset::BitSet, u64> = HashMap::new();
    for part in parts {
        for (_, state, count) in part.entries() {
            *expected.entry(state).or_insert(0) += count;
        }
    }
    for (state, want) in &expected {
        let got = merged.lookup(state).map_or(0, |id| merged.count(id));
        if got != *want {
            out.push(Diagnostic::new(
                DiagnosticCode::MergeGroupCountNotPreserved,
                format!(
                    "a state set observed {want} times across the parts is \
                     counted {got} times after the merge"
                ),
            ));
        }
    }
    let parts_total: u64 = parts.iter().map(|p| p.total_observations()).sum();
    if merged.total_observations() != parts_total {
        out.push(Diagnostic::new(
            DiagnosticCode::MergeGroupCountNotPreserved,
            format!(
                "parts hold {parts_total} observations but the merged table \
                 holds {}",
                merged.total_observations()
            ),
        ));
    }
    out
}

/// Checks that a [`TransitionCounts::merge`] result conserved its inputs
/// (`DV172`): every row total of the merged matrix is the sum of the parts'
/// row totals. Applies to same-id-space merges (the id-mapped chunk merge is
/// covered by the model-level `DV100`/`DV150` checks after assembly).
pub fn check_transition_merge(
    merged: &TransitionCounts,
    parts: &[&TransitionCounts],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut expected: HashMap<u32, u64> = HashMap::new();
    for part in parts {
        for (from, total) in part.row_totals() {
            *expected.entry(from).or_insert(0) += total;
        }
    }
    for (from, total) in merged.row_totals() {
        if expected.get(&from).copied().unwrap_or(0) != total {
            out.push(Diagnostic::new(
                DiagnosticCode::MergeRowTotalMismatch,
                format!(
                    "row {from} totals {total} after the merge but the parts \
                     sum to {}",
                    expected.get(&from).copied().unwrap_or(0)
                ),
            ));
        }
    }
    for (from, want) in &expected {
        if merged.row_total(*from) != *want {
            // Rows present in the parts but missing from the merge; rows
            // that exist on both sides were compared above.
            if merged.row_totals().iter().all(|(f, _)| f != from) {
                out.push(Diagnostic::new(
                    DiagnosticCode::MergeRowTotalMismatch,
                    format!(
                        "row {from} totals {want} across the parts but is \
                         absent after the merge"
                    ),
                ));
            }
        }
    }
    out
}

/// The worst severity present, if any finding exists.
pub fn max_severity(diagnostics: &[Diagnostic]) -> Option<Severity> {
    diagnostics.iter().map(Diagnostic::severity).max()
}

// ---------------------------------------------------------------------------
// DV18x: fixed-point dataflow over the combined transition graph.
// ---------------------------------------------------------------------------

/// The combined transition graph: one node per group, one node per actuator,
/// and a directed edge for every observed G2G, G2A, and A2G transition.
/// Entries with dangling ids (the `DV10x` errors) are skipped so the
/// analysis stays pure on corrupt input.
struct FlowGraph {
    num_groups: usize,
    num_nodes: usize,
    fwd: Vec<Vec<usize>>,
    rev: Vec<Vec<usize>>,
    num_edges: usize,
}

impl FlowGraph {
    fn build(model: &DiceModel) -> Self {
        let num_groups = model.groups().len();
        let num_actuators = model.num_actuators();
        let num_nodes = num_groups + num_actuators;
        let mut graph = FlowGraph {
            num_groups,
            num_nodes,
            fwd: vec![Vec::new(); num_nodes],
            rev: vec![Vec::new(); num_nodes],
            num_edges: 0,
        };
        let t = model.transitions();
        for (from, to, _) in t.g2g().entries() {
            graph.add(from as usize, to as usize, num_groups, num_groups);
        }
        for (from, to, _) in t.g2a().entries() {
            graph.add(
                from as usize,
                num_groups + to as usize,
                num_groups,
                num_nodes,
            );
        }
        for (from, to, _) in t.a2g().entries() {
            graph.add(
                num_groups + from as usize,
                to as usize,
                num_nodes,
                num_groups,
            );
        }
        graph
    }

    fn add(&mut self, from: usize, to: usize, from_bound: usize, to_bound: usize) {
        if from < from_bound.min(self.num_nodes) && to < to_bound.min(self.num_nodes) {
            self.fwd[from].push(to);
            self.rev[to].push(from);
            self.num_edges += 1;
        }
    }

    fn is_group(&self, node: usize) -> bool {
        node < self.num_groups
    }

    /// Kosaraju's two-pass strongly-connected-components: the fixed point of
    /// mutual reachability. Returns `(component_of_node, component_count)`;
    /// component ids are deterministic for a given model because adjacency
    /// is built from the matrices' sorted entry lists.
    fn sccs(&self) -> (Vec<usize>, usize) {
        let mut order = Vec::with_capacity(self.num_nodes);
        let mut seen = vec![false; self.num_nodes];
        for start in 0..self.num_nodes {
            if seen[start] {
                continue;
            }
            // Iterative DFS recording finish order.
            let mut stack = vec![(start, 0usize)];
            seen[start] = true;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                if let Some(&succ) = self.fwd[node].get(frame.1) {
                    frame.1 += 1;
                    if !seen[succ] {
                        seen[succ] = true;
                        stack.push((succ, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        let mut component = vec![usize::MAX; self.num_nodes];
        let mut count = 0usize;
        for &start in order.iter().rev() {
            if component[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            component[start] = count;
            while let Some(node) = stack.pop() {
                for &pred in &self.rev[node] {
                    if component[pred] == usize::MAX {
                        component[pred] = count;
                        stack.push(pred);
                    }
                }
            }
            count += 1;
        }
        (component, count)
    }
}

/// Per-component aggregate facts, derived from one pass over the edges.
struct ComponentFacts {
    members: Vec<Vec<usize>>,
    external_in: Vec<bool>,
    external_out: Vec<bool>,
    has_edge: Vec<bool>,
}

impl ComponentFacts {
    fn collect(graph: &FlowGraph, component: &[usize], count: usize) -> Self {
        let mut facts = ComponentFacts {
            members: vec![Vec::new(); count],
            external_in: vec![false; count],
            external_out: vec![false; count],
            has_edge: vec![false; count],
        };
        for node in 0..graph.num_nodes {
            facts.members[component[node]].push(node);
            for &succ in &graph.fwd[node] {
                let (from_c, to_c) = (component[node], component[succ]);
                facts.has_edge[from_c] = true;
                facts.has_edge[to_c] = true;
                if from_c != to_c {
                    facts.external_out[from_c] = true;
                    facts.external_in[to_c] = true;
                }
            }
        }
        facts
    }
}

/// Renders a group's state set the way `render_explain` does: the implicated
/// sensors with the roles of their set bits, e.g. `S2 (skewness+level)`.
fn describe_state_spans(model: &DiceModel, group: usize) -> String {
    let layout = model.layout();
    let state = model.groups().state(dice_types::GroupId::new(group as u32));
    let mut parts: Vec<String> = Vec::new();
    for (sensor, span) in layout.spans() {
        let mut roles: Vec<&str> = Vec::new();
        for bit in span.indices() {
            // A corrupt model's state set may be narrower than the layout
            // claims; that is DV110's finding, not a reason to panic here.
            if bit < state.len() && state.get(bit) {
                roles.push(match layout.role_of_bit(bit) {
                    crate::layout::BitRole::Activation => "activation",
                    crate::layout::BitRole::Skewness => "skewness",
                    crate::layout::BitRole::Trend => "trend",
                    crate::layout::BitRole::Level => "level",
                });
            }
        }
        if !roles.is_empty() {
            parts.push(format!("{sensor} ({})", roles.join("+")));
        }
    }
    if parts.is_empty() {
        "all-quiet state set".to_string()
    } else {
        parts.join(", ")
    }
}

/// Renders a sorted member list like `G3, G7, A1` with the groups' span
/// descriptions, capped so one huge component cannot flood the report.
fn describe_members(model: &DiceModel, graph: &FlowGraph, members: &[usize]) -> String {
    const SHOWN: usize = 4;
    let mut names: Vec<String> = Vec::new();
    for &node in members.iter().take(SHOWN) {
        if graph.is_group(node) {
            names.push(format!("G{node} [{}]", describe_state_spans(model, node)));
        } else {
            names.push(format!("A{}", node - graph.num_groups));
        }
    }
    if members.len() > SHOWN {
        names.push(format!("+{} more", members.len() - SHOWN));
    }
    names.join(", ")
}

/// Total training observations across a component's groups; the tiebreak key
/// for choosing which source/sink/component is "the" legitimate one.
fn component_observations(model: &DiceModel, graph: &FlowGraph, members: &[usize]) -> u64 {
    members
        .iter()
        .filter(|&&n| graph.is_group(n))
        .map(|&n| model.groups().count(dice_types::GroupId::new(n as u32)))
        .sum()
}

/// Runs the `DV18x` fixed-point dataflow analyses over the combined
/// G2G/G2A/A2G transition graph.
///
/// A model trained from one contiguous window stream is a single walk
/// through the graph, which forces a characteristic shape: every node is
/// reachable from the opening window's component, every node reaches the
/// closing window's component, and the whole graph is (weakly) connected.
/// The analyses flag departures from that shape:
///
/// * `DV180` — more than one *source* component among the groups: the extra
///   sources are unreachable from the rest of the model, so the engine can
///   only ever enter them cold.
/// * `DV181` — more than one *sink* component among the groups: the extra
///   sinks absorb the walk; once entered, every later window either stays
///   inside or raises a violation.
/// * `DV182` — the graph splits into disconnected components: whole
///   sub-models that can never interact (the signature of a group table
///   merged from the wrong shards).
/// * `DV183` — an actuator context with outgoing A2G transitions that no
///   G2A transition ever enters.
/// * `DV184` — a G2G row whose escape support sits exactly at
///   `min_row_support`: one lost observation silences its zero-probability
///   violations (an informational fragility note).
///
/// All graph-shape findings are warnings (multi-segment training legitimately
/// produces one extra source/sink per segment boundary, like `DV130`);
/// `DV184` is informational. Messages carry the implicated `BitLayout` span
/// names the way `render_explain` does.
pub fn check_graph_dataflow(model: &DiceModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let graph = FlowGraph::build(model);
    if graph.num_groups < 2 || graph.num_edges == 0 {
        return out; // too little structure for graph shape to mean anything
    }
    let (component, count) = graph.sccs();
    let facts = ComponentFacts::collect(&graph, &component, count);

    // Sources and sinks, restricted to components that contain at least one
    // group and touch at least one edge (edge-free components are the
    // disconnection case, reported once as DV182 below).
    let flag_extras = |keep_one_of: Vec<usize>,
                       code: DiagnosticCode,
                       render: &dyn Fn(&[usize]) -> String,
                       out: &mut Vec<Diagnostic>| {
        if keep_one_of.len() < 2 {
            return;
        }
        let mut ranked = keep_one_of;
        ranked.sort_by_key(|&c| {
            let obs = component_observations(model, &graph, &facts.members[c]);
            // Highest observation count first; ties break on the smaller
            // minimum member id so the choice is deterministic.
            (std::cmp::Reverse(obs), facts.members[c][0])
        });
        for &c in &ranked[1..] {
            out.push(Diagnostic::new(code, render(&facts.members[c])));
        }
    };

    let group_sources: Vec<usize> = (0..count)
        .filter(|&c| {
            !facts.external_in[c]
                && facts.has_edge[c]
                && facts.members[c].iter().any(|&n| graph.is_group(n))
        })
        .collect();
    flag_extras(
        group_sources,
        DiagnosticCode::UnreachableFlowComponent,
        &|members| {
            format!(
                "unreachable component: no transition path flows into {}; \
                 the engine can only enter these contexts cold (benign only \
                 for a training segment's opening windows)",
                describe_members(model, &graph, members)
            )
        },
        &mut out,
    );

    let group_sinks: Vec<usize> = (0..count)
        .filter(|&c| {
            !facts.external_out[c]
                && facts.has_edge[c]
                && facts.members[c].iter().any(|&n| graph.is_group(n))
        })
        .collect();
    flag_extras(
        group_sinks,
        DiagnosticCode::AbsorbingSinkComponent,
        &|members| {
            format!(
                "absorbing sink: no observed transition leaves {}; once \
                 entered, every later window stays inside or raises a \
                 violation (benign only for a training segment's closing \
                 windows)",
                describe_members(model, &graph, members)
            )
        },
        &mut out,
    );

    // Weak connectivity via union-find over every edge.
    let mut parent: Vec<usize> = (0..graph.num_nodes).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for node in 0..graph.num_nodes {
        for i in 0..graph.fwd[node].len() {
            let succ = graph.fwd[node][i];
            let (a, b) = (find(&mut parent, node), find(&mut parent, succ));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut weak_members: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for node in 0..graph.num_nodes {
        let root = find(&mut parent, node);
        weak_members.entry(root).or_default().push(node);
    }
    let weak_with_groups: Vec<Vec<usize>> = weak_members
        .into_values()
        .filter(|members| {
            // Actuators that never fired are isolated nodes, not damage.
            members.iter().any(|&n| graph.is_group(n))
        })
        .collect();
    if weak_with_groups.len() >= 2 {
        let mut ranked: Vec<&Vec<usize>> = weak_with_groups.iter().collect();
        ranked.sort_by_key(|members| {
            (
                std::cmp::Reverse(component_observations(model, &graph, members)),
                members[0],
            )
        });
        for members in &ranked[1..] {
            out.push(Diagnostic::new(
                DiagnosticCode::DisconnectedComponent,
                format!(
                    "disconnected component: {} share no transition with the \
                     rest of the model; these contexts can never interact",
                    describe_members(model, &graph, members)
                ),
            ));
        }
    }

    // DV183: actuator contexts with outgoing flow that no group enters.
    for actuator in 0..(graph.num_nodes - graph.num_groups) {
        let node = graph.num_groups + actuator;
        if !graph.fwd[node].is_empty() && graph.rev[node].is_empty() {
            out.push(Diagnostic::new(
                DiagnosticCode::UnenterableActuator,
                format!(
                    "actuator context A{actuator} has {} outgoing A2G \
                     transition(s) but no G2A transition enters it (benign \
                     only when its sole activation opened a training segment)",
                    graph.fwd[node].len()
                ),
            ));
        }
    }

    // DV184: G2G rows whose escape support sits exactly on the decision
    // boundary — one lost observation flips their violation eligibility.
    let min_support = model.config().min_row_support();
    if min_support > 0 {
        let g2g = model.transitions().g2g();
        for (from, total) in g2g.row_totals() {
            if (from as usize) >= graph.num_groups {
                continue;
            }
            let escapes = total.saturating_sub(g2g.count(from, from));
            if escapes == min_support {
                out.push(Diagnostic::new(
                    DiagnosticCode::FragileRowSupport,
                    format!(
                        "G2G row for G{from} [{}] has escape support \
                         {escapes}, exactly min_row_support: losing one \
                         observation would silence its zero-probability \
                         violations",
                        describe_state_spans(model, from as usize)
                    ),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarize::{Binarizer, Thresholds};
    use crate::bitset::BitSet;
    use crate::groups::GroupTable;
    use crate::layout::BitLayout;
    use crate::transition::TransitionModel;
    use dice_types::TimeDelta;

    fn model_with(
        groups: GroupTable,
        transitions: TransitionModel,
        thresholds: Vec<Option<f64>>,
        widths: &[usize],
        num_actuators: usize,
        training_windows: u64,
    ) -> DiceModel {
        let layout = BitLayout::from_widths(widths);
        let binarizer = Binarizer::new(layout, Thresholds::from_values(thresholds));
        DiceModel::from_parts(
            DiceConfig::default(),
            binarizer,
            groups,
            transitions,
            num_actuators,
            training_windows,
        )
    }

    fn clean_model() -> DiceModel {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.observe(&BitSet::from_indices(2, [1]));
        groups.observe(&BitSet::from_indices(2, [0]));
        let mut transitions = TransitionModel::new();
        transitions.record_g2g(dice_types::GroupId::new(0), dice_types::GroupId::new(1));
        transitions.record_g2g(dice_types::GroupId::new(1), dice_types::GroupId::new(0));
        model_with(groups, transitions, vec![None, None], &[1, 1], 0, 3)
    }

    #[test]
    fn clean_model_has_no_findings() {
        assert!(check_model(&clean_model()).is_empty());
    }

    #[test]
    fn dangling_g2g_target_is_flagged() {
        let mut model = clean_model();
        model.transitions_mut().g2g_mut().record(0, 7); // group 7 does not exist
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::DanglingGroupInG2g));
        assert!(has_errors(&diags));
    }

    #[test]
    fn inconsistent_row_total_is_flagged() {
        let mut model = clean_model();
        *model.transitions_mut().g2g_mut() = TransitionCounts::from_raw_parts(
            vec![(0, 1, 2)],
            vec![(0, 5)], // claims 5 outgoing, entries sum to 2
        );
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::RowNotStochastic));
    }

    #[test]
    fn missing_row_total_is_flagged() {
        let mut model = clean_model();
        *model.transitions_mut().g2g_mut() =
            TransitionCounts::from_raw_parts(vec![(0, 1, 2)], vec![]);
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::RowNotStochastic));
    }

    #[test]
    fn nan_threshold_is_flagged() {
        let mut groups = GroupTable::new(4);
        groups.observe(&BitSet::from_indices(4, [0]));
        let model = model_with(
            groups,
            TransitionModel::new(),
            vec![None, Some(f64::NAN)],
            &[1, 3],
            0,
            1,
        );
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::NonFiniteThreshold));
    }

    #[test]
    fn untrained_numeric_threshold_is_only_info() {
        let mut groups = GroupTable::new(4);
        groups.observe(&BitSet::from_indices(4, [0]));
        let model = model_with(
            groups,
            TransitionModel::new(),
            vec![None, None],
            &[1, 3],
            0,
            1,
        );
        let diags = check_model(&model);
        assert_eq!(max_severity(&diags), Some(Severity::Info));
    }

    #[test]
    fn duplicate_group_state_is_flagged() {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.insert_unchecked(BitSet::from_indices(2, [0]), 1);
        let model = model_with(
            groups,
            TransitionModel::new(),
            vec![None, None],
            &[1, 1],
            0,
            2,
        );
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::DuplicateGroupState));
    }

    #[test]
    fn widened_group_state_is_flagged() {
        let mut groups = GroupTable::new(2);
        groups.observe(&BitSet::from_indices(2, [0]));
        groups.insert_unchecked(BitSet::from_indices(5, [4]), 1);
        let model = model_with(
            groups,
            TransitionModel::new(),
            vec![None, None],
            &[1, 1],
            0,
            2,
        );
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::GroupWidthMismatch));
    }

    #[test]
    fn training_window_mismatch_is_flagged() {
        let mut groups = GroupTable::new(1);
        groups.observe(&BitSet::from_indices(1, [0]));
        let model = model_with(groups, TransitionModel::new(), vec![None], &[1], 0, 99);
        let diags = check_model(&model);
        assert!(diags
            .iter()
            .any(|d| d.code() == DiagnosticCode::TrainingWindowMismatch));
    }

    #[test]
    fn config_checks_flag_degenerate_settings() {
        let config = DiceConfig::builder()
            .window(TimeDelta::from_mins(1))
            .candidate_distance(0)
            .min_row_support(0)
            .confirmation_violations(5)
            .confirmation_horizon_windows(2)
            .build();
        let codes: Vec<DiagnosticCode> =
            check_config(&config).iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&DiagnosticCode::ZeroCandidateDistance));
        assert!(codes.contains(&DiagnosticCode::ZeroRowSupport));
        assert!(codes.contains(&DiagnosticCode::ConfirmationHorizonTooShort));
        assert!(!has_errors(&check_config(&config)));
    }

    #[test]
    fn default_config_is_clean() {
        assert!(check_config(&DiceConfig::default()).is_empty());
    }

    #[test]
    fn clean_group_merge_passes_dv17x() {
        let mut a = GroupTable::new(3);
        a.observe(&BitSet::from_indices(3, [0]));
        a.observe(&BitSet::from_indices(3, [1]));
        let mut b = GroupTable::new(3);
        b.observe(&BitSet::from_indices(3, [1]));
        b.observe(&BitSet::from_indices(3, [2]));
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(check_group_merge(&merged, &[&a, &b]).is_empty());
    }

    #[test]
    fn group_merge_checks_catch_lost_counts_and_duplicates() {
        let mut a = GroupTable::new(3);
        a.observe(&BitSet::from_indices(3, [0]));
        let mut b = GroupTable::new(3);
        b.observe(&BitSet::from_indices(3, [0]));

        // A "merge" that dropped b's observation entirely.
        let codes: Vec<DiagnosticCode> = check_group_merge(&a, &[&a, &b])
            .iter()
            .map(Diagnostic::code)
            .collect();
        assert!(codes.contains(&DiagnosticCode::MergeGroupCountNotPreserved));

        // A "merge" that inserted the shared state twice.
        let mut dup = a.clone();
        dup.insert_unchecked(BitSet::from_indices(3, [0]), 1);
        let codes: Vec<DiagnosticCode> = check_group_merge(&dup, &[&a, &b])
            .iter()
            .map(Diagnostic::code)
            .collect();
        assert!(codes.contains(&DiagnosticCode::MergeDuplicateGroupState));
    }

    #[test]
    fn transition_merge_checks_row_totals() {
        let mut a = TransitionCounts::new();
        a.record(0, 1);
        a.record(2, 2);
        let mut b = TransitionCounts::new();
        b.record(0, 3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(check_transition_merge(&merged, &[&a, &b]).is_empty());

        // Dropping b's row 0 contribution is a DV172.
        let codes: Vec<DiagnosticCode> = check_transition_merge(&a, &[&a, &b])
            .iter()
            .map(Diagnostic::code)
            .collect();
        assert_eq!(codes, vec![DiagnosticCode::MergeRowTotalMismatch]);

        // A merged-only phantom row is also a DV172.
        let mut phantom = merged.clone();
        phantom.record(9, 9);
        assert!(check_transition_merge(&phantom, &[&a, &b])
            .iter()
            .any(|d| d.code() == DiagnosticCode::MergeRowTotalMismatch));
    }
}
