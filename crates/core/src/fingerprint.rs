//! Stable artifact fingerprints.
//!
//! Every artifact the pipeline produces — trained models, configs, trace
//! JSONL files, telemetry snapshots — describes data laid out by one
//! [`BitLayout`](crate::BitLayout) and interpreted under one set of
//! thresholds. A [`Fingerprint`] hashes that shape into a single `u64` so
//! `dice-lint` can check that N artifacts were produced against the *same*
//! shape without deserializing the full model behind each one.
//!
//! The hash is FNV-1a over a canonical little-endian byte encoding. It is
//! part of the tooling contract (fingerprints are persisted in telemetry
//! snapshots), so the encoding of each input is append-only: new facets get
//! new `push_*` calls, existing call sequences never change.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over a canonical byte encoding.
///
/// # Example
///
/// ```
/// use dice_core::fingerprint::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.push_u64(1);
/// a.push_u64(2);
/// let mut b = Fingerprint::new();
/// b.push_u64(1);
/// b.push_u64(2);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Hashes raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a `u64` in little-endian encoding.
    pub fn push_u64(&mut self, value: u64) {
        self.push_bytes(&value.to_le_bytes());
    }

    /// Hashes an `i64` in little-endian encoding.
    pub fn push_i64(&mut self, value: i64) {
        self.push_bytes(&value.to_le_bytes());
    }

    /// Hashes a boolean as one byte.
    pub fn push_bool(&mut self, value: bool) {
        self.push_bytes(&[u8::from(value)]);
    }

    /// Hashes an `f64` by bit pattern (`NaN` payloads included, so a
    /// poisoned threshold table fingerprints differently from a clean one).
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Hashes an optional `f64` as a presence byte plus the bit pattern.
    pub fn push_opt_f64(&mut self, value: Option<f64>) {
        match value {
            Some(v) => {
                self.push_bool(true);
                self.push_f64(v);
            }
            None => self.push_bool(false),
        }
    }

    /// The final hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Folds a fingerprint into the range a telemetry gauge can carry losslessly.
///
/// Gauges are `i64`, but snapshots travel as JSON, whose numbers are IEEE
/// doubles: only integers up to 2^53 survive a parse round-trip exactly. The
/// projection therefore keeps the low 53 bits — both the engine (which
/// records the gauge) and the artifact checker (which reads it back from a
/// snapshot and compares against full 64-bit fingerprints) must use this
/// same truncation.
pub fn gauge_value(fingerprint: u64) -> i64 {
    (fingerprint & ((1 << 53) - 1)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        for fp in [&mut a, &mut b] {
            fp.push_u64(7);
            fp.push_bool(true);
            fp.push_opt_f64(Some(1.5));
            fp.push_opt_f64(None);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn any_facet_change_changes_the_hash() {
        let mut base = Fingerprint::new();
        base.push_u64(7);
        base.push_opt_f64(Some(1.5));
        let base = base.finish();

        let mut other = Fingerprint::new();
        other.push_u64(8);
        other.push_opt_f64(Some(1.5));
        assert_ne!(base, other.finish());

        let mut other = Fingerprint::new();
        other.push_u64(7);
        other.push_opt_f64(Some(1.25));
        assert_ne!(base, other.finish());

        let mut other = Fingerprint::new();
        other.push_u64(7);
        other.push_opt_f64(None);
        assert_ne!(base, other.finish());
    }

    #[test]
    fn nan_thresholds_are_distinguishable() {
        let mut clean = Fingerprint::new();
        clean.push_opt_f64(Some(20.0));
        let mut poisoned = Fingerprint::new();
        poisoned.push_opt_f64(Some(f64::NAN));
        assert_ne!(clean.finish(), poisoned.finish());
    }

    #[test]
    fn gauge_value_is_non_negative_and_stable() {
        assert!(gauge_value(u64::MAX) >= 0);
        assert!(gauge_value(0x8000_0000_0000_0000) >= 0);
        assert_eq!(gauge_value(42), 42);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fingerprint::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
