//! One-pass sample statistics for window binarization.
//!
//! Eq. 3.2 needs the skewness of a window's numeric samples, Eq. 3.3 the
//! first/last values, and Eq. 3.4 the mean. [`WindowStats`] accumulates all
//! of them in a single pass over the window's readings.

/// Accumulator for the per-window statistics of one numeric sensor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    first: Option<f64>,
    last: Option<f64>,
}

impl WindowStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (in arrival order).
    pub fn push(&mut self, value: f64) {
        // Welford-style central-moment update (third order).
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = value - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if self.first.is_none() {
            self.first = Some(value);
        }
        self.last = Some(value);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no samples were seen.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// The population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// The population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// The sample skewness `E[((S - mu) / sigma)^3]` (Eq. 3.2).
    ///
    /// Returns `None` when it is undefined: fewer than two samples, or zero
    /// variance (a constant window has no shape to be skewed).
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let variance = self.m2 / n;
        if variance <= f64::EPSILON * self.mean.abs().max(1.0) {
            return None;
        }
        Some((self.m3 / n) / variance.powf(1.5))
    }

    /// The first sample of the window (`S_t` in Eq. 3.3).
    pub fn first(&self) -> Option<f64> {
        self.first
    }

    /// The last sample of the window (`S_{t+d}` in Eq. 3.3).
    pub fn last(&self) -> Option<f64> {
        self.last
    }

    /// The trend `S_{t+d} - S_t` (Eq. 3.3), or `None` if empty.
    pub fn trend(&self) -> Option<f64> {
        match (self.first, self.last) {
            (Some(f), Some(l)) => Some(l - f),
            _ => None,
        }
    }
}

impl Extend<f64> for WindowStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for WindowStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut stats = WindowStats::new();
        stats.extend(iter);
        stats
    }
}

/// Streaming accumulator for a sensor's long-run mean, used to train the
/// `valueThre` threshold of Eq. 3.4 ("the corresponding sensor's mean value
/// of the data collected during the precomputation phase").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMean {
    n: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        self.mean += (value - self.mean) / self.n as f64;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(values: &[f64]) -> WindowStats {
        values.iter().copied().collect()
    }

    #[test]
    fn empty_stats_are_undefined() {
        let s = WindowStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.skewness(), None);
        assert_eq!(s.trend(), None);
    }

    #[test]
    fn mean_and_variance_match_direct_formulas() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = stats(&values);
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_detects_asymmetry() {
        // Right-skewed: one large outlier.
        let right = stats(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness().unwrap() > 0.0);
        // Left-skewed: one small outlier.
        let left = stats(&[10.0, 10.0, 10.0, 10.0, 1.0]);
        assert!(left.skewness().unwrap() < 0.0);
        // Symmetric data has (near) zero skewness.
        let sym = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(sym.skewness().unwrap().abs() < 1e-9);
    }

    #[test]
    fn skewness_undefined_for_constant_or_single() {
        assert_eq!(stats(&[5.0]).skewness(), None);
        assert_eq!(stats(&[5.0, 5.0, 5.0]).skewness(), None);
    }

    #[test]
    fn trend_is_last_minus_first() {
        let s = stats(&[3.0, 7.0, 5.0]);
        assert_eq!(s.first(), Some(3.0));
        assert_eq!(s.last(), Some(5.0));
        assert_eq!(s.trend(), Some(2.0));
        let single = stats(&[4.0]);
        assert_eq!(single.trend(), Some(0.0));
    }

    #[test]
    fn skewness_matches_naive_computation() {
        let values = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 9.0];
        let s = stats(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let m3 = values.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
        let expected = m3 / var.powf(1.5);
        assert!((s.skewness().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn running_mean_converges() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            rm.push(v);
        }
        assert_eq!(rm.count(), 4);
        assert!((rm.mean().unwrap() - 2.5).abs() < 1e-12);
    }
}
