//! One-pass sample statistics for window binarization.
//!
//! Eq. 3.2 needs the skewness of a window's numeric samples, Eq. 3.3 the
//! first/last values, and Eq. 3.4 the mean. [`WindowStats`] accumulates all
//! of them in a single pass over the window's readings.

/// Accumulator for the per-window statistics of one numeric sensor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    first: Option<f64>,
    last: Option<f64>,
}

impl WindowStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (in arrival order).
    pub fn push(&mut self, value: f64) {
        // Welford-style central-moment update (third order).
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = value - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if self.first.is_none() {
            self.first = Some(value);
        }
        self.last = Some(value);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no samples were seen.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// The population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// The population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// The sample skewness `E[((S - mu) / sigma)^3]` (Eq. 3.2).
    ///
    /// Returns `None` when it is undefined: fewer than two samples, or zero
    /// variance (a constant window has no shape to be skewed).
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let variance = self.m2 / n;
        if variance <= f64::EPSILON * self.mean.abs().max(1.0) {
            return None;
        }
        Some((self.m3 / n) / variance.powf(1.5))
    }

    /// The first sample of the window (`S_t` in Eq. 3.3).
    pub fn first(&self) -> Option<f64> {
        self.first
    }

    /// The last sample of the window (`S_{t+d}` in Eq. 3.3).
    pub fn last(&self) -> Option<f64> {
        self.last
    }

    /// The trend `S_{t+d} - S_t` (Eq. 3.3), or `None` if empty.
    pub fn trend(&self) -> Option<f64> {
        match (self.first, self.last) {
            (Some(f), Some(l)) => Some(l - f),
            _ => None,
        }
    }
}

impl Extend<f64> for WindowStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for WindowStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut stats = WindowStats::new();
        stats.extend(iter);
        stats
    }
}

/// Streaming accumulator for a sensor's long-run mean, used to train the
/// `valueThre` threshold of Eq. 3.4 ("the corresponding sensor's mean value
/// of the data collected during the precomputation phase").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningMean {
    n: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        self.mean += (value - self.mean) / self.n as f64;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }
}

/// Number of `i128` bins in an [`ExactSum`]. Finite `f64` exponents after
/// the subnormal offset span `[0, 2045]`; 32 exponent values share a bin.
const EXACT_SUM_BINS: usize = 64;

/// An exact, associative accumulator for `f64` sums.
///
/// The serial threshold trainer and the chunked parallel trainer must learn
/// *bit-identical* `valueThre` values, but floating-point addition is not
/// associative: summing per-chunk partial sums in merge order would drift
/// from the serial left-to-right sum by a few ulps. `ExactSum` sidesteps
/// this by accumulating the exact real-number sum: each finite sample is
/// decomposed into its integer mantissa and exponent (`v = m * 2^e`) and
/// added into one of 64 `i128` bins by exponent range, so addition and
/// [`ExactSum::merge`] are integer operations — exact, associative, and
/// commutative. [`ExactSum::value`] rounds the exact total to the nearest
/// `f64` once, at the end.
///
/// Capacity: each sample contributes less than `2^85` to a bin, so the bins
/// cannot overflow before roughly `2^42` samples — far beyond any training
/// log.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSum {
    bins: [i128; EXACT_SUM_BINS],
    non_finite: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum {
            bins: [0; EXACT_SUM_BINS],
            non_finite: false,
        }
    }
}

impl ExactSum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. Non-finite samples poison the sum: [`ExactSum::value`]
    /// returns NaN once any was seen (deterministically, regardless of order).
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            self.non_finite = true;
            return;
        }
        let bits = value.to_bits();
        let biased = ((bits >> 52) & 0x7FF) as i32;
        let frac = (bits & ((1u64 << 52) - 1)) as i64;
        // v = m * 2^e exactly; subnormals have e = -1074, normals an implicit
        // leading mantissa bit.
        let (mut m, e) = if biased == 0 {
            (frac, -1074)
        } else {
            (frac | (1i64 << 52), biased - 1075)
        };
        if bits >> 63 == 1 {
            m = -m;
        }
        let offset = (e + 1074) as usize;
        self.bins[offset / 32] += i128::from(m) << (offset % 32);
    }

    /// Adds another accumulator's total into this one. Exact, so the result
    /// is independent of merge order and grouping.
    pub fn merge(&mut self, other: &ExactSum) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.non_finite |= other.non_finite;
    }

    /// The sum, rounded once to the nearest `f64`. A pure function of the
    /// accumulated bins: any partition of the same samples into chunks and
    /// merges yields the same bits.
    pub fn value(&self) -> f64 {
        if self.non_finite {
            return f64::NAN;
        }
        match Self::normalize(&self.bins) {
            Some(digits) => Self::digits_to_f64(&digits),
            None => {
                let mut negated = self.bins;
                for b in &mut negated {
                    *b = -*b;
                }
                let digits = Self::normalize(&negated).expect("negated sum is non-negative");
                -Self::digits_to_f64(&digits)
            }
        }
    }

    /// Carry-normalizes the bins into unsigned base-`2^32` digits of the
    /// magnitude `sum * 2^1074`, or `None` if the sum is negative.
    fn normalize(bins: &[i128; EXACT_SUM_BINS]) -> Option<[u32; EXACT_SUM_BINS + 4]> {
        let mut digits = [0u32; EXACT_SUM_BINS + 4];
        let mut carry: i128 = 0;
        for (i, &bin) in bins.iter().enumerate() {
            let t = bin + carry;
            let d = t.rem_euclid(1 << 32);
            digits[i] = d as u32;
            carry = (t - d) >> 32;
        }
        let mut i = EXACT_SUM_BINS;
        while carry > 0 {
            digits[i] = (carry & 0xFFFF_FFFF) as u32;
            carry >>= 32;
            i += 1;
        }
        (carry == 0).then_some(digits)
    }

    /// Rounds the non-negative integer `digits * 2^-1074` to the nearest
    /// `f64` (ties to even, with a sticky bit for the discarded tail).
    fn digits_to_f64(digits: &[u32; EXACT_SUM_BINS + 4]) -> f64 {
        let Some(hi) = digits.iter().rposition(|&d| d != 0) else {
            return 0.0;
        };
        let msb = 32 * hi + (31 - digits[hi].leading_zeros() as usize);
        let bit = |b: usize| (digits[b / 32] >> (b % 32)) & 1 != 0;
        // Take the top (up to) 128 bits; everything below collapses into a
        // sticky bit so the single u128 -> f64 conversion rounds correctly.
        let lo = msb.saturating_sub(127);
        let mut window: u128 = 0;
        for b in (lo..=msb).rev() {
            window = (window << 1) | u128::from(bit(b));
        }
        let mut sticky = digits[..lo / 32].iter().any(|&d| d != 0);
        if !sticky && !lo.is_multiple_of(32) {
            sticky = digits[lo / 32] & ((1u32 << (lo % 32)) - 1) != 0;
        }
        if sticky {
            window |= 1;
        }
        Self::mul_pow2(window as f64, lo as i32 - 1074)
    }

    /// `x * 2^e` via exact power-of-two multiplies (stepwise near the
    /// exponent range edges; overflow saturates to infinity).
    fn mul_pow2(mut x: f64, mut e: i32) -> f64 {
        while e > 1023 {
            x *= 2f64.powi(1023);
            e -= 1023;
        }
        while e < -1022 {
            x *= 2f64.powi(-1022);
            e += 1022;
        }
        x * 2f64.powi(e)
    }
}

/// An exactly mergeable mean accumulator: sample count plus an [`ExactSum`].
///
/// Replaces the incremental-update running mean on the threshold-training
/// path so that per-chunk partial trainers merge to the same bits as one
/// serial pass (see [`ExactSum`] for why).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeanAccumulator {
    n: u64,
    sum: ExactSum,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        self.sum.push(value);
    }

    /// Folds another accumulator's samples into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.n += other.n;
        self.sum.merge(&other.sum);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The mean (exact sum, two roundings), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum.value() / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(values: &[f64]) -> WindowStats {
        values.iter().copied().collect()
    }

    #[test]
    fn empty_stats_are_undefined() {
        let s = WindowStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.skewness(), None);
        assert_eq!(s.trend(), None);
    }

    #[test]
    fn mean_and_variance_match_direct_formulas() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = stats(&values);
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_detects_asymmetry() {
        // Right-skewed: one large outlier.
        let right = stats(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness().unwrap() > 0.0);
        // Left-skewed: one small outlier.
        let left = stats(&[10.0, 10.0, 10.0, 10.0, 1.0]);
        assert!(left.skewness().unwrap() < 0.0);
        // Symmetric data has (near) zero skewness.
        let sym = stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(sym.skewness().unwrap().abs() < 1e-9);
    }

    #[test]
    fn skewness_undefined_for_constant_or_single() {
        assert_eq!(stats(&[5.0]).skewness(), None);
        assert_eq!(stats(&[5.0, 5.0, 5.0]).skewness(), None);
    }

    #[test]
    fn trend_is_last_minus_first() {
        let s = stats(&[3.0, 7.0, 5.0]);
        assert_eq!(s.first(), Some(3.0));
        assert_eq!(s.last(), Some(5.0));
        assert_eq!(s.trend(), Some(2.0));
        let single = stats(&[4.0]);
        assert_eq!(single.trend(), Some(0.0));
    }

    #[test]
    fn skewness_matches_naive_computation() {
        let values = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 9.0];
        let s = stats(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let m3 = values.iter().map(|v| (v - mean).powi(3)).sum::<f64>() / n;
        let expected = m3 / var.powf(1.5);
        assert!((s.skewness().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn running_mean_converges() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            rm.push(v);
        }
        assert_eq!(rm.count(), 4);
        assert!((rm.mean().unwrap() - 2.5).abs() < 1e-12);
    }

    fn exact(values: &[f64]) -> ExactSum {
        let mut s = ExactSum::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn exact_sum_matches_simple_sums() {
        assert_eq!(exact(&[]).value(), 0.0);
        assert_eq!(exact(&[1.5]).value(), 1.5);
        assert_eq!(exact(&[1.0, 2.0, 3.0, 4.0]).value(), 10.0);
        assert_eq!(exact(&[-2.5, 2.5]).value(), 0.0);
        assert_eq!(exact(&[1e300, -1e300, 7.0]).value(), 7.0);
        assert_eq!(exact(&[-1.0, -2.0]).value(), -3.0);
    }

    #[test]
    fn exact_sum_is_exact_where_float_addition_is_not() {
        // Serially, (1e16 + 1) - 1e16 == 0.0 in f64; the exact sum keeps
        // the unit.
        assert_eq!(exact(&[1e16, 1.0, -1e16]).value(), 1.0);
        // Cancellation across magnitudes.
        assert_eq!(exact(&[1e100, 0.5, -1e100]).value(), 0.5);
    }

    #[test]
    fn exact_sum_handles_subnormals_and_extremes() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(exact(&[tiny]).value(), tiny);
        assert_eq!(exact(&[tiny, tiny]).value(), 2.0 * tiny);
        assert_eq!(exact(&[f64::MAX]).value(), f64::MAX);
        assert_eq!(exact(&[f64::MIN]).value(), f64::MIN);
        // An exactly representable overflow saturates to infinity.
        assert_eq!(exact(&[f64::MAX, f64::MAX]).value(), f64::INFINITY);
    }

    #[test]
    fn exact_sum_poisons_on_non_finite() {
        assert!(exact(&[1.0, f64::NAN]).value().is_nan());
        assert!(exact(&[f64::INFINITY, 1.0]).value().is_nan());
    }

    #[test]
    fn exact_sum_merge_is_order_and_grouping_invariant() {
        let values = [
            0.1,
            -7.25,
            1e16,
            3.0e-9,
            42.0,
            -0.30000000000000004,
            1e-300,
            2.5e8,
            -1e16,
            0.7,
        ];
        let reference = exact(&values).value();
        // Every contiguous 3-way split, merged in both orders.
        for i in 0..values.len() {
            for j in i..values.len() {
                let (a, b, c) = (
                    exact(&values[..i]),
                    exact(&values[i..j]),
                    exact(&values[j..]),
                );
                let mut left = a.clone();
                left.merge(&b);
                left.merge(&c);
                let mut right = c;
                right.merge(&b);
                right.merge(&a);
                assert_eq!(left.value().to_bits(), reference.to_bits());
                assert_eq!(right.value().to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn mean_accumulator_merges_exactly() {
        let values = [18.0, 22.0, 21.0, 0.125, -3.5];
        let mut serial = MeanAccumulator::new();
        for &v in &values {
            serial.push(v);
        }
        let mut chunked = MeanAccumulator::new();
        for part in values.chunks(2) {
            let mut m = MeanAccumulator::new();
            for &v in part {
                m.push(v);
            }
            chunked.merge(&m);
        }
        assert_eq!(serial.count(), chunked.count());
        assert_eq!(
            serial.mean().unwrap().to_bits(),
            chunked.mean().unwrap().to_bits()
        );
        assert_eq!(MeanAccumulator::new().mean(), None);
    }
}
