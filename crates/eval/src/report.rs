//! Table formatting helpers for experiment output.

/// Formats a percentage with one decimal, e.g. `98.2%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders an aligned text table: a header row plus data rows.
///
/// Column widths are computed from the longest cell per column; all columns
/// but the first are right-aligned.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(pct(0.982), "98.2%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn table_is_aligned() {
        let table = render_table(
            &["dataset", "precision"],
            &[
                vec!["houseA".into(), "96.0%".into()],
                vec!["hh102".into(), "99.1%".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].contains("houseA"));
        // Right-aligned second column: both end at the same offset.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
