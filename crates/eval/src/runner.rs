//! The experiment runner: trains DICE on a dataset's precomputation period
//! and replays faulty / faultless segments through the real-time engine,
//! reproducing the paper's evaluation protocol (Section V).
//
// lint-src: allow-file(wall-clock) — the Instant reads report wall time in
// experiment summaries; metrics and verdicts come from replayed data only.

use std::collections::BTreeMap;

use dice_core::{
    merge_partials, Binarizer, BitLayout, CheckKind, ChunkExtractor, CostProfile, DiceConfig,
    DiceEngine, DiceModel, FaultReport, PartialModel, ThresholdTrainer,
};
use dice_datasets::{DatasetId, SegmentPlan, TimeRange};
use dice_faults::{
    ActuatorFault, ActuatorFaultType, FaultInjector, FaultPlanner, FaultType, SensorFault,
};
use dice_sim::{ScenarioSpec, Simulator};
use dice_telemetry::{saturating_ns, Telemetry};
use dice_types::{DeviceId, EventLog, TimeDelta, Timestamp};
use rayon::prelude::*;

use crate::metrics::{DetectionCounts, IdentificationCounts, LatencyStats};

/// Runs `body` as one evaluation trial, recording its wall-clock duration
/// into the process-global telemetry (trial count, per-trial histogram, and
/// worker busy time). A no-op wrapper when no recorder is installed.
fn timed_trial<T>(body: impl FnOnce() -> T) -> T {
    let telemetry = Telemetry::global();
    let Some(recorder) = telemetry.recorder() else {
        return body();
    };
    let start = std::time::Instant::now();
    let result = body();
    let ns = saturating_ns(start.elapsed().as_nanos());
    let metrics = &recorder.metrics.eval;
    metrics.trials_total.inc();
    metrics.trial_ns.record(ns);
    metrics.worker_busy_ns.add(ns);
    result
}

/// Runs `body` as one parallel evaluation section, recording its wall-clock
/// span and the worker-pool width; `busy / (wall * workers)` is the
/// parallel-worker utilization the snapshot exposes.
fn timed_parallel_section<T>(body: impl FnOnce() -> T) -> T {
    let telemetry = Telemetry::global();
    let Some(recorder) = telemetry.recorder() else {
        return body();
    };
    let start = std::time::Instant::now();
    let result = body();
    let metrics = &recorder.metrics.eval;
    metrics
        .wall_ns
        .add(saturating_ns(start.elapsed().as_nanos()));
    metrics.workers.set_max(rayon::current_num_threads() as i64);
    result
}

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Master seed for dataset synthesis and fault planning.
    pub seed: u64,
    /// Number of faulty (and faultless) trials per dataset (paper: 100).
    pub trials: u64,
    /// Precomputation period (paper: 300 h).
    pub precompute: TimeDelta,
    /// Real-time segment length (paper: 6 h).
    pub segment_len: TimeDelta,
    /// DICE configuration.
    pub dice: DiceConfig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            seed: 42,
            trials: 100,
            precompute: TimeDelta::from_hours(300),
            segment_len: TimeDelta::from_hours(6),
            dice: DiceConfig::default(),
        }
    }
}

/// A dataset with its trained DICE model, ready for real-time trials.
#[derive(Debug)]
pub struct TrainedDataset {
    /// Dataset name.
    pub name: String,
    /// The simulator producing the dataset.
    pub sim: Simulator,
    /// The trained model.
    pub model: DiceModel,
    /// The train/segment split.
    pub plan: SegmentPlan,
}

/// Prev-independent scan outcome for one window with no exact group match.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowScan {
    /// Closest in-threshold candidate — what a `CheckResult`'s candidate
    /// list leads with, `None` when nothing is within the threshold.
    pub first_candidate: Option<dice_core::Candidate>,
    /// Stand-in group for the previous-window summary: the first candidate
    /// when one exists, otherwise the globally nearest group.
    pub standin: Option<dice_types::GroupId>,
}

/// Resolves the scan work of a detector replay in two batched sweeps.
///
/// The correlation outcome, candidate list, and nearest-group fallback
/// depend only on each window's own state set — not on the previous-window
/// chain — so a replay can binarize every window first and answer all scan
/// queries through [`SlicedScanIndex`](dice_core::SlicedScanIndex)'s batch
/// entry points: one `candidates_batch_into` over the violating windows,
/// then one `nearest_batch_into` over the slots that came back empty.
/// Returns `None` for windows with an exact group match.
pub(crate) fn batched_window_scans(
    model: &DiceModel,
    observations: &[dice_core::WindowObservation],
    exact: &[Option<dice_types::GroupId>],
) -> Vec<Option<WindowScan>> {
    debug_assert_eq!(observations.len(), exact.len());
    let scan = model.scan();
    let violating: Vec<usize> = exact
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.is_none().then_some(i))
        .collect();
    let queries: Vec<&dice_core::BitSet> =
        violating.iter().map(|&i| &observations[i].state).collect();
    let mut cand_batch = Vec::new();
    let _ = scan.candidates_batch_into(&queries, model.candidate_distance(), &mut cand_batch);

    let mut out = vec![None; observations.len()];
    let mut fallback_slots: Vec<usize> = Vec::new();
    for (j, &i) in violating.iter().enumerate() {
        let first = cand_batch[j].first().copied();
        if first.is_none() {
            fallback_slots.push(j);
        }
        out[i] = Some(WindowScan {
            first_candidate: first,
            standin: first.map(|c| c.group),
        });
    }

    let fallback_queries: Vec<&dice_core::BitSet> =
        fallback_slots.iter().map(|&j| queries[j]).collect();
    let mut near_batch = Vec::new();
    let _ = scan.nearest_batch_into(&fallback_queries, &mut near_batch);
    for (k, &j) in fallback_slots.iter().enumerate() {
        if let Some(slot) = out[violating[j]].as_mut() {
            slot.standin = near_batch[k].first().map(|c| c.group);
        }
    }
    out
}

/// Trains DICE on a catalog dataset.
///
/// # Panics
///
/// Panics if the scenario is invalid or shorter than the training period
/// plus one segment.
pub fn train_dataset(id: DatasetId, cfg: &RunnerConfig) -> TrainedDataset {
    train_scenario(id.scenario(cfg.seed), cfg)
}

/// Trains DICE on an arbitrary scenario.
///
/// Training streams the precomputation period in six-hour chunks so even the
/// thousand-hour datasets never materialize fully.
///
/// # Panics
///
/// Panics if the scenario is invalid or too short for the configured split.
pub fn train_scenario(spec: ScenarioSpec, cfg: &RunnerConfig) -> TrainedDataset {
    let name = spec.name.clone();
    let plan = SegmentPlan::new(spec.duration, cfg.precompute, cfg.segment_len);
    let sim = Simulator::new(spec).expect("valid scenario");
    let model = train_model(&sim, &plan, cfg);
    if let Some(recorder) = Telemetry::global().recorder() {
        recorder.metrics.eval.datasets_total.inc();
    }
    TrainedDataset {
        name,
        sim,
        model,
        plan,
    }
}

/// Runs `body` as one chunk of a parallel training pass, adding its
/// wall-clock duration to the trainer's worker-busy counter.
fn timed_train_chunk<T>(body: impl FnOnce() -> T) -> T {
    let telemetry = Telemetry::global();
    let Some(recorder) = telemetry.recorder() else {
        return body();
    };
    let start = std::time::Instant::now();
    let result = body();
    recorder
        .metrics
        .train
        .worker_busy_ns
        .add(saturating_ns(start.elapsed().as_nanos()));
    result
}

/// Runs the two-pass precomputation phase over the training range as a
/// parallel map-reduce: per-chunk simulation + extraction on the worker
/// pool, then a deterministic merge. The merged model is bit-identical to
/// one serial pass over the whole range.
fn train_model(sim: &Simulator, plan: &SegmentPlan, cfg: &RunnerConfig) -> DiceModel {
    let registry = sim.registry();
    let training = plan.training();
    let window = cfg.dice.window();
    // Chunk boundaries must fall on window boundaries so the per-chunk
    // window tilings concatenate into exactly the serial tiling.
    let chunk = TimeDelta::from_hours(6);
    let chunk = if chunk.as_secs() % window.as_secs() == 0 {
        chunk
    } else {
        training.len()
    };
    let ranges = chunk_ranges(training, chunk);
    let wall_started = std::time::Instant::now();

    // Pass 1: per-chunk threshold accumulation, merged exactly.
    let trained: Vec<ThresholdTrainer> = ranges
        .par_iter()
        .map(|range| {
            timed_train_chunk(|| {
                let mut log = sim.log_between(range.start, range.end);
                let mut trainer = ThresholdTrainer::new(registry);
                for event in log.events() {
                    trainer.observe(event);
                }
                trainer
            })
        })
        .collect();
    let mut trainer = ThresholdTrainer::new(registry);
    for partial in &trained {
        trainer.merge(partial);
    }
    let binarizer = Binarizer::new(BitLayout::for_registry(registry), trainer.finish());

    // Pass 2: per-chunk window extraction with chunk-local group ids,
    // stitched back together by the deterministic merge.
    let partials: Vec<PartialModel> = ranges
        .par_iter()
        .map(|range| {
            timed_train_chunk(|| {
                let mut log = sim.log_between(range.start, range.end);
                let mut extractor = ChunkExtractor::new(&binarizer);
                for w in log.windows_between(range.start, range.end, window) {
                    extractor.observe_window(w.start, w.end, w.events);
                }
                extractor.finish()
            })
        })
        .collect();
    let model = merge_partials(
        cfg.dice.clone(),
        binarizer,
        registry.num_actuators(),
        &partials,
    )
    .expect("training range is non-empty");

    if let Some(recorder) = Telemetry::global().recorder() {
        let train = &recorder.metrics.train;
        train.windows_total.add(model.training_windows());
        train.chunks_total.add(ranges.len() as u64);
        train
            .wall_ns
            .add(saturating_ns(wall_started.elapsed().as_nanos()));
        train.workers.set_max(rayon::current_num_threads() as i64);
    }
    model
}

fn chunk_ranges(range: TimeRange, chunk: TimeDelta) -> Vec<TimeRange> {
    let mut ranges = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let end = (start + chunk).min(range.end);
        ranges.push(TimeRange { start, end });
        start = end;
    }
    ranges
}

/// How a faulty trial was detected, per fault type (Figure 5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckAttribution {
    /// Trials whose fault was first caught by the correlation check.
    pub by_correlation: u64,
    /// Trials whose fault was first caught by the transition check.
    pub by_transition: u64,
    /// Trials whose fault was missed.
    pub missed: u64,
}

impl CheckAttribution {
    /// Total trials with this fault type.
    pub fn total(&self) -> u64 {
        self.by_correlation + self.by_transition + self.missed
    }

    /// Fraction of detected trials caught by the correlation check.
    pub fn correlation_share(&self) -> f64 {
        let detected = self.by_correlation + self.by_transition;
        if detected == 0 {
            0.0
        } else {
            self.by_correlation as f64 / detected as f64
        }
    }
}

/// The aggregate result of evaluating one dataset.
#[derive(Debug, Clone)]
pub struct DatasetEvaluation {
    /// Dataset name.
    pub name: String,
    /// Segment-level detection confusion counts.
    pub detection: DetectionCounts,
    /// Device-level identification counts.
    pub identification: IdentificationCounts,
    /// Detection latency (minutes since fault onset).
    pub detect_latency: LatencyStats,
    /// Identification latency (minutes since fault onset).
    pub identify_latency: LatencyStats,
    /// Detection latency split by the check that fired (Table 5.1).
    pub detect_latency_by_check: BTreeMap<&'static str, LatencyStats>,
    /// Check attribution per fault type (Figure 5.4).
    pub by_fault_type: BTreeMap<FaultType, CheckAttribution>,
    /// Wall-clock cost profile accumulated over all processed windows
    /// (Figure 5.3).
    pub cost: CostProfile,
    /// Correlation degree of the trained model (Table 5.2).
    pub correlation_degree: f64,
    /// Number of groups in the trained model.
    pub num_groups: usize,
    /// Number of sensors in the deployment.
    pub num_sensors: usize,
}

/// Evaluates sensor faults on a trained dataset: for every trial, one
/// faultless segment replay (precision) and one fault-injected duplicate
/// (recall, identification, latency), exactly as in Section V.
///
/// Trials run in parallel. Every trial's randomness derives from the master
/// seed and the trial index alone (see [`FaultPlanner`]), and per-trial
/// results are folded into the evaluation in trial order, so the output is
/// bit-identical to [`evaluate_sensor_faults_serial`].
pub fn evaluate_sensor_faults(td: &TrainedDataset, cfg: &RunnerConfig) -> DatasetEvaluation {
    let planner = FaultPlanner::new(cfg.seed ^ 0xFA17);
    let injector = FaultInjector::new(cfg.seed ^ 0x1213);
    let trials: Vec<SensorTrial> = timed_parallel_section(|| {
        (0..cfg.trials)
            .into_par_iter()
            .map(|trial| timed_trial(|| run_sensor_trial(td, &planner, &injector, trial)))
            .collect()
    });
    fold_sensor_trials(td, trials)
}

/// Serial reference implementation of [`evaluate_sensor_faults`].
///
/// Shares the per-trial body and the fold with the parallel variant; the
/// equivalence test compares the two.
pub fn evaluate_sensor_faults_serial(td: &TrainedDataset, cfg: &RunnerConfig) -> DatasetEvaluation {
    let planner = FaultPlanner::new(cfg.seed ^ 0xFA17);
    let injector = FaultInjector::new(cfg.seed ^ 0x1213);
    let trials: Vec<SensorTrial> = (0..cfg.trials)
        .map(|trial| timed_trial(|| run_sensor_trial(td, &planner, &injector, trial)))
        .collect();
    fold_sensor_trials(td, trials)
}

/// Everything one sensor-fault trial contributes to the evaluation.
#[derive(Debug, Clone)]
struct SensorTrial {
    false_alarm: bool,
    clean_cost: CostProfile,
    fault: SensorFault,
    outcome: SegmentOutcome,
}

fn run_sensor_trial(
    td: &TrainedDataset,
    planner: &FaultPlanner,
    injector: &FaultInjector,
    trial: u64,
) -> SensorTrial {
    let registry = td.sim.registry();
    let segment = td.plan.segment_for_trial(trial);
    let clean = td.sim.log_between(segment.start, segment.end);

    // Faultless twin: any report is a false positive.
    let mut engine = DiceEngine::new(&td.model);
    let false_alarm = !engine
        .process_range(&mut clean.clone(), segment.start, segment.end)
        .is_empty()
        || engine.flush().is_some();
    let clean_cost = engine.cost_profile();

    // Faulty duplicate.
    let fault = planner.sensor_fault(trial, registry, segment.start, segment.len());
    let faulty = injector.inject_sensor(clean, registry, &fault);
    let outcome = run_faulty_segment(td, faulty, segment, fault.onset);
    SensorTrial {
        false_alarm,
        clean_cost,
        fault,
        outcome,
    }
}

fn fold_sensor_trials(td: &TrainedDataset, trials: Vec<SensorTrial>) -> DatasetEvaluation {
    let mut evaluation = DatasetEvaluation {
        name: td.name.clone(),
        detection: DetectionCounts::default(),
        identification: IdentificationCounts::default(),
        detect_latency: LatencyStats::new(),
        identify_latency: LatencyStats::new(),
        detect_latency_by_check: BTreeMap::new(),
        by_fault_type: BTreeMap::new(),
        cost: CostProfile::default(),
        correlation_degree: td.model.correlation_degree(),
        num_groups: td.model.groups().len(),
        num_sensors: td.sim.registry().num_sensors(),
    };
    for trial in trials {
        evaluation.detection.record_faultless(trial.false_alarm);
        evaluation.cost.merge(&trial.clean_cost);
        record_sensor_outcome(&mut evaluation, &trial.fault, &trial.outcome);
    }
    evaluation
}

/// The result of replaying one faulty segment.
#[derive(Debug, Clone)]
pub struct SegmentOutcome {
    /// The first report raised at or after the fault onset, if any.
    pub report: Option<FaultReport>,
    /// The engine's cost profile for the segment.
    pub cost: CostProfile,
}

/// Replays one (already fault-injected) segment and returns the first
/// post-onset report.
pub fn run_faulty_segment(
    td: &TrainedDataset,
    mut log: EventLog,
    segment: TimeRange,
    onset: Timestamp,
) -> SegmentOutcome {
    let mut engine = DiceEngine::new(&td.model);
    let mut reports = engine.process_range(&mut log, segment.start, segment.end);
    reports.extend(engine.flush());
    let report = reports.into_iter().find(|r| r.detected_at >= onset);
    SegmentOutcome {
        report,
        cost: engine.cost_profile(),
    }
}

fn record_sensor_outcome(
    evaluation: &mut DatasetEvaluation,
    fault: &SensorFault,
    outcome: &SegmentOutcome,
) {
    evaluation.cost.merge(&outcome.cost);
    evaluation.detection.record_faulty(outcome.report.is_some());
    let attribution = evaluation.by_fault_type.entry(fault.fault).or_default();
    match &outcome.report {
        None => {
            attribution.missed += 1;
            evaluation.identification.record(0, 0, 1);
        }
        Some(report) => {
            let detect_mins = (report.detected_at - fault.onset).as_mins_f64();
            let identify_mins = (report.identified_at - fault.onset).as_mins_f64();
            evaluation.detect_latency.push(detect_mins);
            evaluation.identify_latency.push(identify_mins);
            let check_name = match report.detected_by {
                CheckKind::Correlation => {
                    attribution.by_correlation += 1;
                    "correlation"
                }
                CheckKind::Transition => {
                    attribution.by_transition += 1;
                    "transition"
                }
            };
            evaluation
                .detect_latency_by_check
                .entry(check_name)
                .or_default()
                .push(detect_mins);
            let target = DeviceId::Sensor(fault.sensor);
            let correct = u64::from(report.devices.contains(&target));
            let spurious = report.devices.len() as u64 - correct;
            evaluation
                .identification
                .record(correct, spurious, 1 - correct);
        }
    }
}

/// Result of the multi-fault experiment (Section VI).
#[derive(Debug, Clone, Default)]
pub struct MultiFaultEvaluation {
    /// Device-level identification counts across all trials.
    pub identification: IdentificationCounts,
    /// Segment-level detection counts.
    pub detection: DetectionCounts,
}

/// Evaluates simultaneous multi-fault trials: 1–3 faulty sensors per
/// segment, `numThre = 3` (configure via `cfg.dice`).
///
/// Trials run in parallel with the same determinism contract as
/// [`evaluate_sensor_faults`].
pub fn evaluate_multi_faults(td: &TrainedDataset, cfg: &RunnerConfig) -> MultiFaultEvaluation {
    let planner = FaultPlanner::new(cfg.seed ^ 0x3FA1);
    let injector = FaultInjector::new(cfg.seed ^ 0x77);
    let trials: Vec<MultiTrial> = timed_parallel_section(|| {
        (0..cfg.trials)
            .into_par_iter()
            .map(|trial| timed_trial(|| run_multi_trial(td, &planner, &injector, trial)))
            .collect()
    });
    fold_multi_trials(trials)
}

/// Serial reference implementation of [`evaluate_multi_faults`].
pub fn evaluate_multi_faults_serial(
    td: &TrainedDataset,
    cfg: &RunnerConfig,
) -> MultiFaultEvaluation {
    let planner = FaultPlanner::new(cfg.seed ^ 0x3FA1);
    let injector = FaultInjector::new(cfg.seed ^ 0x77);
    let trials: Vec<MultiTrial> = (0..cfg.trials)
        .map(|trial| timed_trial(|| run_multi_trial(td, &planner, &injector, trial)))
        .collect();
    fold_multi_trials(trials)
}

/// Everything one multi-fault trial contributes to the evaluation.
#[derive(Debug, Clone)]
struct MultiTrial {
    faults: Vec<SensorFault>,
    outcome: SegmentOutcome,
}

fn run_multi_trial(
    td: &TrainedDataset,
    planner: &FaultPlanner,
    injector: &FaultInjector,
    trial: u64,
) -> MultiTrial {
    let registry = td.sim.registry();
    let segment = td.plan.segment_for_trial(trial);
    let clean = td.sim.log_between(segment.start, segment.end);
    let count = (trial % 3 + 1) as usize;
    let faults = planner.sensor_faults(trial, registry, segment.start, segment.len(), count);
    let faulty = injector.inject_sensors(clean, registry, &faults);
    let first_onset = faults
        .iter()
        .map(|f| f.onset)
        .min()
        .expect("at least one fault");
    let outcome = run_faulty_segment(td, faulty, segment, first_onset);
    MultiTrial { faults, outcome }
}

fn fold_multi_trials(trials: Vec<MultiTrial>) -> MultiFaultEvaluation {
    let mut out = MultiFaultEvaluation::default();
    for trial in trials {
        out.detection.record_faulty(trial.outcome.report.is_some());
        match trial.outcome.report {
            None => out.identification.record(0, 0, trial.faults.len() as u64),
            Some(report) => {
                let actual: Vec<DeviceId> = trial
                    .faults
                    .iter()
                    .map(|f| DeviceId::Sensor(f.sensor))
                    .collect();
                let correct = report.devices.iter().filter(|d| actual.contains(d)).count() as u64;
                let spurious = report.devices.len() as u64 - correct;
                let missed = actual.len() as u64 - correct;
                out.identification.record(correct, spurious, missed);
            }
        }
    }
    out
}

/// Result of the actuator-fault experiment (Section 5.1.3).
#[derive(Debug, Clone, Default)]
pub struct ActuatorEvaluation {
    /// Device-level identification counts.
    pub identification: IdentificationCounts,
    /// Segment-level detection counts.
    pub detection: DetectionCounts,
}

/// Evaluates actuator faults (ghost activations) on a testbed dataset.
///
/// Ghost faults are the observable actuator fault class for DICE's G2A/A2G
/// checks: a silenced actuator emits no events for the transition check to
/// test, so the headline actuator experiment injects ghosts (see
/// EXPERIMENTS.md).
///
/// Trials run in parallel with the same determinism contract as
/// [`evaluate_sensor_faults`].
pub fn evaluate_actuator_faults(td: &TrainedDataset, cfg: &RunnerConfig) -> ActuatorEvaluation {
    assert!(
        td.sim.registry().num_actuators() > 0,
        "dataset has no actuators"
    );
    let planner = FaultPlanner::new(cfg.seed ^ 0xAC7);
    let injector = FaultInjector::new(cfg.seed ^ 0xAC8);
    let trials: Vec<ActuatorTrial> = timed_parallel_section(|| {
        (0..cfg.trials)
            .into_par_iter()
            .map(|trial| timed_trial(|| run_actuator_trial(td, &planner, &injector, trial)))
            .collect()
    });
    fold_actuator_trials(trials)
}

/// Serial reference implementation of [`evaluate_actuator_faults`].
pub fn evaluate_actuator_faults_serial(
    td: &TrainedDataset,
    cfg: &RunnerConfig,
) -> ActuatorEvaluation {
    assert!(
        td.sim.registry().num_actuators() > 0,
        "dataset has no actuators"
    );
    let planner = FaultPlanner::new(cfg.seed ^ 0xAC7);
    let injector = FaultInjector::new(cfg.seed ^ 0xAC8);
    let trials: Vec<ActuatorTrial> = (0..cfg.trials)
        .map(|trial| timed_trial(|| run_actuator_trial(td, &planner, &injector, trial)))
        .collect();
    fold_actuator_trials(trials)
}

/// Everything one actuator-fault trial contributes to the evaluation.
#[derive(Debug, Clone)]
struct ActuatorTrial {
    fault: ActuatorFault,
    outcome: SegmentOutcome,
}

fn run_actuator_trial(
    td: &TrainedDataset,
    planner: &FaultPlanner,
    injector: &FaultInjector,
    trial: u64,
) -> ActuatorTrial {
    let registry = td.sim.registry();
    let segment = td.plan.segment_for_trial(trial);
    let clean = td.sim.log_between(segment.start, segment.end);
    let mut fault = planner.actuator_fault(trial, registry, segment.start, segment.len());
    fault.fault = ActuatorFaultType::Ghost;
    let faulty = injector.inject_actuator(clean, &fault);
    let outcome = run_faulty_segment(td, faulty, segment, fault.onset);
    ActuatorTrial { fault, outcome }
}

fn fold_actuator_trials(trials: Vec<ActuatorTrial>) -> ActuatorEvaluation {
    let mut out = ActuatorEvaluation::default();
    for trial in trials {
        out.detection.record_faulty(trial.outcome.report.is_some());
        record_actuator_outcome(&mut out, &trial.fault, &trial.outcome);
    }
    out
}

fn record_actuator_outcome(
    out: &mut ActuatorEvaluation,
    fault: &ActuatorFault,
    outcome: &SegmentOutcome,
) {
    match &outcome.report {
        None => out.identification.record(0, 0, 1),
        Some(report) => {
            let target = DeviceId::Actuator(fault.actuator);
            let correct = u64::from(report.devices.contains(&target));
            let spurious = report.devices.len() as u64 - correct;
            out.identification.record(correct, spurious, 1 - correct);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::ModelBuilder;
    use dice_sim::testbed;

    fn quick_cfg() -> RunnerConfig {
        RunnerConfig {
            seed: 7,
            trials: 4,
            precompute: TimeDelta::from_hours(48),
            segment_len: TimeDelta::from_hours(6),
            dice: DiceConfig::default(),
        }
    }

    fn quick_testbed() -> TrainedDataset {
        let spec = testbed::dice_testbed("quick", 7, TimeDelta::from_hours(80), 12, 1);
        train_scenario(spec, &quick_cfg())
    }

    #[test]
    fn training_produces_nonempty_model() {
        let td = quick_testbed();
        assert!(td.model.groups().len() > 1);
        assert!(td.model.training_windows() >= 48 * 60);
        assert_eq!(td.plan.segments().len(), 5); // (80 - 48) / 6
    }

    #[test]
    fn chunked_training_equals_monolithic_training() {
        let cfg = quick_cfg();
        let spec = testbed::dice_testbed("quick", 7, TimeDelta::from_hours(80), 12, 1);
        let td = train_scenario(spec.clone(), &cfg);
        // Monolithic: one ModelBuilder pass over the whole training range.
        let sim = Simulator::new(spec).unwrap();
        let mut trainer = ThresholdTrainer::new(sim.registry());
        let mut log = sim.log_between(Timestamp::ZERO, Timestamp::from_hours(48));
        for event in log.events() {
            trainer.observe(event);
        }
        let mut builder =
            ModelBuilder::new(cfg.dice.clone(), sim.registry(), trainer.finish()).unwrap();
        for w in log.windows_between(
            Timestamp::ZERO,
            Timestamp::from_hours(48),
            cfg.dice.window(),
        ) {
            builder.observe_window(w.start, w.end, w.events);
        }
        let model = builder.finish().unwrap();
        assert_eq!(td.model, model, "parallel training must be bit-identical");
    }

    #[test]
    fn sensor_fault_evaluation_runs() {
        let td = quick_testbed();
        let eval = evaluate_sensor_faults(&td, &quick_cfg());
        let total = eval.detection.true_positives + eval.detection.false_negatives;
        assert_eq!(total, 4);
        assert_eq!(
            eval.detection.false_positives + eval.detection.true_negatives,
            4
        );
        assert!(eval.cost.windows > 0);
        assert!(eval.correlation_degree > 0.0);
    }

    #[test]
    fn multi_fault_evaluation_counts_actual_devices() {
        let td = quick_testbed();
        let mut cfg = quick_cfg();
        cfg.dice = DiceConfig::builder().max_faults(3).num_thre(3).build();
        let eval = evaluate_multi_faults(&td, &cfg);
        let judged = eval.identification.correct + eval.identification.missed;
        assert!(judged >= 4, "each trial contributes its faulty devices");
    }

    #[test]
    fn actuator_evaluation_runs_on_testbed() {
        let td = quick_testbed();
        let eval = evaluate_actuator_faults(&td, &quick_cfg());
        let total = eval.detection.true_positives + eval.detection.false_negatives;
        assert_eq!(total, 4);
    }
}
