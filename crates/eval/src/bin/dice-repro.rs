//! Command-line interface regenerating every table and figure of the paper.

use dice_core::{JsonlTraceWriter, TraceOptions};
use dice_eval::experiments;
use dice_telemetry::Telemetry;

/// Strips a `--telemetry <path>` / `--telemetry=<path>` flag from `args`,
/// returning the snapshot path when present.
fn extract_telemetry_flag(args: &mut Vec<String>) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry" {
            if i + 1 >= args.len() {
                eprintln!("error: --telemetry needs an output path");
                std::process::exit(2);
            }
            let path = args.remove(i + 1);
            args.remove(i);
            return Some(path);
        }
        if let Some(path) = args[i].strip_prefix("--telemetry=") {
            let path = path.to_string();
            args.remove(i);
            return Some(path);
        }
        i += 1;
    }
    None
}

/// Strips a `--trace <path>` / `--trace=<path>` flag from `args`, returning
/// the JSONL output path when present.
fn extract_trace_flag(args: &mut Vec<String>) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("error: --trace needs an output path");
                std::process::exit(2);
            }
            let path = args.remove(i + 1);
            args.remove(i);
            return Some(path);
        }
        if let Some(path) = args[i].strip_prefix("--trace=") {
            let path = path.to_string();
            args.remove(i);
            return Some(path);
        }
        i += 1;
    }
    None
}

/// Strips a `--train-jobs <N>` / `--train-jobs=<N>` flag from `args`,
/// returning the worker count when present.
fn extract_train_jobs_flag(args: &mut Vec<String>) -> Option<usize> {
    let parse = |value: &str| -> usize {
        match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --train-jobs needs a positive worker count");
                std::process::exit(2);
            }
        }
    };
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--train-jobs" {
            if i + 1 >= args.len() {
                eprintln!("error: --train-jobs needs a positive worker count");
                std::process::exit(2);
            }
            let jobs = parse(&args.remove(i + 1));
            args.remove(i);
            return Some(jobs);
        }
        if let Some(value) = args[i].strip_prefix("--train-jobs=") {
            let jobs = parse(value);
            args.remove(i);
            return Some(jobs);
        }
        i += 1;
    }
    None
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = extract_telemetry_flag(&mut args);
    let trace_path = extract_trace_flag(&mut args);
    if let Some(jobs) = extract_train_jobs_flag(&mut args) {
        // The rayon shim (and real rayon) size their pools from this; set it
        // before the first parallel section runs.
        std::env::set_var("RAYON_NUM_THREADS", jobs.to_string());
    }
    if telemetry_path.is_some() {
        let _ = Telemetry::install_global(Telemetry::recording());
    }
    if let Some(path) = &trace_path {
        let file = match std::fs::File::create(path) {
            Ok(file) => file,
            Err(error) => {
                eprintln!("error: cannot create trace file {path:?}: {error}");
                std::process::exit(2);
            }
        };
        let sink = JsonlTraceWriter::with_telemetry(file, &Telemetry::global()).into_shared();
        if !TraceOptions::install_global(TraceOptions::recording().with_sink(sink)) {
            eprintln!("warning: trace options were already installed; --trace ignored");
        }
    }
    let mut iter = args.iter().map(String::as_str);
    let command = iter.next().unwrap_or("help");
    let rest: Vec<&str> = iter.collect();
    match experiments::run_command(command, &rest) {
        Ok(output) => {
            println!("{output}");
            if let Some(path) = telemetry_path {
                let Some(snapshot) = Telemetry::global().snapshot() else {
                    eprintln!("error: telemetry recorder was not installed");
                    std::process::exit(1);
                };
                if let Err(error) = std::fs::write(&path, snapshot.to_json()) {
                    eprintln!("error: cannot write telemetry snapshot {path:?}: {error}");
                    std::process::exit(1);
                }
                eprintln!("telemetry snapshot written to {path}");
            }
            if let Some(path) = trace_path {
                // The JSONL sink flushes after every trace line, so the file
                // is complete once the command returns.
                eprintln!("decision traces written to {path}");
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", experiments::usage());
            std::process::exit(2);
        }
    }
}
