//! Command-line interface regenerating every table and figure of the paper.

use dice_eval::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter().map(String::as_str);
    let command = iter.next().unwrap_or("help");
    let rest: Vec<&str> = iter.collect();
    match experiments::run_command(command, &rest) {
        Ok(output) => println!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", experiments::usage());
            std::process::exit(2);
        }
    }
}
