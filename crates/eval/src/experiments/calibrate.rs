//! Single-dataset calibration: quick metrics for one dataset.
//
// lint-src: allow-file(wall-clock) — the Instant reads report train/replay
// wall time in the summary; the metrics themselves are replay-derived.

use dice_datasets::DatasetId;

use crate::report::pct;
use crate::runner::{evaluate_sensor_faults, train_dataset, RunnerConfig};

/// Trains and evaluates one dataset, returning a human-readable summary.
///
/// # Errors
///
/// Returns an error for unknown dataset names.
pub fn calibrate(dataset: &str, trials: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig {
        trials,
        ..RunnerConfig::default()
    };
    let t0 = std::time::Instant::now();
    let td = train_dataset(id, &cfg);
    let trained = t0.elapsed();
    let t1 = std::time::Instant::now();
    let eval = evaluate_sensor_faults(&td, &cfg);
    let evaluated = t1.elapsed();
    let mut out = String::new();
    out.push_str(&format!(
        "{}: {} sensors, {} groups, correlation degree {:.1}\n",
        eval.name, eval.num_sensors, eval.num_groups, eval.correlation_degree
    ));
    out.push_str(&format!(
        "detection:      precision {} recall {}\n",
        pct(eval.detection.precision()),
        pct(eval.detection.recall())
    ));
    out.push_str(&format!(
        "identification: precision {} recall {}\n",
        pct(eval.identification.precision()),
        pct(eval.identification.recall())
    ));
    out.push_str(&format!(
        "latency: detect {} | identify {}\n",
        eval.detect_latency, eval.identify_latency
    ));
    out.push_str(&format!(
        "cost/window: corr {:.3} ms, trans {:.4} ms, ident {:.4} ms ({} windows)\n",
        eval.cost.correlation_ms_per_window(),
        eval.cost.transition_ms_per_window(),
        eval.cost.identification_ms_per_window(),
        eval.cost.windows
    ));
    for (fault, attr) in &eval.by_fault_type {
        out.push_str(&format!(
            "  {fault:<10} corr {} trans {} missed {}\n",
            attr.by_correlation, attr.by_transition, attr.missed
        ));
    }
    out.push_str(&format!(
        "wall: train {:.1}s eval {:.1}s\n",
        trained.as_secs_f64(),
        evaluated.as_secs_f64()
    ));
    Ok(out)
}
