//! Section VI, "Multi-user cases": whole-home DICE vs room-partitioned DICE
//! as the resident count grows.
//!
//! The paper predicts that multi-resident homes blow up the unique
//! sensor-state-set count (combinations of simultaneous activities) and
//! proposes partitioning spatially-close sensors into independent DICE
//! instances. This experiment measures both: the group-count growth with
//! residents, and the accuracy/group-count trade-off of partitioning.

use dice_core::{DiceEngine, Partition, PartitionedEngine, PartitionedModel};
use dice_faults::{FaultInjector, FaultPlanner};
use dice_sim::testbed;
use dice_types::{DeviceId, EventLog, TimeDelta};

use crate::metrics::DetectionCounts;
use crate::report::{pct, render_table};
use crate::runner::{train_scenario, RunnerConfig, TrainedDataset};

/// Accuracy of one approach on one resident count.
#[derive(Debug, Clone, Default)]
struct ApproachResult {
    groups: usize,
    detection: DetectionCounts,
    identified: u64,
}

fn evaluate_whole_home(td: &TrainedDataset, cfg: &RunnerConfig) -> ApproachResult {
    let planner = FaultPlanner::new(cfg.seed ^ 0xFA17);
    let injector = FaultInjector::new(cfg.seed ^ 0x1213);
    let mut result = ApproachResult {
        groups: td.model.groups().len(),
        ..ApproachResult::default()
    };
    for trial in 0..cfg.trials {
        let segment = td.plan.segment_for_trial(trial);
        let clean = td.sim.log_between(segment.start, segment.end);
        let mut engine = DiceEngine::new(&td.model);
        let flagged = !engine
            .process_range(&mut clean.clone(), segment.start, segment.end)
            .is_empty()
            || engine.flush().is_some();
        result.detection.record_faultless(flagged);

        let fault = planner.sensor_fault(trial, td.sim.registry(), segment.start, segment.len());
        let mut faulty = injector.inject_sensor(clean, td.sim.registry(), &fault);
        let mut engine = DiceEngine::new(&td.model);
        let mut reports = engine.process_range(&mut faulty, segment.start, segment.end);
        reports.extend(engine.flush());
        let report = reports.into_iter().find(|r| r.detected_at >= fault.onset);
        result.detection.record_faulty(report.is_some());
        if report.is_some_and(|r| r.devices.contains(&DeviceId::Sensor(fault.sensor))) {
            result.identified += 1;
        }
    }
    result
}

fn evaluate_partitioned(
    td: &TrainedDataset,
    model: &PartitionedModel,
    cfg: &RunnerConfig,
) -> ApproachResult {
    let planner = FaultPlanner::new(cfg.seed ^ 0xFA17);
    let injector = FaultInjector::new(cfg.seed ^ 0x1213);
    let mut result = ApproachResult {
        groups: model.total_groups(),
        ..ApproachResult::default()
    };
    for trial in 0..cfg.trials {
        let segment = td.plan.segment_for_trial(trial);
        let clean = td.sim.log_between(segment.start, segment.end);
        let mut engine = PartitionedEngine::new(model);
        let mut reports = engine.process_range(&mut clean.clone(), segment.start, segment.end);
        reports.extend(engine.flush());
        result.detection.record_faultless(!reports.is_empty());

        let fault = planner.sensor_fault(trial, td.sim.registry(), segment.start, segment.len());
        let mut faulty = injector.inject_sensor(clean, td.sim.registry(), &fault);
        let mut engine = PartitionedEngine::new(model);
        let mut reports = engine.process_range(&mut faulty, segment.start, segment.end);
        reports.extend(engine.flush());
        let report = reports.into_iter().find(|r| r.detected_at >= fault.onset);
        result.detection.record_faulty(report.is_some());
        if report.is_some_and(|r| r.devices.contains(&DeviceId::Sensor(fault.sensor))) {
            result.identified += 1;
        }
    }
    result
}

/// Runs the multi-user comparison for 1–3 residents.
pub fn multi_user(trials: u64, seed: u64) -> String {
    let mut rows = Vec::new();
    for residents in 1..=3usize {
        let cfg = RunnerConfig {
            trials,
            seed,
            ..RunnerConfig::default()
        };
        let spec = testbed::dice_testbed(
            &format!("D_multi{residents}"),
            seed,
            TimeDelta::from_hours(600),
            16,
            residents,
        );
        let td = train_scenario(spec, &cfg);

        // Whole-home DICE.
        let whole = evaluate_whole_home(&td, &cfg);

        // Room-partitioned DICE, trained on the same 300 h.
        let mut training = EventLog::new();
        let mut start = td.plan.training().start;
        while start < td.plan.training().end {
            let end = (start + TimeDelta::from_hours(6)).min(td.plan.training().end);
            training.merge(td.sim.log_between(start, end));
            start = end;
        }
        let partitions = Partition::by_room(td.sim.registry());
        let model = PartitionedModel::train(td.model.config(), partitions, &mut training)
            .expect("partitioned training succeeds");
        let part = evaluate_partitioned(&td, &model, &cfg);

        for (approach, r) in [("whole-home", &whole), ("per-room", &part)] {
            rows.push(vec![
                format!("{residents} resident(s)"),
                approach.to_string(),
                r.groups.to_string(),
                pct(r.detection.precision()),
                pct(r.detection.recall()),
                pct(if trials == 0 {
                    1.0
                } else {
                    r.identified as f64 / trials as f64
                }),
            ]);
        }
    }
    let mut out = String::from(
        "Section VI: Multi-user Cases (whole-home vs room-partitioned DICE, testbed)\n",
    );
    out.push_str(&render_table(
        &[
            "residents",
            "approach",
            "groups",
            "det. P",
            "det. R",
            "id. hit",
        ],
        &rows,
    ));
    out.push_str(
        "paper: unique state sets grow with residents; partitioning spatially close\n\
         sensors into separate DICE instances restrains the combinations\n",
    );
    out
}
