//! The `bench-json` command: a tracked benchmark baseline.
//!
//! Measures the candidate-scan hot path — the naive [`GroupTable`] scan
//! against the packed [`ScanIndex`] and the bit-sliced [`SlicedScanIndex`]
//! (single-query and batched, with the dispatched SIMD backend recorded) —
//! at hh102 width (33 binary + 79 numeric sensors = 270 state bits) across
//! group-table sizes, plus end-to-end engine throughput on the testbed, and
//! writes the results as JSON. CI runs this from the repo root to refresh
//! `BENCH_core.json`.
//
// lint-src: allow-file(wall-clock) — a benchmark exists to read the clock;
// timings are reported, never fed back into model state.

use std::fmt::Write as _;
use std::time::Instant;

use dice_core::{
    BitSet, DiceConfig, DiceEngine, EngineOptions, GroupTable, ParallelTrainer, RoutedScanIndex,
    ScanBackend, ScanIndex, SlicedScanIndex, SCAN_CROSSOVER_GROUPS,
};
use dice_sim::testbed;
use dice_telemetry::{Telemetry, TimeSeriesRecorder};
use dice_types::{
    ActuatorEvent, ActuatorId, ActuatorKind, DeviceRegistry, EventLog, Room, SensorId, SensorKind,
    SensorReading, TimeDelta, Timestamp,
};

use super::fleet_bench::{run_fleet_bench, run_fleet_bench_traced, FleetBenchResult, FLOOR_PLANS};
use crate::runner::{train_scenario, RunnerConfig, TrainedDataset};

/// hh102's state width: 33 binary sensors + 3 bits per numeric sensor.
const HH102_BITS: usize = 33 + 3 * 79;

/// The candidate threshold used throughout the paper experiments.
const MAX_DISTANCE: u32 = 3;

/// One row of the candidate-scan comparison.
#[derive(Debug, Clone, Copy)]
struct ScanRow {
    groups: usize,
    naive_ns: f64,
    indexed_ns: f64,
    bitsliced_ns: f64,
    batch_ns: f64,
    routed_ns: f64,
    backend: &'static str,
}

impl ScanRow {
    fn ratio(naive: f64, fast: f64) -> f64 {
        if fast > 0.0 {
            naive / fast
        } else {
            0.0
        }
    }

    fn speedup(&self) -> f64 {
        Self::ratio(self.naive_ns, self.indexed_ns)
    }

    fn speedup_bitsliced(&self) -> f64 {
        Self::ratio(self.naive_ns, self.bitsliced_ns)
    }

    fn speedup_batch(&self) -> f64 {
        Self::ratio(self.naive_ns, self.batch_ns)
    }

    fn speedup_routed(&self) -> f64 {
        Self::ratio(self.naive_ns, self.routed_ns)
    }
}

/// A distinct synthetic state whose popcount sweeps the activity range.
///
/// Real group tables mix near-idle states (few bits set) with busy-household
/// states (many bits set); the popcount spread is what the scan index's
/// prefilter exploits, so the synthetic workload reproduces it: `i`'s binary
/// form in the low 20 bits keeps states distinct, and a contiguous run of
/// `3 * (i mod 40)` high bits spreads popcounts over roughly `[0, 120]`.
fn synthetic_state(num_bits: usize, i: usize, run_len: usize, phase: usize) -> BitSet {
    let id_bits = (0..20).filter(move |j| (i >> j) & 1 == 1);
    let span = num_bits - 20;
    let start = (i * 7 + phase) % span;
    let run = (0..run_len.min(span)).map(move |k| 20 + (start + k) % span);
    BitSet::from_indices(num_bits, id_bits.chain(run))
}

/// Builds a table of `groups` distinct states over `num_bits` bits.
fn synthetic_table(num_bits: usize, groups: usize) -> GroupTable {
    let mut table = GroupTable::new(num_bits);
    for i in 0..groups {
        table.observe(&synthetic_state(num_bits, i, 3 * (i % 40), 0));
    }
    assert_eq!(table.len(), groups, "bench states must be distinct");
    table
}

/// Query states resembling live windows: mid-activity near-misses.
fn synthetic_queries(num_bits: usize, count: usize) -> Vec<BitSet> {
    (0..count)
        .map(|q| synthetic_state(num_bits, q, 57 + q % 7, 11))
        .collect()
}

/// Times `f` (one full query sweep) and returns nanoseconds per call,
/// doubling the repetition count until the measurement window is long
/// enough to trust.
fn time_ns(mut f: impl FnMut() -> usize) -> f64 {
    let mut sink = 0usize;
    for _ in 0..2 {
        sink = sink.wrapping_add(f());
    }
    let mut reps = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 25 || reps >= 1 << 20 {
            std::hint::black_box(sink);
            return elapsed.as_nanos() as f64 / f64::from(reps);
        }
        reps = reps.saturating_mul(2);
    }
}

/// Benchmarks naive vs packed vs bit-sliced (single and batched) candidate
/// scans for each table size.
fn candidate_scan_rows(num_bits: usize, sizes: &[usize]) -> Vec<ScanRow> {
    let queries = synthetic_queries(num_bits, 32);
    let query_refs: Vec<&BitSet> = queries.iter().collect();
    let backend = ScanBackend::detect().name();
    sizes
        .iter()
        .map(|&groups| {
            let table = synthetic_table(num_bits, groups);
            let index = ScanIndex::build(&table);
            let sliced = SlicedScanIndex::build(&table);
            let routed = RoutedScanIndex::build(&table);
            let mut scratch = Vec::new();
            let mut batch_scratch: Vec<Vec<_>> = Vec::new();
            let naive_sweep = time_ns(|| {
                queries
                    .iter()
                    .map(|q| {
                        table
                            .candidates(std::hint::black_box(q), MAX_DISTANCE)
                            .len()
                    })
                    .sum()
            });
            let indexed_sweep = time_ns(|| {
                queries
                    .iter()
                    .map(|q| {
                        index.candidates_into(std::hint::black_box(q), MAX_DISTANCE, &mut scratch);
                        scratch.len()
                    })
                    .sum()
            });
            let bitsliced_sweep = time_ns(|| {
                queries
                    .iter()
                    .map(|q| {
                        sliced.candidates_into(std::hint::black_box(q), MAX_DISTANCE, &mut scratch);
                        scratch.len()
                    })
                    .sum()
            });
            let routed_sweep = time_ns(|| {
                queries
                    .iter()
                    .map(|q| {
                        let _ = routed.candidates_into(
                            std::hint::black_box(q),
                            MAX_DISTANCE,
                            &mut scratch,
                        );
                        scratch.len()
                    })
                    .sum()
            });
            let batch_sweep = time_ns(|| {
                sliced.candidates_batch_into(
                    std::hint::black_box(&query_refs),
                    MAX_DISTANCE,
                    &mut batch_scratch,
                );
                batch_scratch.iter().map(Vec::len).sum()
            });
            ScanRow {
                groups,
                naive_ns: naive_sweep / queries.len() as f64,
                indexed_ns: indexed_sweep / queries.len() as f64,
                bitsliced_ns: bitsliced_sweep / queries.len() as f64,
                batch_ns: batch_sweep / queries.len() as f64,
                routed_ns: routed_sweep / queries.len() as f64,
                backend,
            }
        })
        .collect()
}

/// End-to-end throughput: windows per second replaying testbed segments.
#[derive(Debug, Clone, Copy)]
struct Throughput {
    windows: u64,
    elapsed_ms: f64,
}

impl Throughput {
    fn windows_per_sec(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.windows as f64 * 1000.0 / self.elapsed_ms
        } else {
            0.0
        }
    }
}

/// Telemetry recording cost relative to the no-op sink on the same replay.
#[derive(Debug, Clone, Copy)]
struct TelemetryOverhead {
    noop_ns_per_window: f64,
    recording_ns_per_window: f64,
}

impl TelemetryOverhead {
    fn overhead_pct(&self) -> f64 {
        if self.noop_ns_per_window > 0.0 {
            (self.recording_ns_per_window - self.noop_ns_per_window) / self.noop_ns_per_window
                * 100.0
        } else {
            0.0
        }
    }
}

/// Time-series sampling cost: a recording sink plus a [`TimeSeriesRecorder`]
/// swept once per closed window (the monitor dashboard's cadence), relative
/// to the no-op sink on the same replay.
#[derive(Debug, Clone, Copy)]
struct TimeseriesOverhead {
    noop_ns_per_window: f64,
    sampled_ns_per_window: f64,
}

impl TimeseriesOverhead {
    fn overhead_pct(&self) -> f64 {
        if self.noop_ns_per_window > 0.0 {
            (self.sampled_ns_per_window - self.noop_ns_per_window) / self.noop_ns_per_window * 100.0
        } else {
            0.0
        }
    }
}

/// Fleet causal-tracing cost: the same fleet run with per-stage lineage
/// tracing on vs off. The §5l budget bounds this at 5%.
#[derive(Debug, Clone, Copy)]
struct FleetTracingOverhead {
    homes: usize,
    shards: usize,
    minutes: i64,
    untraced_ms: f64,
    traced_ms: f64,
}

impl FleetTracingOverhead {
    fn overhead_pct(&self) -> f64 {
        if self.untraced_ms > 0.0 {
            (self.traced_ms - self.untraced_ms) / self.untraced_ms * 100.0
        } else {
            0.0
        }
    }
}

/// Replays every planned segment through an engine wired to `telemetry`.
fn replay_segments(td: &TrainedDataset, window: TimeDelta, telemetry: &Telemetry) -> Throughput {
    let mut windows = 0u64;
    let mut elapsed_ms = 0.0f64;
    for segment in td.plan.segments() {
        let mut log = td.sim.log_between(segment.start, segment.end);
        let batched: Vec<_> = log
            .windows_between(segment.start, segment.end, window)
            .map(|w| (w.start, w.end, w.events.to_vec()))
            .collect();
        let mut engine = DiceEngine::with_options(
            &td.model,
            EngineOptions {
                telemetry: telemetry.clone(),
                ..EngineOptions::default()
            },
        );
        let start = Instant::now();
        for (ws, we, events) in &batched {
            let _ = engine.process_window(*ws, *we, std::hint::black_box(events));
        }
        elapsed_ms += start.elapsed().as_secs_f64() * 1000.0;
        windows += batched.len() as u64;
    }
    Throughput {
        windows,
        elapsed_ms,
    }
}

/// Windows per time-series sweep in the sampled replay — the monitor
/// dashboard's cadence (`SAMPLE_WINDOWS` in the `monitor` experiment), so
/// the bench measures the configuration the dashboard actually runs.
const BENCH_SAMPLE_WINDOWS: u64 = 30;

/// Like [`replay_segments`] but with a [`TimeSeriesRecorder`] sweeping the
/// registry on sim time in the monitor dashboard's exact configuration: one
/// sweep per [`BENCH_SAMPLE_WINDOWS`] closed windows, narrowed to the
/// dashboard's watchlist — the heaviest telemetry setup the monitor runs.
fn replay_segments_sampled(
    td: &TrainedDataset,
    window: TimeDelta,
    telemetry: &Telemetry,
) -> Throughput {
    let recorder = telemetry.recorder().expect("recording handle");
    let window_ns = u64::try_from(window.as_secs()).unwrap_or(1) * 1_000_000_000;
    let mut series = TimeSeriesRecorder::new(window_ns * BENCH_SAMPLE_WINDOWS, 256)
        .watch(super::monitor::DASHBOARD_SERIES);
    let mut windows = 0u64;
    let mut elapsed_ms = 0.0f64;
    for segment in td.plan.segments() {
        let mut log = td.sim.log_between(segment.start, segment.end);
        let batched: Vec<_> = log
            .windows_between(segment.start, segment.end, window)
            .map(|w| (w.start, w.end, w.events.to_vec()))
            .collect();
        let mut engine = DiceEngine::with_options(
            &td.model,
            EngineOptions {
                telemetry: telemetry.clone(),
                ..EngineOptions::default()
            },
        );
        let start = Instant::now();
        for (ws, we, events) in &batched {
            let _ = engine.process_window(*ws, *we, std::hint::black_box(events));
            let now_ns = u64::try_from(we.as_secs()).unwrap_or(0) * 1_000_000_000;
            series.maybe_sample(recorder, now_ns);
        }
        elapsed_ms += start.elapsed().as_secs_f64() * 1000.0;
        windows += batched.len() as u64;
    }
    std::hint::black_box(series.len());
    Throughput {
        windows,
        elapsed_ms,
    }
}

/// The median of a sample set (mean of the middle pair for even sizes).
///
/// # Panics
///
/// Panics if `values` is empty.
fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty sample set");
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        f64::midpoint(values[mid - 1], values[mid])
    }
}

/// End-to-end throughput with the no-op sink, plus the recording overhead
/// measured on the same testbed replay.
///
/// Each rep runs all three modes back to back, and the overhead estimates
/// come from the *median of per-rep paired differences*: machine-speed
/// drift (frequency scaling, a noisy neighbor) moves both sides of a pair
/// together and cancels, where independent min-of-N for each mode lets the
/// two minima land in different drift epochs and report the drift itself as
/// overhead.
fn engine_throughput() -> (Throughput, TelemetryOverhead, TimeseriesOverhead) {
    let cfg = RunnerConfig {
        seed: 7,
        trials: 4,
        precompute: TimeDelta::from_hours(48),
        segment_len: TimeDelta::from_hours(6),
        ..RunnerConfig::default()
    };
    let spec = testbed::dice_testbed("bench", 7, TimeDelta::from_hours(80), 12, 1);
    let td = train_scenario(spec, &cfg);
    let window = cfg.dice.window();

    let mut windows = 0u64;
    let mut noop_ms = f64::INFINITY;
    let mut recording_deltas = Vec::new();
    let mut sampled_deltas = Vec::new();
    // One unmeasured warmup triad (page faults, branch predictors), then
    // enough measured reps for the paired median to settle — each rep is a
    // few milliseconds, so 25 of them are cheap.
    for rep in 0..26 {
        let noop = replay_segments(&td, window, &Telemetry::noop());
        let recording = replay_segments(&td, window, &Telemetry::recording());
        let sampled = replay_segments_sampled(&td, window, &Telemetry::recording());
        if rep == 0 {
            continue;
        }
        windows = noop.windows;
        noop_ms = noop_ms.min(noop.elapsed_ms);
        recording_deltas.push(recording.elapsed_ms - noop.elapsed_ms);
        sampled_deltas.push(sampled.elapsed_ms - noop.elapsed_ms);
    }
    let recording_ms = noop_ms + median(&mut recording_deltas).max(0.0);
    let sampled_ms = noop_ms + median(&mut sampled_deltas).max(0.0);
    let per_window = |ms: f64| {
        if windows > 0 {
            ms * 1e6 / windows as f64
        } else {
            0.0
        }
    };
    (
        Throughput {
            windows,
            elapsed_ms: noop_ms,
        },
        TelemetryOverhead {
            noop_ns_per_window: per_window(noop_ms),
            recording_ns_per_window: per_window(recording_ms),
        },
        TimeseriesOverhead {
            noop_ns_per_window: per_window(noop_ms),
            sampled_ns_per_window: per_window(sampled_ms),
        },
    )
}

/// Measures the fleet causal-tracing cost with the same paired-difference
/// discipline as [`engine_throughput`]: each rep runs the untraced and
/// traced fleet back to back (one warmup rep discarded), the untraced
/// baseline is the min across reps, and the traced estimate is that
/// baseline plus the median of per-rep paired differences — drift moves
/// both sides of a pair together and cancels.
fn fleet_tracing_overhead() -> FleetTracingOverhead {
    const HOMES: usize = 256;
    const SHARDS: usize = 4;
    const MINUTES: i64 = 30;
    let cache = dice_fleet::ModelCache::new();
    let mut untraced_ms = f64::INFINITY;
    let mut deltas = Vec::new();
    for rep in 0..26 {
        let untraced = run_fleet_bench_traced(&cache, HOMES, SHARDS, MINUTES, false);
        let traced = run_fleet_bench_traced(&cache, HOMES, SHARDS, MINUTES, true);
        if rep == 0 {
            continue;
        }
        untraced_ms = untraced_ms.min(untraced.elapsed_ms);
        deltas.push(traced.elapsed_ms - untraced.elapsed_ms);
    }
    FleetTracingOverhead {
        homes: HOMES,
        shards: SHARDS,
        minutes: MINUTES,
        untraced_ms,
        traced_ms: untraced_ms + median(&mut deltas).max(0.0),
    }
}

/// Parallel-training throughput: serial vs chunked extraction of an
/// hh102-scale synthetic log.
#[derive(Debug, Clone, Copy)]
struct TrainingBench {
    windows: u64,
    events: usize,
    serial_ms: f64,
    parallel_ms: f64,
    workers: usize,
    available_parallelism: usize,
}

impl TrainingBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            0.0
        }
    }
}

/// An hh102-scale deployment: 33 binary + 79 numeric sensors (270 state
/// bits) and a few actuators.
fn hh102_home() -> (
    DeviceRegistry,
    Vec<SensorId>,
    Vec<SensorId>,
    Vec<ActuatorId>,
) {
    let mut reg = DeviceRegistry::new();
    let binary: Vec<SensorId> = (0..33)
        .map(|i| reg.add_sensor(SensorKind::Motion, format!("m{i}"), Room::Kitchen))
        .collect();
    let numeric: Vec<SensorId> = (0..79)
        .map(|i| reg.add_sensor(SensorKind::Temperature, format!("t{i}"), Room::Kitchen))
        .collect();
    let actuators: Vec<ActuatorId> = (0..4)
        .map(|i| reg.add_actuator(ActuatorKind::SmartBulb, format!("a{i}"), Room::Kitchen))
        .collect();
    (reg, binary, numeric, actuators)
}

/// A deterministic synthetic training log at hh102 width: every minute a
/// handful of binary sensors fire and several numeric sensors report twice,
/// so windows mix all three numeric bit kinds with binary activity.
fn hh102_training_log(
    binary: &[SensorId],
    numeric: &[SensorId],
    actuators: &[ActuatorId],
    hours: i64,
) -> EventLog {
    let mut log = EventLog::new();
    for minute in 0..hours * 60 {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(11);
        let m = minute as usize;
        for k in 0..5 {
            let s = binary[(m * 7 + k * 13) % binary.len()];
            log.push_sensor(SensorReading::new(
                s,
                at + TimeDelta::from_secs(k as i64),
                true.into(),
            ));
        }
        for k in 0..8 {
            let s = numeric[(m * 5 + k * 11) % numeric.len()];
            let v = 18.0 + ((minute + k as i64) % 17) as f64 * 0.5;
            log.push_sensor(SensorReading::new(s, at, v.into()));
            log.push_sensor(SensorReading::new(
                s,
                at + TimeDelta::from_secs(30),
                (v + (minute % 3) as f64 - 1.0).into(),
            ));
        }
        if minute % 7 == 0 {
            let a = actuators[(m / 7) % actuators.len()];
            log.push_actuator(ActuatorEvent::new(a, at, true));
        }
    }
    log
}

/// Measures serial vs `TRAIN_WORKERS`-chunk training on the hh102-scale
/// log (min-of-N, interleaved), asserting the two models are identical.
///
/// The worker-pool width is pinned via `RAYON_NUM_THREADS` for each
/// measurement; on machines with fewer cores than `TRAIN_WORKERS` the
/// recorded `available_parallelism` explains a flat speedup.
fn training_bench(hours: i64) -> TrainingBench {
    const TRAIN_WORKERS: usize = 4;
    let (reg, binary, numeric, actuators) = hh102_home();
    let mut log = hh102_training_log(&binary, &numeric, &actuators, hours);
    log.normalize();
    let events = log.len();
    let config = DiceConfig::default();
    let serial_trainer = ParallelTrainer::new(config.clone()).with_chunks(1);
    let parallel_trainer = ParallelTrainer::new(config).with_chunks(TRAIN_WORKERS);

    let previous = std::env::var("RAYON_NUM_THREADS").ok();
    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    let mut windows = 0;
    for _ in 0..3 {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let start = Instant::now();
        let serial = serial_trainer
            .extract(&reg, &mut log.clone())
            .expect("log is non-empty");
        serial_ms = serial_ms.min(start.elapsed().as_secs_f64() * 1000.0);

        std::env::set_var("RAYON_NUM_THREADS", TRAIN_WORKERS.to_string());
        let start = Instant::now();
        let parallel = parallel_trainer
            .extract(&reg, &mut log.clone())
            .expect("log is non-empty");
        parallel_ms = parallel_ms.min(start.elapsed().as_secs_f64() * 1000.0);

        assert_eq!(serial, parallel, "parallel training must be bit-identical");
        windows = serial.training_windows();
    }
    match previous {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    TrainingBench {
        windows,
        events,
        serial_ms,
        parallel_ms,
        workers: TRAIN_WORKERS,
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Static-analysis wall time: the full `verify_model` pass — container
/// invariants plus the transition-graph dataflow analysis — on an
/// hh102-scale trained model, so analyzer regressions show up in the same
/// baseline as the hot paths it guards.
#[derive(Debug, Clone, Copy)]
struct AnalysisBench {
    groups: usize,
    g2g_entries: usize,
    verify_ms: f64,
    findings: usize,
}

/// Trains an hh102-scale model and times `verify_model` on it (min-of-N).
fn analysis_bench(hours: i64) -> AnalysisBench {
    let (reg, binary, numeric, actuators) = hh102_home();
    let mut log = hh102_training_log(&binary, &numeric, &actuators, hours);
    log.normalize();
    let model = ParallelTrainer::new(DiceConfig::default())
        .extract(&reg, &mut log)
        .expect("log is non-empty");
    let mut findings = 0usize;
    let mut verify_ms = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let report = dice_verify::verify_model(std::hint::black_box(&model));
        verify_ms = verify_ms.min(start.elapsed().as_secs_f64() * 1000.0);
        findings = report.len();
    }
    AnalysisBench {
        groups: model.groups().len(),
        g2g_entries: model.transitions().g2g().num_entries(),
        verify_ms,
        findings,
    }
}

/// Renders the benchmark results as a stable, hand-rolled JSON document
/// (the serde shim does not serialize, so the emitter formats directly).
#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[ScanRow],
    throughput: &Throughput,
    training: &TrainingBench,
    analysis: &AnalysisBench,
    overhead: &TelemetryOverhead,
    timeseries: &TimeseriesOverhead,
    tracing: &FleetTracingOverhead,
    fleet: &[FleetBenchResult],
) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(
        json,
        "  \"candidate_scan\": {{\n    \"num_bits\": {HH102_BITS},\n    \"max_distance\": {MAX_DISTANCE},\n    \"crossover_groups\": {SCAN_CROSSOVER_GROUPS},\n    \"rows\": ["
    );
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"groups\": {}, \"naive_ns_per_scan\": {:.0}, \"scan_index_ns_per_scan\": {:.0}, \"speedup\": {:.2}, \"bitsliced_ns_per_scan\": {:.0}, \"speedup_bitsliced\": {:.2}, \"batch_ns_per_query\": {:.0}, \"speedup_batch\": {:.2}, \"routed_ns_per_scan\": {:.0}, \"speedup_routed\": {:.2}, \"backend\": \"{}\"}}{comma}",
            row.groups,
            row.naive_ns,
            row.indexed_ns,
            row.speedup(),
            row.bitsliced_ns,
            row.speedup_bitsliced(),
            row.batch_ns,
            row.speedup_batch(),
            row.routed_ns,
            row.speedup_routed(),
            row.backend
        );
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"end_to_end\": {{\"dataset\": \"testbed\", \"windows\": {}, \"elapsed_ms\": {:.1}, \"windows_per_sec\": {:.0}}},",
        throughput.windows,
        throughput.elapsed_ms,
        throughput.windows_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"training\": {{\"dataset\": \"hh102-synthetic\", \"num_bits\": {HH102_BITS}, \"windows\": {}, \"events\": {}, \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"workers\": {}, \"available_parallelism\": {}, \"speedup\": {:.2}}},",
        training.windows,
        training.events,
        training.serial_ms,
        training.parallel_ms,
        training.workers,
        training.available_parallelism,
        training.speedup()
    );
    let _ = writeln!(
        json,
        "  \"analysis\": {{\"dataset\": \"hh102-synthetic\", \"groups\": {}, \"g2g_entries\": {}, \"verify_ms\": {:.2}, \"findings\": {}}},",
        analysis.groups, analysis.g2g_entries, analysis.verify_ms, analysis.findings
    );
    let _ = writeln!(
        json,
        "  \"telemetry_overhead\": {{\"noop_ns_per_window\": {:.0}, \"recording_ns_per_window\": {:.0}, \"overhead_pct\": {:.2}}},",
        overhead.noop_ns_per_window,
        overhead.recording_ns_per_window,
        overhead.overhead_pct()
    );
    let _ = writeln!(
        json,
        "  \"timeseries_overhead\": {{\"noop_ns_per_window\": {:.0}, \"sampled_ns_per_window\": {:.0}, \"overhead_pct\": {:.2}}},",
        timeseries.noop_ns_per_window,
        timeseries.sampled_ns_per_window,
        timeseries.overhead_pct()
    );
    let _ = writeln!(
        json,
        "  \"fleet_tracing_overhead\": {{\"homes\": {}, \"shards\": {}, \"minutes\": {}, \"untraced_ms\": {:.1}, \"traced_ms\": {:.1}, \"overhead_pct\": {:.2}}},",
        tracing.homes,
        tracing.shards,
        tracing.minutes,
        tracing.untraced_ms,
        tracing.traced_ms,
        tracing.overhead_pct()
    );
    let _ = writeln!(
        json,
        "  \"fleet\": {{\n    \"floor_plans\": {FLOOR_PLANS},\n    \"rows\": ["
    );
    for (i, r) in fleet.iter().enumerate() {
        let comma = if i + 1 < fleet.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"homes\": {}, \"shards\": {}, \"minutes\": {}, \"windows\": {}, \"elapsed_ms\": {:.1}, \"windows_per_sec\": {:.0}, \"homes_per_sec\": {:.0}, \"alarms\": {}, \"models_resident\": {}}}{comma}",
            r.homes,
            r.shards,
            r.minutes,
            r.windows,
            r.elapsed_ms,
            r.windows_per_sec(),
            r.homes_per_sec(),
            r.alarms,
            r.models_resident
        );
    }
    json.push_str("    ]\n  }\n");
    json.push_str("}\n");
    json
}

/// Runs the benchmark baseline and writes it to `path` (default
/// `BENCH_core.json` in the working directory — the repo root in CI).
///
/// # Errors
///
/// Returns an error when the output file cannot be written.
pub fn bench_json(path: Option<&str>) -> Result<String, String> {
    let path = path.unwrap_or("BENCH_core.json");
    let rows = candidate_scan_rows(HH102_BITS, &[100, 1000, 10_000, 100_000]);
    let (throughput, overhead, timeseries) = engine_throughput();
    let training = training_bench(48);
    let analysis = analysis_bench(48);
    let tracing = fleet_tracing_overhead();
    let fleet = [run_fleet_bench(1000, 0, 60), run_fleet_bench(10_000, 0, 60)];
    let json = render_json(
        &rows,
        &throughput,
        &training,
        &analysis,
        &overhead,
        &timeseries,
        &tracing,
        &fleet,
    );
    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(out, "Benchmark baseline written to {path}");
    let _ = writeln!(
        out,
        "candidate scan ({HH102_BITS} bits, distance <= {MAX_DISTANCE}):"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "  {:>6} groups: naive {:>9.0} ns/scan, indexed {:>9.0} ns/scan ({:.2}x), bitsliced[{}] {:>7.0} ns/scan ({:.2}x), batch {:>7.0} ns/query ({:.2}x), routed {:>7.0} ns/scan ({:.2}x)",
            row.groups,
            row.naive_ns,
            row.indexed_ns,
            row.speedup(),
            row.backend,
            row.bitsliced_ns,
            row.speedup_bitsliced(),
            row.batch_ns,
            row.speedup_batch(),
            row.routed_ns,
            row.speedup_routed()
        );
    }
    let _ = writeln!(
        out,
        "routed crossover: row-major below {SCAN_CROSSOVER_GROUPS} groups, bit-sliced above"
    );
    let _ = writeln!(
        out,
        "end-to-end: {} windows in {:.1} ms ({:.0} windows/s)",
        throughput.windows,
        throughput.elapsed_ms,
        throughput.windows_per_sec()
    );
    let _ = writeln!(
        out,
        "training (hh102 scale, {} windows, {} events): serial {:.1} ms, {} workers {:.1} ms ({:.2}x, {} cores available)",
        training.windows,
        training.events,
        training.serial_ms,
        training.workers,
        training.parallel_ms,
        training.speedup(),
        training.available_parallelism
    );
    let _ = writeln!(
        out,
        "analysis: verify_model over {} groups / {} g2g entries in {:.2} ms ({} finding(s))",
        analysis.groups, analysis.g2g_entries, analysis.verify_ms, analysis.findings
    );
    let _ = writeln!(
        out,
        "telemetry: noop {:.0} ns/window, recording {:.0} ns/window ({:+.2}% overhead)",
        overhead.noop_ns_per_window,
        overhead.recording_ns_per_window,
        overhead.overhead_pct()
    );
    let _ = writeln!(
        out,
        "timeseries: sampled {:.0} ns/window ({:+.2}% over noop, one registry sweep per {BENCH_SAMPLE_WINDOWS} windows)",
        timeseries.sampled_ns_per_window,
        timeseries.overhead_pct()
    );
    let _ = writeln!(
        out,
        "fleet tracing: {} homes / {} shards untraced {:.1} ms, traced {:.1} ms ({:+.2}% overhead, budget <= 5%)",
        tracing.homes,
        tracing.shards,
        tracing.untraced_ms,
        tracing.traced_ms,
        tracing.overhead_pct()
    );
    for r in &fleet {
        let _ = writeln!(
            out,
            "fleet: {} homes / {} shards: {} windows in {:.1} ms ({:.0} windows/sec, {:.0} homes/sec, {} models resident)",
            r.homes,
            r.shards,
            r.windows,
            r.elapsed_ms,
            r.windows_per_sec(),
            r.homes_per_sec(),
            r.models_resident
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_indexed_scans_agree_on_synthetic_tables() {
        let table = synthetic_table(HH102_BITS, 200);
        let index = ScanIndex::build(&table);
        let sliced = SlicedScanIndex::build(&table);
        let routed = RoutedScanIndex::build(&table);
        let queries = synthetic_queries(HH102_BITS, 8);
        for query in &queries {
            assert_eq!(
                table.candidates(query, MAX_DISTANCE),
                index.candidates(query, MAX_DISTANCE)
            );
            assert_eq!(
                table.candidates(query, MAX_DISTANCE),
                sliced.candidates(query, MAX_DISTANCE)
            );
            assert_eq!(
                table.candidates(query, MAX_DISTANCE),
                routed.candidates(query, MAX_DISTANCE)
            );
        }
        let refs: Vec<&BitSet> = queries.iter().collect();
        let mut batch = Vec::new();
        let _ = sliced.candidates_batch_into(&refs, MAX_DISTANCE, &mut batch);
        for (query, got) in queries.iter().zip(&batch) {
            assert_eq!(got, &table.candidates(query, MAX_DISTANCE));
        }
    }

    #[test]
    fn json_renders_all_sections() {
        let rows = vec![ScanRow {
            groups: 100,
            naive_ns: 1000.0,
            indexed_ns: 250.0,
            bitsliced_ns: 50.0,
            batch_ns: 40.0,
            routed_ns: 200.0,
            backend: "avx2",
        }];
        let throughput = Throughput {
            windows: 360,
            elapsed_ms: 12.0,
        };
        let overhead = TelemetryOverhead {
            noop_ns_per_window: 1800.0,
            recording_ns_per_window: 1836.0,
        };
        let training = TrainingBench {
            windows: 2880,
            events: 60_000,
            serial_ms: 90.0,
            parallel_ms: 30.0,
            workers: 4,
            available_parallelism: 8,
        };
        let analysis = AnalysisBench {
            groups: 2000,
            g2g_entries: 5000,
            verify_ms: 1.25,
            findings: 2,
        };
        let timeseries = TimeseriesOverhead {
            noop_ns_per_window: 1800.0,
            sampled_ns_per_window: 1857.0,
        };
        let tracing = FleetTracingOverhead {
            homes: 256,
            shards: 4,
            minutes: 30,
            untraced_ms: 200.0,
            traced_ms: 204.0,
        };
        let fleet = [FleetBenchResult {
            homes: 1000,
            shards: 8,
            minutes: 60,
            frames: 90_000,
            events: 90_000,
            windows: 60_000,
            batched_scans: 120,
            alarms: 63,
            suppressed: 10,
            alarming_homes: 63,
            faulty_homes: 63,
            models_resident: 4,
            backpressure_waits: 0,
            backpressure_wait_ns: 0,
            elapsed_ms: 500.0,
        }];
        let json = render_json(
            &rows,
            &throughput,
            &training,
            &analysis,
            &overhead,
            &timeseries,
            &tracing,
            &fleet,
        );
        assert!(json.contains("\"candidate_scan\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"bitsliced_ns_per_scan\": 50"));
        assert!(json.contains("\"speedup_bitsliced\": 20.00"));
        assert!(json.contains("\"batch_ns_per_query\": 40"));
        assert!(json.contains("\"speedup_batch\": 25.00"));
        assert!(json.contains("\"backend\": \"avx2\""));
        assert!(json.contains("\"windows_per_sec\": 30000"));
        assert!(json.contains("\"training\""));
        assert!(json.contains("\"speedup\": 3.00"));
        assert!(json.contains("\"available_parallelism\": 8"));
        assert!(json.contains("\"analysis\""));
        assert!(json.contains("\"verify_ms\": 1.25"));
        assert!(json.contains("\"telemetry_overhead\""));
        assert!(json.contains("\"overhead_pct\": 2.00"));
        assert!(json.contains("\"timeseries_overhead\""));
        assert!(json.contains("\"sampled_ns_per_window\": 1857"));
        assert!(json.contains("\"overhead_pct\": 3.17"));
        assert!(json.contains("\"routed_ns_per_scan\": 200"));
        assert!(json.contains("\"speedup_routed\": 5.00"));
        assert!(json.contains("\"crossover_groups\""));
        assert!(json.contains("\"fleet_tracing_overhead\""));
        assert!(json.contains("\"untraced_ms\": 200.0"));
        assert!(json.contains("\"traced_ms\": 204.0"));
        assert!(json.contains("\"overhead_pct\": 2.00"));
        assert!(json.contains("\"fleet\""));
        assert!(json.contains("\"homes\": 1000"));
        assert!(json.contains("\"windows_per_sec\": 120000"));
        assert!(json.contains("\"homes_per_sec\": 2000"));
        assert!(json.contains("\"models_resident\": 4"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    #[ignore = "measurement probe"]
    fn crossover_probe() {
        for row in candidate_scan_rows(HH102_BITS, &[50, 100, 200, 300, 400, 600, 800, 1200]) {
            println!(
                "{:>5} groups: rows {:.0} ns, sliced {:.0} ns, routed {:.0} ns",
                row.groups, row.indexed_ns, row.bitsliced_ns, row.routed_ns
            );
        }
    }

    #[test]
    fn hh102_training_log_is_hh102_wide_and_sorted() {
        let (reg, binary, numeric, actuators) = hh102_home();
        assert_eq!(reg.num_sensors(), 33 + 79);
        let mut log = hh102_training_log(&binary, &numeric, &actuators, 1);
        assert!(!log.is_empty());
        let events = log.events();
        assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));
    }
}
