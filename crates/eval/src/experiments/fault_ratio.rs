//! Figure 5.4: ratio of faults detected by the correlation check vs the
//! transition check, per fault type.

use std::collections::BTreeMap;

use dice_faults::FaultType;

use super::full::FullEvaluation;
use crate::report::{pct, render_table};
use crate::runner::CheckAttribution;

/// Aggregates the per-fault-type check attribution across datasets.
pub fn aggregate_attribution(full: &FullEvaluation) -> BTreeMap<FaultType, CheckAttribution> {
    let mut totals: BTreeMap<FaultType, CheckAttribution> = BTreeMap::new();
    for eval in &full.evals {
        for (&fault, attr) in &eval.by_fault_type {
            let entry = totals.entry(fault).or_default();
            entry.by_correlation += attr.by_correlation;
            entry.by_transition += attr.by_transition;
            entry.missed += attr.missed;
        }
    }
    totals
}

/// Formats Figure 5.4 from a completed evaluation.
pub fn fig_5_4(full: &FullEvaluation) -> String {
    let totals = aggregate_attribution(full);
    let rows: Vec<Vec<String>> = totals
        .iter()
        .map(|(fault, attr)| {
            let detected = attr.by_correlation + attr.by_transition;
            vec![
                fault.to_string(),
                attr.by_correlation.to_string(),
                attr.by_transition.to_string(),
                attr.missed.to_string(),
                if detected == 0 {
                    "-".into()
                } else {
                    pct(attr.correlation_share())
                },
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 5.4: Ratio of Detection by Correlation Check and by Transition Check\n",
    );
    out.push_str(&render_table(
        &[
            "fault type",
            "correlation",
            "transition",
            "missed",
            "corr. share",
        ],
        &rows,
    ));
    out.push_str(
        "paper: all fail-stop faults were caught by the correlation check, while most\n\
         stuck-at faults needed the transition check\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DetectionCounts, IdentificationCounts, LatencyStats};
    use crate::runner::DatasetEvaluation;
    use dice_core::CostProfile;

    fn eval_with(fault: FaultType, attr: CheckAttribution) -> DatasetEvaluation {
        let mut by_fault_type = BTreeMap::new();
        by_fault_type.insert(fault, attr);
        DatasetEvaluation {
            name: "x".into(),
            detection: DetectionCounts::default(),
            identification: IdentificationCounts::default(),
            detect_latency: LatencyStats::new(),
            identify_latency: LatencyStats::new(),
            detect_latency_by_check: Default::default(),
            by_fault_type,
            cost: CostProfile::default(),
            correlation_degree: 0.0,
            num_groups: 0,
            num_sensors: 0,
        }
    }

    #[test]
    fn aggregation_sums_across_datasets() {
        let a = eval_with(
            FaultType::FailStop,
            CheckAttribution {
                by_correlation: 3,
                by_transition: 0,
                missed: 1,
            },
        );
        let b = eval_with(
            FaultType::FailStop,
            CheckAttribution {
                by_correlation: 2,
                by_transition: 1,
                missed: 0,
            },
        );
        let full = FullEvaluation { evals: vec![a, b] };
        let totals = aggregate_attribution(&full);
        let fs = &totals[&FaultType::FailStop];
        assert_eq!(fs.by_correlation, 5);
        assert_eq!(fs.by_transition, 1);
        assert_eq!(fs.missed, 1);
        assert_eq!(fs.total(), 7);
    }

    #[test]
    fn figure_renders_share_column() {
        let full = FullEvaluation {
            evals: vec![eval_with(
                FaultType::StuckAt,
                CheckAttribution {
                    by_correlation: 1,
                    by_transition: 3,
                    missed: 0,
                },
            )],
        };
        let text = fig_5_4(&full);
        assert!(text.contains("stuck-at"));
        assert!(text.contains("25.0%"));
    }
}
