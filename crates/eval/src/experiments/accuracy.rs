//! Figure 5.1: detection and identification accuracy of the ten datasets.

use super::full::FullEvaluation;
use crate::report::{pct, render_table};

/// Formats Figure 5.1 (a: detection accuracy, b: identification accuracy)
/// from a completed evaluation.
pub fn fig_5_1(full: &FullEvaluation) -> String {
    let rows: Vec<Vec<String>> = full
        .evals
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                pct(e.detection.precision()),
                pct(e.detection.recall()),
                pct(e.identification.precision()),
                pct(e.identification.recall()),
            ]
        })
        .collect();
    let mut out =
        String::from("Figure 5.1: Detection and Identification Accuracy of the Ten Datasets\n");
    out.push_str(&render_table(
        &[
            "dataset",
            "det. precision",
            "det. recall",
            "id. precision",
            "id. recall",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "average: detection {} precision / {} recall; identification {} precision / {} recall\n",
        pct(full.avg_detection_precision()),
        pct(full.avg_detection_recall()),
        pct(full.avg_identification_precision()),
        pct(full.avg_identification_recall()),
    ));
    out.push_str("paper:   detection 98.2% precision / 97.9% recall; identification 94.9% precision / 92.5% recall\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DetectionCounts, IdentificationCounts, LatencyStats};
    use crate::runner::DatasetEvaluation;
    use dice_core::CostProfile;

    fn dummy_eval(name: &str) -> DatasetEvaluation {
        let mut detection = DetectionCounts::default();
        detection.record_faulty(true);
        detection.record_faultless(false);
        let mut identification = IdentificationCounts::default();
        identification.record(1, 0, 0);
        DatasetEvaluation {
            name: name.into(),
            detection,
            identification,
            detect_latency: LatencyStats::new(),
            identify_latency: LatencyStats::new(),
            detect_latency_by_check: Default::default(),
            by_fault_type: Default::default(),
            cost: CostProfile::default(),
            correlation_degree: 1.0,
            num_groups: 1,
            num_sensors: 1,
        }
    }

    #[test]
    fn figure_formats_rows_and_averages() {
        let full = FullEvaluation {
            evals: vec![dummy_eval("houseA"), dummy_eval("houseB")],
        };
        let text = fig_5_1(&full);
        assert!(text.contains("houseA"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("average"));
        assert!(text.contains("paper"));
    }
}
