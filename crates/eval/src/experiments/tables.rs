//! Static and dataset-statistics tables: Table 2.1 and Table 4.1.

use dice_datasets::{DatasetId, DatasetStats};

use crate::report::render_table;

/// Table 2.1: the requirements analysis of heterogeneous approaches.
///
/// This table is a literature analysis, not a measurement; it is reproduced
/// verbatim so `dice-repro` regenerates every table of the paper.
pub fn table_2_1() -> String {
    let rows = vec![
        vec![
            "SMART [5]".into(),
            "x".into(),
            "x".into(),
            "x".into(),
            "x".into(),
        ],
        vec![
            "FailureSense [7]".into(),
            "v".into(),
            "x".into(),
            "x".into(),
            "-".into(),
        ],
        vec![
            "IDEA [6]".into(),
            "x".into(),
            "x".into(),
            "v".into(),
            "x".into(),
        ],
        vec![
            "CLEAN [8]".into(),
            "x".into(),
            "x".into(),
            "v".into(),
            "-".into(),
        ],
        vec![
            "6thSense [9]".into(),
            "~".into(),
            "x".into(),
            "x".into(),
            "-".into(),
        ],
        vec![
            "DICE".into(),
            "v".into(),
            "v".into(),
            "v".into(),
            "v".into(),
        ],
    ];
    let mut out = String::from("Table 2.1: Analysis of Heterogeneous Approach\n");
    out.push_str(&render_table(
        &[
            "approach",
            "Usability",
            "Generality",
            "Feasibility",
            "Promptness",
        ],
        &rows,
    ));
    out.push_str("(v = satisfied, x = not satisfied, ~ = partial, - = not evaluated)\n");
    out
}

/// Table 4.1: the dataset inventory (hours, sensor classes, actuators,
/// activities), computed from the synthesized datasets themselves.
pub fn table_4_1(seed: u64) -> String {
    let rows: Vec<Vec<String>> = DatasetId::all()
        .into_iter()
        .map(|id| {
            let stats = DatasetStats::of_dataset(id, seed);
            vec![
                stats.name,
                stats.hours.to_string(),
                stats.binary_sensors.to_string(),
                stats.numeric_sensors.to_string(),
                stats.actuators.to_string(),
                stats.activities.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Table 4.1: Datasets\n");
    out.push_str(&render_table(
        &[
            "dataset",
            "Hours",
            "Binary",
            "Numeric",
            "Actuators",
            "Activities",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_1_lists_all_six_approaches() {
        let t = table_2_1();
        for name in ["SMART", "FailureSense", "IDEA", "CLEAN", "6thSense", "DICE"] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table_4_1_matches_paper_counts() {
        let t = table_4_1(1);
        assert!(t.contains("houseA"));
        assert!(t.contains("576"));
        assert!(t.contains("D_hh102"));
        assert!(t.contains("1500"));
        assert_eq!(t.lines().count(), 13); // title + header + rule + 10 rows
    }
}
