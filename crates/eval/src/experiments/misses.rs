//! Missed-fault diagnostics: which injected faults go undetected.

use dice_core::{Detector, PrevWindow, WindowObservation};
use dice_datasets::DatasetId;
use dice_faults::{FaultInjector, FaultPlanner};
use dice_types::EventLog;

use crate::runner::{batched_window_scans, run_faulty_segment, train_dataset, RunnerConfig};

/// Counts violating windows in a log range (detector-only, no engine).
///
/// Binarizes the whole range first so the candidate scans and nearest-group
/// fallbacks run through the bit-sliced index's batch entry points; only the
/// prev-chained transition check stays sequential.
fn count_violations(
    td: &crate::runner::TrainedDataset,
    log: &mut EventLog,
    range: dice_datasets::TimeRange,
) -> usize {
    let detector = Detector::new(&td.model);
    let observations: Vec<WindowObservation> = log
        .windows_between(range.start, range.end, td.model.config().window())
        .map(|w| td.model.binarizer().binarize(w.start, w.end, w.events))
        .collect();
    let exact: Vec<_> = observations
        .iter()
        .map(|obs| detector.correlation_check(obs))
        .collect();
    let scans = batched_window_scans(&td.model, &observations, &exact);

    let mut prev: Option<PrevWindow> = None;
    let mut violations = 0;
    for ((obs, exact_group), scan) in observations.iter().zip(&exact).zip(&scans) {
        let (group, exact_hit, violation) = match exact_group {
            Some(group) => {
                let cases = prev
                    .as_ref()
                    .map_or_else(Vec::new, |p| detector.transition_check(p, *group, obs));
                (*group, true, !cases.is_empty())
            }
            None => (
                scan.and_then(|s| s.standin)
                    .unwrap_or(dice_types::GroupId::new(0)),
                false,
                true,
            ),
        };
        if violation {
            violations += 1;
        }
        prev = Some(PrevWindow {
            group,
            exact: exact_hit,
            activated_actuators: obs.activated_actuators.clone(),
        });
    }
    violations
}

/// Replays faulty segments and describes every miss.
///
/// # Errors
///
/// Returns an error for unknown dataset names.
pub fn misses(dataset: &str, trials: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig::default();
    let td = train_dataset(id, &cfg);
    let registry = td.sim.registry();
    let planner = FaultPlanner::new(cfg.seed ^ 0xFA17);
    let injector = FaultInjector::new(cfg.seed ^ 0x1213);
    let mut out = String::new();
    let mut missed = 0u64;
    for trial in 0..trials {
        let segment = td.plan.segment_for_trial(trial);
        let clean = td.sim.log_between(segment.start, segment.end);
        let fault = planner.sensor_fault(trial, registry, segment.start, segment.len());
        let faulty = injector.inject_sensor(clean, registry, &fault);
        let outcome = run_faulty_segment(&td, faulty, segment, fault.onset);
        if outcome.report.is_none() {
            missed += 1;
            let spec = registry.sensor(fault.sensor);
            let clean = td.sim.log_between(segment.start, segment.end);
            let mut refaulted = injector.inject_sensor(clean, registry, &fault);
            let violations = count_violations(&td, &mut refaulted, segment);
            out.push_str(&format!(
                "trial {trial}: MISSED {} on {} ({} in {}), onset {} (hour {}), {} violating windows\n",
                fault.fault,
                fault.sensor,
                spec.kind(),
                spec.room(),
                fault.onset,
                fault.onset.hour_of_day(),
                violations,
            ));
        }
    }
    out.push_str(&format!("{missed}/{trials} faults missed\n"));
    Ok(out)
}
