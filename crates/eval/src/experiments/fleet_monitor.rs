//! The `fleet-monitor` command: a terminal frame of fleet-wide causal
//! tracing — per-shard latency attribution columns, back-pressure and
//! queue-depth counters, lineage-stamped alarms, and the health-rule
//! table (§5l).
//!
//! Two modes share one code path, mirroring the single-home `monitor`:
//!
//! - **live** (default): the threaded fleet service under the wall
//!   [`TraceClock`], so the stage quantiles are real latencies.
//! - **`--once`**: the feed is preloaded and the shards drain sequentially
//!   under a frozen manual clock, so every counter, sketch, depth gauge,
//!   and lineage record is deterministic and the rendered frame is
//!   byte-stable across runs (asserted by a tier-1 test). Health rules
//!   over wall-clock or load-dependent inputs report `status: n/a`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use dice_fleet::{Fleet, FleetConfig, FleetRun, ModelCache, TraceClock};
use dice_telemetry::{
    evaluate_health, shard_label, standard_rules, HealthStatus, SketchFamilyChild, Snapshot,
    Telemetry,
};
use dice_types::{Event, SensorReading, TimeDelta, Timestamp};

use super::fleet_bench::{plan_devices, plan_models, FAULTY_RESIDUE, FLOOR_PLANS};
use super::monitor::sparkline;

/// Parsed `fleet-monitor` arguments.
struct FleetMonitorArgs {
    homes: usize,
    shards: usize,
    minutes: i64,
    once: bool,
    health: bool,
}

fn parse_args(args: &[&str]) -> Result<FleetMonitorArgs, String> {
    let mut once = false;
    let mut health = false;
    let mut positional = Vec::new();
    for &arg in args {
        match arg {
            "--once" => once = true,
            "--health" => health = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown fleet-monitor flag {flag:?}"));
            }
            _ => positional.push(arg),
        }
    }
    let parse = |i: usize, what: &str, default: i64| -> Result<i64, String> {
        positional.get(i).map_or(Ok(default), |v| {
            v.parse().map_err(|_| format!("bad {what} {v:?}"))
        })
    };
    let homes = parse(0, "home count", 96)?;
    let shards = parse(1, "shard count", 4)?;
    let minutes = parse(2, "minute count", 30)?;
    if homes <= 0 || shards <= 0 || minutes <= 0 {
        return Err("fleet-monitor needs positive homes, shards, and minutes".into());
    }
    Ok(FleetMonitorArgs {
        homes: usize::try_from(homes).map_err(|_| "home count overflows")?,
        shards: usize::try_from(shards).map_err(|_| "shard count overflows")?,
        minutes,
        once,
        health,
    })
}

/// Runs the synthetic fleet (the `fleet-bench` fixture: shared floor
/// plans, a fixed faulty residue class) and returns the finished run plus
/// its telemetry snapshot.
fn run_fleet(args: &FleetMonitorArgs, telemetry: &Telemetry) -> FleetRun {
    let clock = if args.once {
        TraceClock::manual().0
    } else {
        TraceClock::wall()
    };
    let config = FleetConfig {
        shards: args.shards,
        queue_capacity: 32,
        frames_per_batch: 16,
        batch_windows: 32,
        telemetry: telemetry.clone(),
        clock,
        ..FleetConfig::default()
    };
    let cache = ModelCache::new();
    let models = plan_models(&cache);
    let plan_sensors: Vec<_> = (0..FLOOR_PLANS).map(|k| plan_devices(k).1).collect();
    let mut fleet = Fleet::new(config);
    for h in 0..args.homes {
        fleet.register_home(h as u32, Arc::clone(&models[h % FLOOR_PLANS]));
    }
    let from = Timestamp::from_mins(0);
    let to = Timestamp::from_mins(args.minutes);
    let homes = args.homes as u32;
    let minutes = args.minutes;
    let feed = move |sender: &mut dice_fleet::FleetSender<'_>| {
        for minute in 0..minutes {
            for h in 0..homes {
                let sensors = &plan_sensors[h as usize % FLOOR_PLANS];
                let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5 + i64::from(h % 7));
                if minute % 2 == 0 {
                    let reading = SensorReading::new(sensors[0], at, true.into());
                    sender.send(h, &Event::Sensor(reading));
                    if h % 16 != FAULTY_RESIDUE {
                        let partner = SensorReading::new(sensors[1], at, true.into());
                        sender.send(h, &Event::Sensor(partner));
                    }
                } else {
                    let idx = 2 + (minute as usize / 2) % (sensors.len() - 2);
                    let reading = SensorReading::new(sensors[idx], at, true.into());
                    sender.send(h, &Event::Sensor(reading));
                }
            }
        }
    };
    if args.once {
        fleet.run_preloaded(from, to, feed)
    } else {
        fleet.run(from, to, feed)
    }
}

/// A labeled counter/gauge family flattened to `label -> value`.
fn family_map<'a>(snapshot: &'a Snapshot, name: &str) -> HashMap<&'a str, i128> {
    snapshot
        .family_series(name)
        .unwrap_or(&[])
        .iter()
        .filter_map(|(labels, value)| labels.first().map(|l| (l.as_str(), *value)))
        .collect()
}

/// A labeled sketch family flattened to `label -> child`.
fn sketch_map<'a>(snapshot: &'a Snapshot, name: &str) -> HashMap<&'a str, &'a SketchFamilyChild> {
    snapshot
        .sketch_family(name)
        .unwrap_or(&[])
        .iter()
        .filter_map(|child| child.values.first().map(|l| (l.as_str(), child)))
        .collect()
}

/// One shard's `p50/p99` cell in microseconds, `-` when nothing recorded.
fn quantile_cell(child: Option<&&SketchFamilyChild>) -> String {
    match child {
        Some(c) if c.count > 0 => format!("{}/{}", c.p50 / 1_000, c.p99 / 1_000),
        _ => "-".to_string(),
    }
}

/// Renders the per-shard attribution table from the snapshot's labeled
/// families: queue depth high-water, back-pressure, and the stage
/// latency quantiles recorded under each `shard="sN"` label.
fn render_shards(out: &mut String, snapshot: &Snapshot, shards: usize) {
    let windows = family_map(snapshot, "dice_fleet_shard_windows_total");
    let depth = family_map(snapshot, "dice_fleet_shard_depth");
    let waits = family_map(snapshot, "dice_fleet_shard_backpressure_waits_total");
    let wait_ns = family_map(snapshot, "dice_fleet_shard_backpressure_wait_ns_total");
    let queue_wait = sketch_map(snapshot, "dice_fleet_stage_queue_wait_ns");
    let scan = sketch_map(snapshot, "dice_fleet_stage_scan_ns");
    let verdict = sketch_map(snapshot, "dice_fleet_stage_verdict_ns");

    let loads: Vec<f64> = (0..shards)
        .map(|s| {
            #[allow(clippy::cast_precision_loss)]
            let load = windows.get(shard_label(s).as_str()).copied().unwrap_or(0) as f64;
            load
        })
        .collect();
    let _ = writeln!(
        out,
        "  shard load     {}  windows per shard",
        sparkline(&loads)
    );
    let _ = writeln!(
        out,
        "  {:<6} {:>8} {:>6} {:>9} {:>9}  {:>14} {:>13} {:>13}",
        "shard",
        "windows",
        "depth",
        "bp-waits",
        "bp-ms",
        "queue p50/p99",
        "scan p50/p99",
        "verd p50/p99"
    );
    for s in 0..shards {
        let label = shard_label(s);
        let l = label.as_str();
        let get = |m: &HashMap<&str, i128>| m.get(l).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:<6} {:>8} {:>6} {:>9} {:>9.1}  {:>14} {:>13} {:>13}",
            label,
            get(&windows),
            get(&depth),
            get(&waits),
            get(&wait_ns) as f64 / 1e6,
            quantile_cell(queue_wait.get(l)),
            quantile_cell(scan.get(l)),
            quantile_cell(verdict.get(l)),
        );
    }
    let _ = writeln!(
        out,
        "  (stage quantiles in us from per-shard latency sketches; depth is each queue's high-water mark)"
    );
}

/// Streams the synthetic fleet fixture through the sharded service and
/// renders one fleet-wide tracing frame: totals, the per-shard
/// attribution table, lineage-stamped alarms, and (with `--health`) the
/// health-rule table. With `--once` the frame is byte-stable.
///
/// # Errors
///
/// Returns an error for bad flags or non-positive sizes.
pub fn fleet_monitor(args: &[&str]) -> Result<String, String> {
    let args = parse_args(args)?;
    let telemetry = Telemetry::recording();
    let run = run_fleet(&args, &telemetry);
    let snapshot = telemetry.snapshot().expect("recording handle");
    let recorder = telemetry.recorder().expect("recording handle");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "dice fleet-monitor: {} homes over {} shards, {} simulated minutes{}",
        run.stats.homes,
        run.stats.shards,
        args.minutes,
        if args.once {
            " (one deterministic frame)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "  ingest: {} frames, {} events, {} backpressure waits ({:.1} ms blocked)",
        run.stats.frames,
        run.stats.events,
        run.stats.backpressure_waits,
        run.stats.backpressure_wait_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  detect: {} windows closed, {} batched scans, {} alarms delivered, {} suppressed",
        run.stats.windows, run.stats.batched_scans, run.stats.alarms, run.stats.suppressed
    );
    render_shards(&mut out, &snapshot, run.stats.shards);

    // Alarms with their causal stamps: which shard served the home, and
    // where the triggering batch's wall-clock went, stage by stage.
    for home in &run.alarms {
        for report in &home.reports {
            match report.lineage {
                Some(stamp) => {
                    let _ = writeln!(out, "ALARM home {} [{stamp}]: {}", home.home, report);
                }
                None => {
                    let _ = writeln!(out, "ALARM home {} [untraced]: {}", home.home, report);
                }
            }
        }
    }

    if args.health {
        let report = evaluate_health(&standard_rules(), &snapshot, args.once);
        report.publish(&recorder.metrics.health.status);
        out.push_str(&report.render_text());
        if report.overall == HealthStatus::Crit {
            out.push_str("CRITICAL: at least one health rule fired at crit\n");
        }
    }
    let _ = writeln!(
        out,
        "processed {} windows / {} events across {} shards; {} alarm(s)",
        run.stats.windows, run.stats.events, run.stats.shards, run.stats.alarms
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_and_validate() {
        let args = parse_args(&["--once", "--health"]).unwrap();
        assert!(args.once && args.health);
        assert_eq!((args.homes, args.shards, args.minutes), (96, 4, 30));
        let args = parse_args(&["32", "2", "10"]).unwrap();
        assert_eq!((args.homes, args.shards, args.minutes), (32, 2, 10));
        assert!(parse_args(&["--bogus"]).is_err());
        assert!(parse_args(&["0"]).is_err());
        assert!(parse_args(&["8", "-1"]).is_err());
    }

    #[test]
    fn once_frames_are_byte_stable_and_show_per_shard_columns() {
        let a = fleet_monitor(&["--once", "--health", "32", "2", "20"]).unwrap();
        let b = fleet_monitor(&["--once", "--health", "32", "2", "20"]).unwrap();
        assert_eq!(a, b, "--once frames must be byte-stable");
        assert!(a.contains("one deterministic frame"));
        assert!(a.contains("\n  s0 "), "per-shard rows must render");
        assert!(a.contains("\n  s1 "));
        assert!(a.contains("queue p50/p99"));
        assert!(
            a.contains("ALARM home 3 ["),
            "faulty residue home must alarm"
        );
        assert!(a.contains("lineage "), "alarms must carry lineage stamps");
        assert!(a.contains("health"), "--health must render the rule table");
        assert!(!a.contains("CRITICAL"), "healthy fixture must not go crit");
    }
}
