//! Timing figures and tables: Figure 5.2 (detection & identification time),
//! Table 5.1 (per-check detection time), and Figure 5.3 (computation time).

use super::full::FullEvaluation;
use crate::report::render_table;

fn fmt_mins(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "-".into(),
    }
}

/// Figure 5.2: average detection and identification time per dataset, in
/// simulated minutes since the fault onset.
pub fn fig_5_2(full: &FullEvaluation) -> String {
    let rows: Vec<Vec<String>> = full
        .evals
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                fmt_mins(e.detect_latency.mean()),
                fmt_mins(e.identify_latency.mean()),
                fmt_mins(e.detect_latency.max()),
                fmt_mins(e.identify_latency.max()),
            ]
        })
        .collect();
    let mut out = String::from("Figure 5.2: Detection and Identification Time (minutes)\n");
    out.push_str(&render_table(
        &[
            "dataset",
            "detect mean",
            "identify mean",
            "detect max",
            "identify max",
        ],
        &rows,
    ));
    out.push_str(
        "paper: all datasets detect within ~10 min and identify within ~30 min except houseA\n\
         (21.9 / 72.8 min); prior art's fastest reported detection was 12 hours\n",
    );
    out
}

/// Table 5.1: detection time split by the check that fired, for the three
/// ISLA houses — the transition check detects roughly three times slower.
pub fn table_5_1(full: &FullEvaluation) -> String {
    let mut rows = Vec::new();
    for name in ["houseA", "houseB", "houseC"] {
        if let Some(e) = full.by_name(name) {
            let corr = e
                .detect_latency_by_check
                .get("correlation")
                .and_then(crate::metrics::LatencyStats::mean);
            let trans = e
                .detect_latency_by_check
                .get("transition")
                .and_then(crate::metrics::LatencyStats::mean);
            rows.push(vec![name.to_string(), fmt_mins(corr), fmt_mins(trans)]);
        }
    }
    let mut out = String::from(
        "Table 5.1: Detection Time of the Correlation Check and Transition Check (minutes)\n",
    );
    out.push_str(&render_table(
        &["dataset", "correlation check", "transition check"],
        &rows,
    ));
    out.push_str(
        "paper: houseA 10.5/29.0, houseB 2.8/5.3, houseC 3.4/9.9 (transition ~3x slower)\n",
    );
    out
}

/// Figure 5.3: wall-clock computation time per one-minute window, split into
/// correlation check, transition check, and identification.
pub fn fig_5_3(full: &FullEvaluation) -> String {
    let rows: Vec<Vec<String>> = full
        .evals
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                format!("{:.4}", e.cost.correlation_ms_per_window()),
                format!("{:.4}", e.cost.transition_ms_per_window()),
                format!("{:.4}", e.cost.identification_ms_per_window()),
                format!("{:.4}", e.cost.total_ms_per_window()),
                e.num_sensors.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Figure 5.3: Computation Time per Window (milliseconds)\n");
    out.push_str(&render_table(
        &[
            "dataset",
            "correlation",
            "transition",
            "identification",
            "total",
            "sensors",
        ],
        &rows,
    ));
    out.push_str(
        "paper: the correlation check dominates and grows with the number of bits;\n\
         even hh102 (112 sensors) stays below 50 ms per one-minute window\n",
    );
    out
}

/// Table 5.2: correlation degree and number of sensors per dataset. The five
/// `D_*` testbed rows share one deployment, so they are reported under the
/// single `DICE` column like the paper does.
pub fn table_5_2(full: &FullEvaluation) -> String {
    let mut rows = Vec::new();
    for e in &full.evals {
        if e.name.starts_with("D_") && e.name != "D_houseA" {
            continue; // paper collapses the testbed rows into one
        }
        let label = if e.name == "D_houseA" {
            "DICE".to_string()
        } else {
            e.name.clone()
        };
        rows.push(vec![
            label,
            format!("{:.1}", e.correlation_degree),
            e.num_sensors.to_string(),
            e.num_groups.to_string(),
        ]);
    }
    let mut out =
        String::from("Table 5.2: Correlation Degree and the Number of Sensors of the Datasets\n");
    out.push_str(&render_table(
        &["dataset", "correlation degree", "sensors", "groups"],
        &rows,
    ));
    out.push_str("paper: houseA 1.4, houseB 2.9, houseC 4.6, twor 7.2, hh102 3.8, DICE 10.6\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{DetectionCounts, IdentificationCounts, LatencyStats};
    use crate::runner::DatasetEvaluation;
    use dice_core::CostProfile;

    fn dummy(name: &str) -> DatasetEvaluation {
        let mut detect_latency = LatencyStats::new();
        detect_latency.push(5.0);
        let mut identify_latency = LatencyStats::new();
        identify_latency.push(12.0);
        let mut by_check = std::collections::BTreeMap::new();
        let mut corr = LatencyStats::new();
        corr.push(3.0);
        by_check.insert("correlation", corr);
        DatasetEvaluation {
            name: name.into(),
            detection: DetectionCounts::default(),
            identification: IdentificationCounts::default(),
            detect_latency,
            identify_latency,
            detect_latency_by_check: by_check,
            by_fault_type: Default::default(),
            cost: CostProfile {
                correlation_ns: 2_000_000,
                transition_ns: 0,
                identification_ns: 0,
                windows: 2,
            },
            correlation_degree: 1.4,
            num_groups: 10,
            num_sensors: 14,
        }
    }

    fn full() -> FullEvaluation {
        FullEvaluation {
            evals: vec![dummy("houseA"), dummy("D_houseA"), dummy("D_twor")],
        }
    }

    #[test]
    fn fig_5_2_formats_latencies() {
        let text = fig_5_2(&full());
        assert!(text.contains("houseA"));
        assert!(text.contains("5.0"));
        assert!(text.contains("12.0"));
    }

    #[test]
    fn table_5_1_reports_per_check_means() {
        let text = table_5_1(&full());
        assert!(text.contains("houseA"));
        assert!(text.contains("3.0"));
        assert!(text.contains('-'), "missing transition column shows a dash");
    }

    #[test]
    fn fig_5_3_reports_cost_in_ms() {
        let text = fig_5_3(&full());
        assert!(text.contains("1.0000")); // 2ms over 2 windows
    }

    #[test]
    fn table_5_2_collapses_testbed_rows() {
        let text = table_5_2(&full());
        assert!(text.contains("DICE"));
        assert!(!text.contains("D_houseA"));
        assert!(!text.contains("D_twor"));
    }
}
