//! Decision-trace tooling for `dice-repro`: the `explain` renderer and the
//! `trace-check` round-trip validator.
//!
//! CI's telemetry-smoke job runs `dice-repro --trace out.jsonl ...`, then
//! `dice-repro trace-check out.jsonl` (parse → re-serialize must be
//! byte-stable) and `dice-repro explain out.jsonl` (render the first
//! alarm's why-was-this-flagged narrative, which must name the implicated
//! device).
//
// lint-src: allow-file(wall-clock) — the Instant read times the round-trip
// for the summary line only.

use std::time::Instant;

use dice_core::{parse_trace_jsonl, render_explain, write_trace_jsonl, TraceVerdict};
use dice_telemetry::{saturating_ns, Telemetry};

/// Renders a why-was-this-flagged narrative from a JSONL trace file.
/// Explains `window` when given, otherwise the first reported trace (then
/// the first violation, then the first trace).
///
/// # Errors
///
/// Returns an I/O, parse, or selection error.
pub fn explain(path: &str, window: Option<u64>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let log = parse_trace_jsonl(&text)?;
    let started = Instant::now();
    let rendered = render_explain(&log, window)?;
    if let Some(rec) = Telemetry::global().recorder() {
        rec.metrics
            .trace
            .explain_render_ns
            .record(saturating_ns(started.elapsed().as_nanos()));
    }
    Ok(rendered)
}

/// Validates a JSONL trace file: parses it, re-serializes it, and requires
/// the result to be byte-identical to the input. Summarizes the stream.
///
/// # Errors
///
/// Returns an I/O or parse error, or a message when the round trip is not
/// byte-stable.
pub fn trace_check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let log = parse_trace_jsonl(&text)?;
    let rewritten = write_trace_jsonl(&log);
    if rewritten != text {
        return Err(format!(
            "{path}: round trip is not byte-stable ({} bytes in, {} bytes out)",
            text.len(),
            rewritten.len()
        ));
    }
    let violations = log
        .traces
        .iter()
        .filter(|t| t.verdict != TraceVerdict::Normal)
        .count();
    let reported = log.traces.iter().filter(|t| t.reported).count();
    Ok(format!(
        "{path}: valid dice-trace jsonl (schema {schema}), byte-stable round trip\n\
         {bits} state bits over {sensors} sensors; {traces} traces, \
         {violations} violations, {reported} reported",
        schema = dice_core::TRACE_SCHEMA,
        bits = log.header.num_bits,
        sensors = log.header.spans.len(),
        traces = log.traces.len(),
        violations = violations,
        reported = reported,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_core::{
        ContextExtractor, DiceConfig, DiceEngine, EngineOptions, JsonlTraceWriter, TraceOptions,
    };
    use dice_types::{
        DeviceRegistry, EventLog, Room, SensorKind, SensorReading, TimeDelta, Timestamp,
    };

    /// Trains the three-sensor home from the engine tests, replays an
    /// s1-fail-stop log with tracing on, and exercises both commands on the
    /// resulting file.
    #[test]
    fn explain_and_trace_check_work_end_to_end() {
        let mut reg = DeviceRegistry::new();
        let s0 = reg.add_sensor(SensorKind::Motion, "s0", Room::Kitchen);
        let s1 = reg.add_sensor(SensorKind::Motion, "s1", Room::Kitchen);
        let s2 = reg.add_sensor(SensorKind::Motion, "s2", Room::Bedroom);
        let mut training = EventLog::new();
        for minute in 0..120 {
            let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
            if minute % 2 == 0 {
                training.push_sensor(SensorReading::new(s0, at, true.into()));
                training.push_sensor(SensorReading::new(s1, at, true.into()));
            } else {
                training.push_sensor(SensorReading::new(s2, at, true.into()));
            }
        }
        let model = ContextExtractor::new(DiceConfig::default())
            .extract(&reg, &mut training)
            .unwrap();

        let dir = std::env::temp_dir();
        let path = dir.join("dice_trace_check_e2e.jsonl");
        {
            let file = std::fs::File::create(&path).unwrap();
            let options = EngineOptions {
                trace: TraceOptions::recording()
                    .with_sink(JsonlTraceWriter::new(file).into_shared()),
                ..EngineOptions::default()
            };
            let mut engine = DiceEngine::with_options(&model, options);
            // s1 fail-stops: s0 fires alone on even minutes.
            let mut live = EventLog::new();
            for minute in 0..30 {
                let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
                if minute % 2 == 0 {
                    live.push_sensor(SensorReading::new(s0, at, true.into()));
                } else {
                    live.push_sensor(SensorReading::new(s2, at, true.into()));
                }
            }
            let reports = engine.process_log(&mut live);
            assert!(!reports.is_empty());
        }

        let path_str = path.to_str().unwrap();
        let summary = trace_check(path_str).unwrap();
        assert!(summary.contains("byte-stable round trip"), "{summary}");
        assert!(summary.contains("30 traces"), "{summary}");

        let rendered = explain(path_str, None).unwrap();
        assert!(
            rendered.contains(&s1.to_string()),
            "explain must name the fail-stopped sensor:\n{rendered}"
        );
        let _ = std::fs::remove_file(&path);

        assert!(explain("/nonexistent/trace.jsonl", None).is_err());
        assert!(trace_check("/nonexistent/trace.jsonl").is_err());
    }
}
