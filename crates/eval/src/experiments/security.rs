//! Section VI, "Expand to security": detecting sensor-spoofing attacks.
//!
//! The paper tests two attacks against the testbed: raising the living-room
//! temperature so the fan runs (wasting energy), and raising the bedroom
//! light reading at night so the blind pulls up while the resident sleeps
//! (privacy exposure). Both manipulate a numeric sensor's reported values,
//! which DICE sees as context violations.

use dice_core::DiceEngine;
use dice_datasets::DatasetId;
use dice_sim::testbed;
use dice_types::{DeviceId, Event, EventLog, SensorId, SensorReading, SensorValue, Timestamp};

use crate::runner::{train_dataset, RunnerConfig};

/// Adds `delta` to every reading of `sensor` at or after `onset` — a value
/// spoofing attack on the sensor's reports.
pub fn spoof_sensor(log: EventLog, sensor: SensorId, onset: Timestamp, delta: f64) -> EventLog {
    let mut out = EventLog::new();
    for event in log.into_events() {
        match &event {
            Event::Sensor(r) if r.sensor == sensor && r.at >= onset => {
                if let SensorValue::Numeric(v) = r.value {
                    out.push_sensor(SensorReading::new(r.sensor, r.at, (v + delta).into()));
                } else {
                    out.push(event);
                }
            }
            _ => out.push(event),
        }
    }
    out
}

/// One attack scenario's outcome.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Attack description.
    pub name: String,
    /// Whether DICE raised any report after the attack began.
    pub detected: bool,
    /// Whether the attacked sensor was among the identified devices.
    pub identified: bool,
    /// Detection latency in minutes, if detected.
    pub latency_mins: Option<f64>,
}

/// Runs both of the paper's attack cases and returns their outcomes.
pub fn run_attacks(seed: u64) -> Vec<AttackOutcome> {
    let cfg = RunnerConfig {
        trials: 0,
        seed,
        ..RunnerConfig::default()
    };
    let td = train_dataset(DatasetId::DHouseA, &cfg);
    let (_, devices) = testbed::build_registry();

    // Case 1: spoof the living-room temperature up so the fan switch runs.
    // Case 2: spoof the bedroom light up at night so the blind opens.
    let living_temp = devices.temperature[3];
    let bedroom_light = devices.light[2];

    let segments = td.plan.segments();
    // Pick a segment covering night hours for the light attack: segments
    // tile from 300 h, so one starting at a multiple-of-24 boundary covers
    // midnight.
    let night_segment = segments
        .iter()
        .copied()
        .find(|s| s.start.as_secs() % 86_400 == 0)
        .unwrap_or(segments[0]);
    let day_segment = segments
        .iter()
        .copied()
        .find(|s| s.start.hour_of_day() == 12)
        .unwrap_or(segments[1]);

    let mut outcomes = Vec::new();
    for (name, segment, sensor, delta) in [
        ("temperature-spoof (fan)", day_segment, living_temp, 6.0),
        (
            "light-spoof-at-night (blind)",
            night_segment,
            bedroom_light,
            400.0,
        ),
    ] {
        let onset = segment.start + dice_types::TimeDelta::from_mins(60);
        let clean = td.sim.log_between(segment.start, segment.end);
        let mut attacked = spoof_sensor(clean, sensor, onset, delta);
        let mut engine = DiceEngine::new(&td.model);
        let mut reports = engine.process_range(&mut attacked, segment.start, segment.end);
        reports.extend(engine.flush());
        let report = reports.into_iter().find(|r| r.detected_at >= onset);
        outcomes.push(AttackOutcome {
            name: name.into(),
            detected: report.is_some(),
            identified: report
                .as_ref()
                .is_some_and(|r| r.devices.contains(&DeviceId::Sensor(sensor))),
            latency_mins: report.map(|r| (r.detected_at - onset).as_mins_f64()),
        });
    }
    outcomes
}

/// Formats the security experiment.
pub fn security(seed: u64) -> String {
    let mut out = String::from("Section VI: Expand to Security (sensor spoofing attacks)\n");
    for outcome in run_attacks(seed) {
        out.push_str(&format!(
            "  {:<30} detected: {}  attacked sensor identified: {}  latency: {}\n",
            outcome.name,
            if outcome.detected { "yes" } else { "NO" },
            if outcome.identified { "yes" } else { "NO" },
            outcome
                .latency_mins
                .map_or("-".to_string(), |m| format!("{m:.0} min")),
        ));
    }
    out.push_str("paper: both attack cases were successfully detected\n");
    out
}
