//! Faultless-segment diagnostics: what violates, when, and why.

use dice_core::{Detector, DiceEngine, PrevWindow, WindowObservation};
use dice_datasets::DatasetId;
use dice_types::Timestamp;

use crate::runner::{batched_window_scans, train_dataset, RunnerConfig};

/// Replays faultless segments and describes every violating window.
///
/// Each segment is binarized up front so the candidate scans and
/// nearest-group fallbacks run through the bit-sliced index's batch entry
/// points; only the prev-chained transition check stays sequential.
///
/// # Errors
///
/// Returns an error for unknown dataset names.
pub fn diagnose(dataset: &str, segments: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig::default();
    let td = train_dataset(id, &cfg);
    let detector = Detector::new(&td.model);
    let window = td.model.config().window();
    let mut out = String::new();
    let mut violating_segments = 0u64;

    for trial in 0..segments {
        let segment = td.plan.segment_for_trial(trial);
        let mut log = td.sim.log_between(segment.start, segment.end);
        let mut starts: Vec<Timestamp> = Vec::new();
        let observations: Vec<WindowObservation> = log
            .windows_between(segment.start, segment.end, window)
            .map(|w| {
                starts.push(w.start);
                td.model.binarizer().binarize(w.start, w.end, w.events)
            })
            .collect();
        let exact: Vec<_> = observations
            .iter()
            .map(|obs| detector.correlation_check(obs))
            .collect();
        let scans = batched_window_scans(&td.model, &observations, &exact);

        let mut prev: Option<PrevWindow> = None;
        let mut violations = 0;
        for (i, obs) in observations.iter().enumerate() {
            let (group, exact_hit) = match exact[i] {
                Some(group) => {
                    let cases = prev
                        .as_ref()
                        .map_or_else(Vec::new, |p| detector.transition_check(p, group, obs));
                    if !cases.is_empty() {
                        violations += 1;
                        if violations <= 4 {
                            out.push_str(&format!("seg{trial} {}: TRANS {cases:?}\n", starts[i]));
                        }
                    }
                    (group, true)
                }
                None => {
                    violations += 1;
                    let nearest = scans[i].and_then(|s| s.first_candidate);
                    if violations <= 4 {
                        let diff: Vec<String> = nearest
                            .map(|c| {
                                obs.state
                                    .diff_indices(td.model.groups().state(c.group))
                                    .map(|b| {
                                        let s = td.model.layout().sensor_of_bit(b);
                                        format!(
                                            "bit{b}={s}:{:?}:{:?}",
                                            td.sim.registry().sensor(s).kind(),
                                            td.model.layout().role_of_bit(b)
                                        )
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        out.push_str(&format!(
                            "seg{trial} {}: CORR dist{:?} diff {}\n",
                            starts[i],
                            nearest.map(|c| c.distance),
                            diff.join(",")
                        ));
                    }
                    (
                        scans[i]
                            .and_then(|s| s.standin)
                            .unwrap_or(dice_types::GroupId::new(0)),
                        false,
                    )
                }
            };
            prev = Some(PrevWindow {
                group,
                exact: exact_hit,
                activated_actuators: obs.activated_actuators.clone(),
            });
        }
        if violations > 0 {
            violating_segments += 1;
            out.push_str(&format!("seg{trial}: {violations} violating windows\n"));
        }
    }
    out.push_str(&format!(
        "{violating_segments}/{segments} faultless segments had violations\n"
    ));
    let mut engine = DiceEngine::new(&td.model);
    let _ = &mut engine;
    Ok(out)
}
