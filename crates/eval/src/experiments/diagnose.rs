//! Faultless-segment diagnostics: what violates, when, and why.

use dice_core::{CheckResult, Detector, DiceEngine, PrevWindow};
use dice_datasets::DatasetId;

use crate::runner::{train_dataset, RunnerConfig};

/// Replays faultless segments and describes every violating window.
///
/// # Errors
///
/// Returns an error for unknown dataset names.
pub fn diagnose(dataset: &str, segments: u64) -> Result<String, String> {
    let id = DatasetId::parse(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let cfg = RunnerConfig::default();
    let td = train_dataset(id, &cfg);
    let detector = Detector::new(&td.model);
    let window = td.model.config().window();
    let mut out = String::new();
    let mut violating_segments = 0u64;

    for trial in 0..segments {
        let segment = td.plan.segment_for_trial(trial);
        let mut log = td.sim.log_between(segment.start, segment.end);
        let mut prev: Option<PrevWindow> = None;
        let mut violations = 0;
        for w in log.windows_between(segment.start, segment.end, window) {
            let obs = td.model.binarizer().binarize(w.start, w.end, w.events);
            let result = detector.check(prev.as_ref(), &obs);
            match &result {
                CheckResult::CorrelationViolation { candidates } => {
                    violations += 1;
                    if violations <= 4 {
                        let nearest = candidates.first();
                        let diff: Vec<String> = nearest
                            .map(|c| {
                                obs.state
                                    .diff_indices(td.model.groups().state(c.group))
                                    .map(|b| {
                                        let s = td.model.layout().sensor_of_bit(b);
                                        format!(
                                            "bit{b}={s}:{:?}:{:?}",
                                            td.sim.registry().sensor(s).kind(),
                                            td.model.layout().role_of_bit(b)
                                        )
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        out.push_str(&format!(
                            "seg{trial} {}: CORR dist{:?} diff {}\n",
                            w.start,
                            nearest.map(|c| c.distance),
                            diff.join(",")
                        ));
                    }
                }
                CheckResult::TransitionViolation { cases, .. } => {
                    violations += 1;
                    if violations <= 4 {
                        out.push_str(&format!("seg{trial} {}: TRANS {cases:?}\n", w.start));
                    }
                }
                CheckResult::Normal { .. } => {}
            }
            // Update prev like the engine does.
            let (group, exact) = match &result {
                CheckResult::Normal { group } | CheckResult::TransitionViolation { group, .. } => {
                    (*group, true)
                }
                CheckResult::CorrelationViolation { candidates } => (
                    candidates
                        .first()
                        .map(|c| c.group)
                        .or_else(|| td.model.scan().nearest(&obs.state).first().map(|c| c.group))
                        .unwrap_or(dice_types::GroupId::new(0)),
                    false,
                ),
            };
            prev = Some(PrevWindow {
                group,
                exact,
                activated_actuators: obs.activated_actuators.clone(),
            });
        }
        if violations > 0 {
            violating_segments += 1;
            out.push_str(&format!("seg{trial}: {violations} violating windows\n"));
        }
    }
    out.push_str(&format!(
        "{violating_segments}/{segments} faultless segments had violations\n"
    ));
    let mut engine = DiceEngine::new(&td.model);
    let _ = &mut engine;
    Ok(out)
}
