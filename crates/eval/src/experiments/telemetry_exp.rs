//! Snapshot validation for exported runtime telemetry (`telemetry-check`).
//!
//! CI's telemetry-smoke job runs `dice-repro --telemetry out.json ...` and
//! then `dice-repro telemetry-check out.json`: the check fails unless the
//! file is a schema-versioned snapshot containing every metric in the
//! catalog, with internally consistent histograms.

use dice_telemetry::{json_parse, validate_snapshot_json, Value};

/// Validates an exported telemetry snapshot and summarizes its headline
/// numbers.
///
/// # Errors
///
/// Returns a description of the first schema problem, or an I/O error.
pub fn telemetry_check(path: &str) -> Result<String, String> {
    let document =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    validate_snapshot_json(&document)?;
    let value = json_parse(&document).map_err(|e| e.to_string())?;
    let counter = |name: &str| -> u64 {
        value
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_num)
            .unwrap_or(0.0) as u64
    };
    let events = value
        .get("events")
        .and_then(Value::as_arr)
        .map_or(0, <[Value]>::len);
    Ok(format!(
        "{path}: valid dice-telemetry snapshot (schema {schema})\n\
         engine windows {windows}, correlation violations {corr}, reports {reports}\n\
         gateway frames {frames}, eval trials {trials}, retained events {events}",
        schema = dice_telemetry::SNAPSHOT_SCHEMA,
        windows = counter("dice_engine_windows_total"),
        corr = counter("dice_engine_correlation_violations_total"),
        reports = counter("dice_engine_reports_total"),
        frames = counter("dice_gateway_frames_total"),
        trials = counter("dice_eval_trials_total"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_telemetry::Telemetry;

    #[test]
    fn check_accepts_a_real_snapshot_and_rejects_garbage() {
        let telemetry = Telemetry::recording();
        telemetry
            .recorder()
            .unwrap()
            .metrics
            .engine
            .windows_total
            .add(9);
        let dir = std::env::temp_dir();
        let good = dir.join("dice_telemetry_check_good.json");
        std::fs::write(&good, telemetry.snapshot().unwrap().to_json()).unwrap();
        let summary = telemetry_check(good.to_str().unwrap()).unwrap();
        assert!(summary.contains("valid dice-telemetry snapshot"));
        assert!(summary.contains("engine windows 9"));
        let _ = std::fs::remove_file(&good);

        let bad = dir.join("dice_telemetry_check_bad.json");
        std::fs::write(&bad, "{\"schema\": 1}").unwrap();
        assert!(telemetry_check(bad.to_str().unwrap()).is_err());
        let _ = std::fs::remove_file(&bad);
        assert!(telemetry_check("/nonexistent/snapshot.json").is_err());
    }
}
