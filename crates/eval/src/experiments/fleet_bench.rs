//! The `fleet-bench` command: deterministic multi-home fleet throughput.
//!
//! Builds a fleet of synthetic homes drawn from a handful of floor plans
//! (each plan trained once and shared through the
//! [`ModelCache`](dice_fleet::ModelCache)), streams a seeded per-home
//! event schedule through the sharded service's wire-frame ingestion
//! path, and reports homes/sec and windows/sec. A fixed residue class of
//! homes drops a correlated sensor, so the run always exercises the
//! batched candidate-scan path and alarm totals are deterministic —
//! invariant under the shard count (see `tests/fleet.rs`).
//
// lint-src: allow-file(wall-clock) — a benchmark exists to read the clock;
// timings are reported, never fed back into model state.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dice_core::{ContextExtractor, DiceConfig, DiceModel};
use dice_fleet::{Fleet, FleetConfig, ModelCache};
use dice_types::{
    DeviceRegistry, Event, EventLog, Room, SensorId, SensorKind, SensorReading, TimeDelta,
    Timestamp,
};

/// Distinct floor plans across the fleet; home `h` uses plan
/// `h % FLOOR_PLANS`, so model memory stays constant as homes scale.
pub(crate) const FLOOR_PLANS: usize = 4;

/// Homes with `h % 16 == FAULTY_RESIDUE` fail-stop their second sensor,
/// so a fixed 1/16 of the fleet raises deterministic alarms.
pub(crate) const FAULTY_RESIDUE: u32 = 3;

/// Training horizon per floor plan, in minutes.
const TRAINING_MINUTES: i64 = 240;

/// One fleet-bench run's results, consumed by both the CLI command and
/// the `fleet` section of `bench-json`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FleetBenchResult {
    /// Homes served.
    pub homes: usize,
    /// Shards the run resolved to (0 on input means one per core).
    pub shards: usize,
    /// Simulated minutes streamed per home.
    pub minutes: i64,
    /// Wire frames pushed through the shard queues.
    pub frames: u64,
    /// Events accepted into the monitored range.
    pub events: u64,
    /// Windows closed across all homes.
    pub windows: u64,
    /// Cross-home batched candidate scans issued.
    pub batched_scans: u64,
    /// Alarms delivered.
    pub alarms: u64,
    /// Alarms suppressed by per-home cooldowns.
    pub suppressed: u64,
    /// Homes that raised at least one alarm.
    pub alarming_homes: usize,
    /// Homes seeded with the fail-stop fault.
    pub faulty_homes: usize,
    /// Distinct `DiceModel` allocations resident across the fleet.
    pub models_resident: usize,
    /// Sends that found their shard queue full and blocked.
    pub backpressure_waits: u64,
    /// Nanoseconds the sender spent blocked on full shard queues.
    pub backpressure_wait_ns: u64,
    /// Wall time of the serving run (training excluded).
    pub elapsed_ms: f64,
}

impl FleetBenchResult {
    /// Windows closed per wall-clock second.
    pub fn windows_per_sec(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.windows as f64 * 1000.0 / self.elapsed_ms
        } else {
            0.0
        }
    }

    /// Full home streams served per wall-clock second.
    pub fn homes_per_sec(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.homes as f64 * 1000.0 / self.elapsed_ms
        } else {
            0.0
        }
    }
}

/// Floor plan `extra`'s registry: `3 + extra` motion sensors, the first
/// two correlated in the kitchen (mirroring the gateway test fixture).
pub(crate) fn plan_devices(extra: usize) -> (DeviceRegistry, Vec<SensorId>) {
    let mut registry = DeviceRegistry::new();
    let sensors = (0..3 + extra)
        .map(|i| {
            let room = if i < 2 { Room::Kitchen } else { Room::Bedroom };
            registry.add_sensor(SensorKind::Motion, format!("s{i}"), room)
        })
        .collect();
    (registry, sensors)
}

/// Trains floor plan `extra` on a deterministic alternating log: sensors
/// 0 and 1 fire together on even minutes (one correlation group), the
/// remaining sensors take turns on odd minutes.
fn train_plan(extra: usize) -> DiceModel {
    let (registry, sensors) = plan_devices(extra);
    let mut log = EventLog::new();
    for minute in 0..TRAINING_MINUTES {
        let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5);
        if minute % 2 == 0 {
            log.push_sensor(SensorReading::new(sensors[0], at, true.into()));
            log.push_sensor(SensorReading::new(sensors[1], at, true.into()));
        } else {
            let idx = 2 + (minute as usize / 2) % (sensors.len() - 2);
            log.push_sensor(SensorReading::new(sensors[idx], at, true.into()));
        }
    }
    ContextExtractor::new(DiceConfig::default())
        .extract(&registry, &mut log)
        .expect("plan training log is non-empty")
}

/// Builds (or reuses) the shared floor-plan models through `cache`.
pub(crate) fn plan_models(cache: &ModelCache) -> Vec<Arc<DiceModel>> {
    (0..FLOOR_PLANS)
        .map(|k| cache.get_or_train(&format!("plan{k}"), || train_plan(k)))
        .collect()
}

/// Runs the fleet benchmark: `homes` homes for `minutes` simulated
/// minutes over `shards` shards (0 = one per core). Fully deterministic
/// apart from wall time: the event schedule is seeded per home by its id.
pub(crate) fn run_fleet_bench(homes: usize, shards: usize, minutes: i64) -> FleetBenchResult {
    run_fleet_bench_traced(&ModelCache::new(), homes, shards, minutes, true)
}

/// [`run_fleet_bench`] with the causal-tracing instrumentation switchable
/// and the model cache shared across calls, so paired traced/untraced
/// reps (the `fleet_tracing_overhead` baseline row) train each floor plan
/// once instead of once per rep.
pub(crate) fn run_fleet_bench_traced(
    cache: &ModelCache,
    homes: usize,
    shards: usize,
    minutes: i64,
    tracing: bool,
) -> FleetBenchResult {
    let models = plan_models(cache);
    let plan_sensors: Vec<Vec<SensorId>> = (0..FLOOR_PLANS).map(|k| plan_devices(k).1).collect();

    let mut fleet = Fleet::new(FleetConfig {
        shards,
        tracing,
        ..FleetConfig::default()
    });
    for h in 0..homes {
        fleet.register_home(h as u32, Arc::clone(&models[h % FLOOR_PLANS]));
    }

    let from = Timestamp::from_mins(0);
    let to = Timestamp::from_mins(minutes);
    let start = Instant::now();
    let run = fleet.run(from, to, |sender| {
        for minute in 0..minutes {
            for h in 0..homes as u32 {
                let sensors = &plan_sensors[h as usize % FLOOR_PLANS];
                // Each home's phase offset seeds its schedule within the
                // window without moving events across window boundaries.
                let at = Timestamp::from_mins(minute) + TimeDelta::from_secs(5 + i64::from(h % 7));
                if minute % 2 == 0 {
                    let reading = SensorReading::new(sensors[0], at, true.into());
                    sender.send(h, &Event::Sensor(reading));
                    if h % 16 != FAULTY_RESIDUE {
                        let partner = SensorReading::new(sensors[1], at, true.into());
                        sender.send(h, &Event::Sensor(partner));
                    }
                } else {
                    let idx = 2 + (minute as usize / 2) % (sensors.len() - 2);
                    let reading = SensorReading::new(sensors[idx], at, true.into());
                    sender.send(h, &Event::Sensor(reading));
                }
            }
        }
    });
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;

    FleetBenchResult {
        homes,
        shards: run.stats.shards,
        minutes,
        frames: run.stats.frames,
        events: run.stats.events,
        windows: run.stats.windows,
        batched_scans: run.stats.batched_scans,
        alarms: run.stats.alarms,
        suppressed: run.stats.suppressed,
        alarming_homes: run.alarms.iter().filter(|a| !a.reports.is_empty()).count(),
        faulty_homes: (0..homes as u32)
            .filter(|h| h % 16 == FAULTY_RESIDUE)
            .count(),
        models_resident: run.stats.models_resident,
        backpressure_waits: run.stats.backpressure_waits,
        backpressure_wait_ns: run.stats.backpressure_wait_ns,
        elapsed_ms,
    }
}

/// Runs the fleet benchmark and renders a human-readable report.
///
/// # Errors
///
/// Returns an error for non-positive home or minute counts.
pub fn fleet_bench(homes: usize, shards: usize, minutes: i64) -> Result<String, String> {
    if homes == 0 {
        return Err("fleet-bench needs at least one home".to_string());
    }
    if minutes <= 0 {
        return Err("fleet-bench needs a positive minute count".to_string());
    }
    let r = run_fleet_bench(homes, shards, minutes);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet-bench: {} homes over {} shards, {} simulated minutes",
        r.homes, r.shards, r.minutes
    );
    let _ = writeln!(
        out,
        "  models: {} resident across {} homes ({:.1} homes/model)",
        r.models_resident,
        r.homes,
        r.homes as f64 / r.models_resident.max(1) as f64
    );
    let _ = writeln!(
        out,
        "  ingest: {} frames, {} events, {} backpressure waits ({:.1} ms blocked)",
        r.frames,
        r.events,
        r.backpressure_waits,
        r.backpressure_wait_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "  detect: {} windows closed, {} batched scans",
        r.windows, r.batched_scans
    );
    let _ = writeln!(
        out,
        "  alarms: {} delivered across {} homes ({} seeded faulty), {} suppressed by cooldown",
        r.alarms, r.alarming_homes, r.faulty_homes, r.suppressed
    );
    let _ = writeln!(
        out,
        "  wall: {:.1} ms -> {:.0} windows/sec, {:.0} homes/sec",
        r.elapsed_ms,
        r.windows_per_sec(),
        r.homes_per_sec()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_is_deterministic_and_alarms_on_faulty_homes() {
        let r = run_fleet_bench(32, 2, 20);
        assert_eq!(r.homes, 32);
        assert_eq!(r.shards, 2);
        assert_eq!(r.windows, 32 * 20);
        assert_eq!(r.models_resident, FLOOR_PLANS);
        assert_eq!(r.faulty_homes, 2);
        assert_eq!(r.alarming_homes, r.faulty_homes);
        assert!(r.batched_scans > 0, "faulty homes must hit the batch scan");
        assert_eq!(r.frames, r.events, "all sent frames land in range");
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(fleet_bench(0, 1, 10).is_err());
        assert!(fleet_bench(8, 1, 0).is_err());
    }
}
