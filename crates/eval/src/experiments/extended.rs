//! Extended experiments: actuator faults (Section 5.1.3), multi-fault
//! identification, and parameter sensitivity (Section VI).

use dice_core::DiceConfig;
use dice_datasets::DatasetId;
use dice_types::TimeDelta;

use crate::report::{pct, render_table};
use crate::runner::{
    evaluate_actuator_faults, evaluate_multi_faults, evaluate_sensor_faults, train_dataset,
    RunnerConfig,
};

/// Section 5.1.3: actuator faults on the testbed datasets.
///
/// The paper reports 92.5% precision / 94.9% recall for identifying
/// problematic actuators from the `D_*` data.
pub fn actuator_faults(trials: u64, seed: u64) -> String {
    let cfg = RunnerConfig {
        trials,
        seed,
        ..RunnerConfig::default()
    };
    let mut rows = Vec::new();
    let mut total = crate::metrics::IdentificationCounts::default();
    for id in DatasetId::testbed() {
        let td = train_dataset(id, &cfg);
        let eval = evaluate_actuator_faults(&td, &cfg);
        total.merge(&eval.identification);
        rows.push(vec![
            id.name().to_string(),
            pct(eval.detection.recall()),
            pct(eval.identification.precision()),
            pct(eval.identification.recall()),
        ]);
    }
    let mut out =
        String::from("Section 5.1.3: Actuator Faults (ghost activations on D_* datasets)\n");
    out.push_str(&render_table(
        &["dataset", "det. recall", "id. precision", "id. recall"],
        &rows,
    ));
    out.push_str(&format!(
        "overall identification: {} precision / {} recall\n",
        pct(total.precision()),
        pct(total.recall())
    ));
    out.push_str("paper: 92.5% precision / 94.9% recall on average\n");
    out
}

/// Section VI: multi-fault case — one to three simultaneous sensor faults,
/// `numThre = 3`. The paper reports 79.5% precision / 63.3% recall.
pub fn multi_fault(trials: u64, seed: u64) -> String {
    let dice = DiceConfig::builder().max_faults(3).num_thre(3).build();
    let cfg = RunnerConfig {
        trials,
        seed,
        dice,
        ..RunnerConfig::default()
    };
    let mut rows = Vec::new();
    let mut total = crate::metrics::IdentificationCounts::default();
    for id in DatasetId::testbed() {
        let td = train_dataset(id, &cfg);
        let eval = evaluate_multi_faults(&td, &cfg);
        total.merge(&eval.identification);
        rows.push(vec![
            id.name().to_string(),
            pct(eval.detection.recall()),
            pct(eval.identification.precision()),
            pct(eval.identification.recall()),
        ]);
    }
    let mut out =
        String::from("Section VI: Multi-fault Case (1-3 simultaneous faults, numThre = 3)\n");
    out.push_str(&render_table(
        &["dataset", "det. recall", "id. precision", "id. recall"],
        &rows,
    ));
    out.push_str(&format!(
        "overall identification: {} precision / {} recall\n",
        pct(total.precision()),
        pct(total.recall())
    ));
    out.push_str("paper: 79.5% precision / 63.3% recall\n");
    out
}

/// Section VI: impact of different parameters.
///
/// * halving the precomputation period (300 h -> 150 h) should cost
///   identification precision (paper: −10%);
/// * halving the segment length (6 h -> 3 h) should cost recall (paper: −6%);
/// * the one-minute window duration should be near-optimal.
pub fn param_sensitivity(trials: u64, seed: u64) -> String {
    let dataset = DatasetId::DHouseA;
    let mut out = String::from("Section VI: Impact of Different Parameters (on D_houseA)\n\n");

    // Precomputation period.
    let mut rows = Vec::new();
    for hours in [150, 300] {
        let cfg = RunnerConfig {
            trials,
            seed,
            precompute: TimeDelta::from_hours(hours),
            ..RunnerConfig::default()
        };
        let td = train_dataset(dataset, &cfg);
        let eval = evaluate_sensor_faults(&td, &cfg);
        rows.push(vec![
            format!("{hours} h"),
            pct(eval.detection.precision()),
            pct(eval.detection.recall()),
            pct(eval.identification.precision()),
            pct(eval.identification.recall()),
        ]);
    }
    out.push_str("precomputation period (paper: 150 h costs ~10% identification precision):\n");
    out.push_str(&render_table(
        &["training", "det. P", "det. R", "id. P", "id. R"],
        &rows,
    ));

    // Segment length.
    let mut rows = Vec::new();
    for hours in [3, 6] {
        let cfg = RunnerConfig {
            trials,
            seed,
            segment_len: TimeDelta::from_hours(hours),
            ..RunnerConfig::default()
        };
        let td = train_dataset(dataset, &cfg);
        let eval = evaluate_sensor_faults(&td, &cfg);
        rows.push(vec![
            format!("{hours} h"),
            pct(eval.detection.precision()),
            pct(eval.detection.recall()),
            pct(eval.identification.recall()),
        ]);
    }
    out.push_str("\nsegment length (paper: 3 h costs ~6% identification recall):\n");
    out.push_str(&render_table(
        &["segment", "det. P", "det. R", "id. R"],
        &rows,
    ));

    // Window duration.
    let mut rows = Vec::new();
    for secs in [30i64, 60, 120, 300] {
        let dice = DiceConfig::builder()
            .window(TimeDelta::from_secs(secs))
            .build();
        let cfg = RunnerConfig {
            trials,
            seed,
            dice,
            ..RunnerConfig::default()
        };
        let td = train_dataset(dataset, &cfg);
        let eval = evaluate_sensor_faults(&td, &cfg);
        rows.push(vec![
            format!("{secs} s"),
            pct(eval.detection.precision()),
            pct(eval.detection.recall()),
            eval.num_groups.to_string(),
        ]);
    }
    out.push_str("\nwindow duration (paper: one minute was empirically optimal):\n");
    out.push_str(&render_table(
        &["window", "det. P", "det. R", "groups"],
        &rows,
    ));
    out
}
