//! Attestation experiment: verifying identified devices by masked replay.
//!
//! Section 3.4 mentions "an additional attestation step for a verification
//! purpose". [`dice_core::Attestor`] implements it: for each suspect, the
//! anomalous windows are re-checked with the suspect's bits masked; a true
//! culprit explains (almost) all of them. This experiment measures how much
//! attestation-based re-ranking improves identification precision when the
//! identification step is run in its ambiguous (all-candidates)
//! configuration.

use dice_core::{Attestor, DiceConfig, DiceEngine};
use dice_datasets::DatasetId;
use dice_faults::{FaultInjector, FaultPlanner};
use dice_types::{DeviceId, WindowIter};

use crate::report::{pct, render_table};
use crate::runner::{train_dataset, RunnerConfig};

/// Runs the attestation comparison.
pub fn attest(trials: u64, seed: u64) -> String {
    let dice = DiceConfig::builder()
        .nearest_only_identification(false)
        .build();
    let cfg = RunnerConfig {
        trials,
        seed,
        dice,
        ..RunnerConfig::default()
    };
    let td = train_dataset(DatasetId::DHouseA, &cfg);
    let registry = td.sim.registry();
    let planner = FaultPlanner::new(seed ^ 0xA77E);
    let injector = FaultInjector::new(seed ^ 0xA77F);
    let attestor = Attestor::new(&td.model);

    let mut detected = 0u64;
    let mut raw_exact = 0u64; // report devices == {faulty}
    let mut attested_top1 = 0u64; // attestation's top-ranked == faulty
    let mut suspects_total = 0u64;

    for trial in 0..cfg.trials {
        let segment = td.plan.segment_for_trial(trial);
        let fault = planner.sensor_fault(trial, registry, segment.start, segment.len());
        let clean = td.sim.log_between(segment.start, segment.end);
        let mut faulty = injector.inject_sensor(clean, registry, &fault);

        let mut engine = DiceEngine::new(&td.model);
        let mut reports = engine.process_range(&mut faulty, segment.start, segment.end);
        reports.extend(engine.flush());
        let Some(report) = reports.into_iter().find(|r| r.detected_at >= fault.onset) else {
            continue;
        };
        detected += 1;
        suspects_total += report.devices.len() as u64;
        let target = DeviceId::Sensor(fault.sensor);
        if report.devices == vec![target] {
            raw_exact += 1;
        }

        // Attest every suspect against the anomalous tail of the segment.
        let window = td.model.config().window();
        let history: Vec<_> = {
            let mut events = faulty.slice(report.detected_at - window, segment.end);
            let iter: WindowIter<'_> =
                events.windows_between(report.detected_at - window, segment.end, window);
            iter.map(|w| td.model.binarizer().binarize(w.start, w.end, w.events))
                .collect()
        };
        let ranked = attestor.rank_suspects(&report.devices, &history);
        if ranked.first().map(|a| a.device) == Some(target) {
            attested_top1 += 1;
        }
    }

    let rows = vec![
        vec![
            "raw report == faulty device".to_string(),
            pct(if detected == 0 {
                0.0
            } else {
                raw_exact as f64 / detected as f64
            }),
        ],
        vec![
            "attestation top-1 == faulty device".to_string(),
            pct(if detected == 0 {
                0.0
            } else {
                attested_top1 as f64 / detected as f64
            }),
        ],
        vec![
            "mean suspects per report".to_string(),
            format!(
                "{:.2}",
                if detected == 0 {
                    0.0
                } else {
                    suspects_total as f64 / detected as f64
                }
            ),
        ],
    ];
    let mut out = String::from(
        "Section 3.4: Attestation Step (ambiguous identification, masked-replay verification)\n",
    );
    out.push_str(&render_table(&["metric", "value"], &rows));
    out.push_str(&format!("({detected}/{} faults detected)\n", cfg.trials));
    out.push_str(
        "the paper mentions attestation as an optional verification of the identified\n\
         device; masking the true culprit's bits should explain the anomalous windows\n",
    );
    out
}
