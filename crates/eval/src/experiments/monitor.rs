//! The `monitor` command: stream a CSV through the gateway with a terminal
//! dashboard of time-series sparklines and a health-rule table.
//!
//! Two modes share one code path:
//!
//! - **live** (default): aggregator threads feed bounded channels like a
//!   real deployment; with `--interval N` the dashboard re-renders to
//!   stderr every `N` windows while the replay runs.
//! - **`--once`**: every frame is preloaded into unbounded channels and the
//!   senders dropped before the merge starts, so the gateway runs inline on
//!   one thread and the render is byte-stable across runs (asserted by a
//!   tier-1 test). Health rules over wall-clock or load-dependent inputs
//!   report `status: n/a` instead of a verdict.
//!
//! Time-series sampling is driven by *sim time*: the gateway's window hook
//! feeds each closed window's end timestamp to a
//! [`TimeSeriesRecorder`], one sample per [`SAMPLE_WINDOWS`] windows.

use std::fs::File;
use std::io::{BufReader, Write as _};

use dice_core::read_model;
use dice_datasets::read_csv;
use dice_gateway::{partition_by_device, spawn_aggregator, HomeGateway};
use dice_telemetry::{
    evaluate_health, standard_rules, HealthStatus, Recorder, Telemetry, TimeSeriesRecorder,
};
use dice_types::{Event, TimeDelta, Timestamp};

/// Windows per time-series sample: with the default one-minute window, one
/// sample every thirty minutes of sim time, so the 48-wide sparkline spans
/// a full day of a day-scale CASAS replay (and a sweep rides along only one
/// window in thirty).
const SAMPLE_WINDOWS: i64 = 30;

/// Retained time-series samples (the sparkline truncates to the most
/// recent [`SPARK_WIDTH`]).
const SERIES_CAPACITY: usize = 256;

/// Widest sparkline the dashboard renders.
const SPARK_WIDTH: usize = 48;

/// Aggregator fan-in the replay partitions devices across.
const AGGREGATORS: usize = 4;

/// The series the dashboard plots — also the recorder's sweep watchlist, so
/// each sample touches six metric handles instead of the whole registry
/// (order: the five counters rendered as rows, then the depth gauge).
pub(crate) const DASHBOARD_SERIES: &[&str] = &[
    "dice_gateway_events_total",
    "dice_gateway_windows_total",
    "dice_gateway_alarms_total",
    "dice_engine_reports_total",
    "dice_gateway_channel_depth",
];

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Largest value in the series, floored at zero (an order-insensitive max,
/// not a float accumulation).
fn series_max(values: &[f64]) -> f64 {
    let mut max = 0.0f64;
    for &v in values {
        if v > max {
            max = v;
        }
    }
    max
}

/// Renders `values` as a unicode sparkline scaled to the series maximum
/// (also reused by `fleet-monitor` for its per-shard load row).
pub(crate) fn sparkline(values: &[f64]) -> String {
    let tail = &values[values.len().saturating_sub(SPARK_WIDTH)..];
    let max = series_max(tail);
    tail.iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let level = ((v / max) * 7.0).round() as usize;
                BARS[level.min(7)]
            }
        })
        .collect()
}

fn series_row(out: &mut String, label: &str, values: &[f64]) {
    let last = values.last().copied().unwrap_or(0.0);
    let max = series_max(values);
    out.push_str(&format!(
        "  {label:<14} {}  last {last:.1}  max {max:.1}\n",
        sparkline(values)
    ));
}

#[allow(clippy::cast_precision_loss)]
fn to_f64(values: &[u64]) -> Vec<f64> {
    values.iter().map(|&v| v as f64).collect()
}

#[allow(clippy::cast_precision_loss)]
fn gauges_f64(values: &[i64]) -> Vec<f64> {
    values.iter().map(|&v| v as f64).collect()
}

/// Renders the sparkline block from the recorder's time series.
fn render_series(series: &TimeSeriesRecorder, interval_mins: i64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "series (one sample per {interval_mins} sim-minutes, {} retained, {} evicted)\n",
        series.len(),
        series.dropped()
    ));
    let labels = ["events", "windows", "alarms", "reports", "channel depth"];
    for (label, name) in labels.iter().zip(DASHBOARD_SERIES) {
        let values = if *label == "channel depth" {
            gauges_f64(&series.gauge_series(name))
        } else {
            to_f64(&series.counter_deltas(name))
        };
        series_row(&mut out, label, &values);
    }
    out
}

fn sim_ns(at: Timestamp) -> u64 {
    u64::try_from(at.as_secs()).unwrap_or(0) * 1_000_000_000
}

/// Parsed `monitor` arguments.
struct MonitorArgs<'a> {
    model: &'a str,
    csv: &'a str,
    once: bool,
    health: bool,
    interval: u64,
}

fn parse_args<'a>(args: &[&'a str]) -> Result<MonitorArgs<'a>, String> {
    let mut once = false;
    let mut health = false;
    let mut interval = 0u64;
    let mut positional = Vec::new();
    let mut rest = args.iter();
    while let Some(&arg) = rest.next() {
        match arg {
            "--once" => once = true,
            "--health" => health = true,
            "--interval" => {
                let value = rest.next().ok_or("--interval needs a window count")?;
                interval = value
                    .parse()
                    .map_err(|_| format!("bad interval {value:?}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown monitor flag {flag:?}"));
            }
            _ => positional.push(arg),
        }
    }
    let [model, csv] = positional[..] else {
        return Err("monitor needs a model path and a csv path".into());
    };
    Ok(MonitorArgs {
        model,
        csv,
        once,
        health,
        interval,
    })
}

/// Streams a CSV event log through the home gateway under a persisted
/// model, rendering alarms, time-series sparklines, and (with `--health`)
/// the health-rule table. See the module docs for `--once` semantics.
///
/// # Errors
///
/// Returns an error for unreadable files, corrupt data, or bad flags.
pub fn monitor(args: &[&str]) -> Result<String, String> {
    let args = parse_args(args)?;
    let file = File::open(args.model).map_err(|e| format!("cannot open {}: {e}", args.model))?;
    let mut model = read_model(BufReader::new(file)).map_err(|e| e.to_string())?;
    model.rebuild_index();
    let file = File::open(args.csv).map_err(|e| format!("cannot open {}: {e}", args.csv))?;
    let mut log = read_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
    let window = model.config().window();
    let (from, to) = match (log.start(), log.end()) {
        (Some(s), Some(e)) => (s.align_down(window), e + window),
        _ => return Err("the CSV contains no events".into()),
    };
    let events: Vec<Event> = log.into_events().collect();
    let parts = partition_by_device(&events, AGGREGATORS);

    let telemetry = Telemetry::recording();
    let recorder = telemetry.recorder().expect("recording handle");
    let mut series = TimeSeriesRecorder::new(
        u64::try_from(window.as_secs()).unwrap_or(60)
            * 1_000_000_000
            * SAMPLE_WINDOWS.unsigned_abs(),
        SERIES_CAPACITY,
    )
    .watch(DASHBOARD_SERIES);
    series.sample_at(recorder, sim_ns(from)); // baseline at segment start

    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        if args.once {
            // Deterministic mode: preload every frame and drop the sender,
            // so the merge runs inline with no thread timing in play.
            let (tx, rx) = crossbeam::channel::unbounded();
            for event in &part {
                let _ = tx.send(dice_gateway::encode_event(event));
            }
            receivers.push(rx);
        } else {
            let (tx, rx) = crossbeam::channel::bounded(256);
            handles.push(spawn_aggregator(format!("{i}"), part, tx));
            receivers.push(rx);
        }
    }
    let (alarm_tx, alarm_rx) = crossbeam::channel::unbounded();
    let gateway = HomeGateway::with_telemetry(&model, TimeDelta::from_mins(60), telemetry.clone());

    let mut windows_seen = 0u64;
    let stats = gateway.run_with_observer(receivers, &alarm_tx, from, to, |end| {
        series.maybe_sample(recorder, sim_ns(end));
        windows_seen += 1;
        if !args.once && args.interval > 0 && windows_seen.is_multiple_of(args.interval) {
            live_frame(recorder, &series, window.as_mins() * SAMPLE_WINDOWS);
        }
    });
    for handle in handles {
        handle.join().map_err(|_| "aggregator thread panicked")?;
    }
    drop(alarm_tx);
    // Final sample so the tail of the replay is on the dashboard even when
    // it ends mid-interval.
    series.sample_at(recorder, sim_ns(to));

    let mut out = String::new();
    out.push_str(&format!(
        "dice monitor: {} .. {} ({} windows of {} s)\n",
        from,
        to,
        stats.windows,
        window.as_secs()
    ));
    for alarm in alarm_rx.iter() {
        out.push_str(&format!("ALARM: {}\n", alarm.report));
    }
    out.push_str(&render_series(&series, window.as_mins() * SAMPLE_WINDOWS));
    if args.health {
        let snapshot = telemetry.snapshot().expect("recording handle");
        let report = evaluate_health(&standard_rules(), &snapshot, args.once);
        report.publish(&recorder.metrics.health.status);
        out.push_str(&report.render_text());
        if report.overall == HealthStatus::Crit {
            out.push_str("CRITICAL: at least one health rule fired at crit\n");
        }
    }
    out.push_str(&format!(
        "processed {} windows / {} events through {AGGREGATORS} aggregators; {} alarm(s)\n",
        stats.windows, stats.events, stats.alarms
    ));
    Ok(out)
}

/// One live re-render to stderr: current totals plus the sparkline block.
fn live_frame(recorder: &Recorder, series: &TimeSeriesRecorder, interval_mins: i64) {
    let g = &recorder.metrics.gateway;
    let mut frame = format!(
        "-- monitor: {} windows / {} events / {} alarm(s)\n",
        g.windows_total.get(),
        g.events_total.get(),
        g.alarms_total.get()
    );
    frame.push_str(&render_series(series, interval_mins));
    let _ = std::io::stderr().write_all(frame.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let line = sparkline(&[0.0, 3.5, 7.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        assert!(line.starts_with('▁'));
    }

    #[test]
    fn sparkline_truncates_to_width() {
        let values: Vec<f64> = (0..200).map(f64::from).collect();
        assert_eq!(sparkline(&values).chars().count(), SPARK_WIDTH);
    }

    #[test]
    fn flags_parse_in_any_order() {
        let args = parse_args(&["--health", "m.dice", "--once", "log.csv"]).unwrap();
        assert!(args.once && args.health);
        assert_eq!(args.model, "m.dice");
        assert_eq!(args.csv, "log.csv");
        assert_eq!(args.interval, 0);
        let args = parse_args(&["--interval", "30", "m", "c"]).unwrap();
        assert_eq!(args.interval, 30);
        assert!(parse_args(&["m.dice"]).is_err());
        assert!(parse_args(&["--interval"]).is_err());
        assert!(parse_args(&["--bogus", "m", "c"]).is_err());
    }
}
